//! Capturing a Perfetto-loadable trace of the serving engine.
//!
//! Runs a small mixed workload (selection, heatmap, choropleth,
//! aggregation) from three concurrent clients with span tracing
//! enabled, then writes the recorded span tree as Chrome trace events:
//!
//! ```text
//! cargo run --release --example serve_traced [-- trace.json]
//! ```
//!
//! Open the output at <https://ui.perfetto.dev> (or `chrome://tracing`).
//! Each query is its own process-level track ("query N"), so the
//! engine stations (`prepare` → `cache_probe` → `admission_wait` →
//! `eval`), the executor's pass dispatch (`gate_wait` → `pass` →
//! `pass_worker`), the tile-stream stages (`tile_produce` /
//! `tile_stage`), and the per-operator raster spans (`V[f]`, `B[⊙]`,
//! `M[M]`) nest visibly under the query's `execute` root. Worker-thread
//! spans appear on their own thread rows within the query's track —
//! the trace context rides the same job hand-off as the fair-gate
//! ticket, so attribution survives the thread hop.
//!
//! Tracing is a process-wide flag costing one relaxed atomic load per
//! span site when off; `bench_serve` measures that cost and gates it at
//! ≤ 3% of mean service time (`obs_overhead_pct` in `BENCH_serve.json`).
//!
//! The run also demonstrates the **flight recorder**: the engine is
//! configured with a 1 µs slow-query threshold, so every submission is
//! tail-sampled into `QueryEngine::slow_queries()` with a measured
//! EXPLAIN ANALYZE report, and the slowest capture's annotated plan
//! tree is printed at the end (`ExecReport::to_text`).

use canvas_algebra::engine::{EngineConfig, Query, QueryEngine};
use canvas_algebra::obs;
use canvas_algebra::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());

    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let data = Arc::new(PointBatch::from_points(
        canvas_algebra::datagen::taxi_pickups(&extent, 80_000, 42),
    ));
    let zones: AreaSource = Arc::new(canvas_algebra::datagen::neighborhoods(&extent, 16, 11));
    let district = canvas_algebra::datagen::star_polygon(
        &BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0)),
        32,
        0.4,
        7,
    );

    let engine = Arc::new(QueryEngine::with_config(EngineConfig {
        threads: 4,
        // Far below any real service time: every submission trips the
        // tail sampler, so the demo always has captures to show.
        slow_query_threshold: Duration::from_micros(1),
        ..EngineConfig::default()
    }));

    let viewports: Vec<Viewport> = vec![
        Viewport::square_pixels(extent, 256),
        Viewport::square_pixels(
            BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 70.0)),
            256,
        ),
    ];

    // Everything from here on is recorded: per-query span trees land in
    // the process-wide sink until tracing is switched off again.
    obs::set_tracing(true);

    let mut clients = Vec::new();
    for user in 0..3u64 {
        let engine = Arc::clone(&engine);
        let data = data.clone();
        let zones = zones.clone();
        let district = district.clone();
        let viewports = viewports.clone();
        clients.push(std::thread::spawn(move || {
            for step in 0..6u64 {
                let vp = viewports[((user + step) % viewports.len() as u64) as usize];
                let query = match step % 4 {
                    0 => Query::SelectPoints {
                        data: data.clone(),
                        q: district.clone(),
                    },
                    1 => Query::SelectionHeatmap {
                        data: data.clone(),
                        q: district.clone(),
                    },
                    2 => Query::PolygonDensity {
                        table: zones.clone(),
                        q: district.clone(),
                    },
                    _ => Query::AggregateByZone {
                        data: data.clone(),
                        zones: zones.clone(),
                    },
                };
                let resp = engine.execute(&query, vp).expect("served");
                println!(
                    "user {user} step {step}: {:18} {:?} in {:7.2} ms",
                    query.label(),
                    resp.served,
                    resp.exec.as_secs_f64() * 1e3,
                );
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    obs::set_tracing(false);
    let sink = obs::sink();
    sink.write_chrome_trace(&out_path).expect("write trace");
    println!(
        "\nwrote {out_path}: {} span events ({} dropped)",
        sink.len(),
        sink.dropped()
    );
    println!("open it at https://ui.perfetto.dev or chrome://tracing");

    // The same run also populated the metrics registry: histograms for
    // service/exec/queue-wait latency plus the engine counters
    // (including `slow_captured` and the `flight_*` recorder health).
    println!("\nmetrics snapshot:\n{}", engine.metrics_json());

    // Every submission crossed the 1 µs threshold, so the flight
    // recorder promoted each one with a full EXPLAIN ANALYZE report.
    // Print the slowest capture's annotated plan tree.
    let slow = engine.slow_queries();
    println!("\ntail-sampled slow queries: {} captured", slow.len());
    if let Some(worst) = slow.iter().max_by_key(|e| e.service_ns) {
        println!(
            "slowest: {} ({}, {:.2} ms)\n",
            worst.label,
            worst.reason.as_str(),
            worst.service_ns as f64 / 1e6
        );
        println!("{}", worst.report.to_text());
    }
}
