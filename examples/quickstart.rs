//! Quickstart: the paper's running example (Figure 1) end to end.
//!
//! A set of restaurants (points) and a neighborhood (polygon) become
//! canvases; a Blend merges them; a Mask keeps the intersection — that
//! *is* the spatial selection, and the same two operators serve every
//! other query in the library.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use canvas_algebra::prelude::*;

fn main() {
    // --- The data: restaurants in a 10x10 km city ------------------------
    let restaurants = vec![
        Point::new(2.0, 2.5), // id 0
        Point::new(4.5, 4.0), // id 1
        Point::new(5.5, 5.5), // id 2
        Point::new(8.0, 1.5), // id 3
        Point::new(7.5, 8.0), // id 4
    ];
    let data = PointBatch::from_points(restaurants.clone());

    // --- The query: a hand-drawn neighborhood polygon --------------------
    let neighborhood = Polygon::simple(vec![
        Point::new(3.0, 2.0),
        Point::new(7.0, 3.0),
        Point::new(6.5, 7.0),
        Point::new(3.5, 6.0),
    ])
    .expect("valid polygon");

    // --- SELECT * FROM restaurants WHERE Location INSIDE neighborhood ----
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
    let vp = Viewport::square_pixels(extent, 256);
    let mut dev = Device::nvidia();

    // The algebraic plan (Figure 5 of the paper), printable as a diagram:
    let plan = canvas_algebra::core::queries::selection::points_in_polygon_plan(
        std::sync::Arc::new(data.clone()),
        neighborhood.clone(),
    );
    println!("query plan:\n{}", plan.plan());

    let result = queries::selection::select_points_in_polygon(&mut dev, vp, &data, &neighborhood);
    println!("selected restaurant ids: {:?}", result.records);
    for &id in &result.records {
        println!("  restaurant {id} at {}", restaurants[id as usize]);
    }

    // The result is a canvas — still a first-class algebra value: count
    // it with an aggregation over the same result.
    let count = queries::aggregate::count_points_in_polygon(&mut dev, vp, &data, &neighborhood);
    println!("COUNT(*) = {count}");

    println!(
        "\npipeline work: {} fragments, {} full-screen texels, modeled GPU time {:.3} ms",
        dev.stats().fragments,
        dev.stats().fullscreen_texels,
        dev.modeled_time() * 1e3
    );
}
