//! Spatial aggregation: COUNT/SUM of taxi pickups per neighborhood via
//! the RasterJoin-style canvas plan (paper Section 5.2), cross-checked
//! against the traditional join-then-aggregate plan, with an ASCII
//! choropleth of the result.
//!
//! ```text
//! cargo run --release --example spatial_aggregation
//! ```

use canvas_algebra::prelude::*;
use canvas_core::queries::aggregate::aggregate_join_rasterjoin;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let n = 150_000;
    let zones_n = 24;
    println!("{n} pickups, {zones_n} neighborhoods");

    let trips = generate_trips(&extent, n, 16, 99);
    let pickups = PointBatch::with_weights(trips.pickups.clone(), trips.fares.clone());
    let zones: AreaSource = Arc::new(neighborhoods_detailed(&extent, zones_n, 120, 5));
    let vp = Viewport::square_pixels(extent, 512);

    // Canvas plan: B*[+](D*[γc](M[Mp](B[⊙](B*[+](C_P), C_Y)))).
    let mut dev = Device::nvidia();
    let t0 = Instant::now();
    let agg = aggregate_join_rasterjoin(&mut dev, vp, &pickups, &zones);
    let canvas_wall = t0.elapsed();

    // Traditional plan for the cross-check.
    let t0 = Instant::now();
    let (counts, sums, _) =
        canvas_algebra::baseline::aggregate_join_baseline(&trips.pickups, &trips.fares, &zones);
    let baseline_wall = t0.elapsed();
    assert_eq!(agg.counts, counts, "plans must agree");
    for (a, b) in agg.sums.iter().zip(&sums) {
        assert!((a - b).abs() < 1e-2 * b.abs().max(1.0));
    }

    println!(
        "\nzone   pickups   revenue    avg fare   (canvas {:?}, baseline {:?})",
        canvas_wall, baseline_wall
    );
    let mut order: Vec<usize> = (0..zones_n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(agg.counts[i]));
    for &i in order.iter().take(8) {
        println!(
            "{i:>4} {:>9} {:>9.0}$ {:>9.2}$",
            agg.counts[i],
            agg.sums[i],
            agg.avg(i).unwrap_or(0.0)
        );
    }
    println!("  … ({} more zones)", zones_n.saturating_sub(8));

    // ASCII choropleth: shade each cell of a 48x24 grid by its zone's
    // pickup count.
    println!("\npickup density by neighborhood:");
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    let max_count = *agg.counts.iter().max().unwrap_or(&1) as f64;
    for row in (0..24).rev() {
        let mut line = String::with_capacity(48);
        for col in 0..48 {
            let p = Point::new(
                (col as f64 + 0.5) * 100.0 / 48.0,
                (row as f64 + 0.5) * 100.0 / 24.0,
            );
            let zone = zones.iter().position(|z| z.contains_closed(p));
            let shade = match zone {
                Some(z) => {
                    let t = (agg.counts[z] as f64 / max_count).sqrt();
                    shades[((t * (shades.len() - 1) as f64) as usize).min(shades.len() - 1)]
                }
                None => ' ',
            };
            line.push(shade);
        }
        println!("  {line}");
    }
}
