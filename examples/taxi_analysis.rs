//! Taxi-trip analytics: the paper's motivating workload (Section 6) on
//! synthetic data — polygonal selection of pickups, a multi-polygon
//! disjunction, and distance-based selection, with baseline
//! cross-checks.
//!
//! ```text
//! cargo run --release --example taxi_analysis
//! ```

use canvas_algebra::prelude::*;
use canvas_core::queries::selection::{self, MultiPolygon};
use std::time::Instant;

fn main() {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let n = 200_000;
    println!("generating {n} synthetic taxi pickups…");
    let trips = generate_trips(&extent, n, 16, 2020);
    let pickups = PointBatch::with_weights(trips.pickups.clone(), trips.fares.clone());
    let vp = Viewport::square_pixels(extent, 512);

    // --- 1. Selection with one hand-drawn polygon -----------------------
    let mbr = BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0));
    let q = star_polygon(&mbr, 96, 0.5, 7);
    let mut dev = Device::nvidia();
    let t0 = Instant::now();
    let sel = selection::select_points_in_polygon(&mut dev, vp, &pickups, &q);
    let canvas_wall = t0.elapsed();
    let t0 = Instant::now();
    let base = canvas_algebra::baseline::select_scalar(&trips.pickups, std::slice::from_ref(&q));
    let cpu_wall = t0.elapsed();
    assert_eq!(sel.records, base.records, "canvas must equal baseline");
    println!(
        "\n[1] polygonal selection: {} of {n} pickups inside the polygon",
        sel.records.len()
    );
    println!(
        "    canvas wall {:?} vs scalar-CPU wall {:?} (modeled GPU: {:.3} ms)",
        canvas_wall,
        cpu_wall,
        dev.modeled_time() * 1e3
    );

    // --- 2. Disjunction of two polygons (Section 5.1) -------------------
    let q2 = star_polygon(
        &BBox::new(Point::new(10.0, 50.0), Point::new(55.0, 95.0)),
        64,
        0.5,
        8,
    );
    let mut dev = Device::nvidia();
    let multi = selection::select_points_multi(
        &mut dev,
        vp,
        &pickups,
        &[q.clone(), q2.clone()],
        MultiPolygon::Disjunction,
    );
    let base2 = canvas_algebra::baseline::select_scalar(&trips.pickups, &[q.clone(), q2]);
    assert_eq!(multi.records, base2.records);
    println!(
        "[2] 2-polygon disjunction: {} pickups (same blend+mask operators, one extra render)",
        multi.records.len()
    );

    // --- 3. Distance-based selection (Section 4.1, case 3) --------------
    let stand = Point::new(45.0, 55.0);
    let mut dev = Device::nvidia();
    let near = selection::select_points_within_distance_exact(&mut dev, vp, &pickups, stand, 8.0);
    println!(
        "[3] pickups within 8 km of the taxi stand at {stand}: {}",
        near.records.len()
    );

    // --- 4. Revenue inside the polygon (SUM aggregation, Section 4.3) ---
    let mut dev = Device::nvidia();
    let revenue =
        canvas_core::queries::aggregate::sum_points_in_polygon(&mut dev, vp, &pickups, &q);
    let expect: f64 = sel
        .records
        .iter()
        .map(|&i| trips.fares[i as usize] as f64)
        .sum();
    assert!((revenue - expect).abs() < 1e-2 * expect.max(1.0));
    println!("[4] total fare revenue inside the polygon: ${revenue:.2}");

    // --- 5. Pickup-density heatmap as a fused operator chain ------------
    // render → blend → mask → value executes as ONE streamed tile pass:
    // the blended/masked intermediate canvases are never materialized,
    // and at most the policy window of tile buffers is live.
    let mut dev = Device::cpu_parallel(4);
    let t0 = Instant::now();
    let heat = canvas_core::queries::heatmap::selection_heatmap(&mut dev, vp, &pickups, &q);
    let fused_wall = t0.elapsed();
    let window = dev.pool().policy().stream_window(dev.pool().worker_count());
    assert!(heat.peak_tiles_in_flight <= window);
    let mut dev_m = Device::cpu_parallel(4);
    let want =
        canvas_core::queries::heatmap::selection_heatmap_materialized(&mut dev_m, vp, &pickups, &q);
    assert_eq!(heat.canvas.texels(), want.texels(), "fused ≡ materialized");
    let hottest = heat
        .canvas
        .non_null()
        .filter_map(|(x, y, t)| t.get(0).map(|d| (x, y, d.v1)))
        .max_by(|a, b| a.2.total_cmp(&b.2));
    println!(
        "[5] fused heatmap chain: {} tiles streamed, peak {} live (window {window}), wall {:?}",
        heat.tiles, heat.peak_tiles_in_flight, fused_wall
    );
    if let Some((x, y, c)) = hottest {
        println!("    hottest pixel ({x}, {y}) holds {c} pickups");
    }

    // --- 6. Group-by revenue per zone, index-pruned RasterJoin ----------
    let zones = neighborhoods(&extent, 16, 3);
    let mut ptab = canvas_core::table::SpatialTable::new();
    for p in &trips.pickups {
        ptab.push(GeomObject::point(*p));
    }
    ptab.set_attr("fare", trips.fares.clone()).unwrap();
    let mut ztab = canvas_core::table::SpatialTable::new();
    for z in &zones {
        ztab.push(GeomObject::polygon(z.clone()));
    }
    let mut dev = Device::cpu_parallel(4);
    let groups = ptab
        .aggregate_points_in_polygons(&mut dev, vp, &ztab, Some("fare"), 4)
        .unwrap();
    let top = groups
        .sums
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!(
        "[6] index-pruned RasterJoin over {} zones: top zone {} with ${:.2} fares ({} pickups)",
        zones.len(),
        top.0,
        top.1,
        groups.counts[top.0]
    );
}
