//! Taxi-trip analytics: the paper's motivating workload (Section 6) on
//! synthetic data — polygonal selection of pickups, a multi-polygon
//! disjunction, and distance-based selection, with baseline
//! cross-checks.
//!
//! ```text
//! cargo run --release --example taxi_analysis
//! ```

use canvas_algebra::prelude::*;
use canvas_core::queries::selection::{self, MultiPolygon};
use std::time::Instant;

fn main() {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let n = 200_000;
    println!("generating {n} synthetic taxi pickups…");
    let trips = generate_trips(&extent, n, 16, 2020);
    let pickups = PointBatch::with_weights(trips.pickups.clone(), trips.fares.clone());
    let vp = Viewport::square_pixels(extent, 512);

    // --- 1. Selection with one hand-drawn polygon -----------------------
    let mbr = BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0));
    let q = star_polygon(&mbr, 96, 0.5, 7);
    let mut dev = Device::nvidia();
    let t0 = Instant::now();
    let sel = selection::select_points_in_polygon(&mut dev, vp, &pickups, &q);
    let canvas_wall = t0.elapsed();
    let t0 = Instant::now();
    let base = canvas_algebra::baseline::select_scalar(&trips.pickups, std::slice::from_ref(&q));
    let cpu_wall = t0.elapsed();
    assert_eq!(sel.records, base.records, "canvas must equal baseline");
    println!(
        "\n[1] polygonal selection: {} of {n} pickups inside the polygon",
        sel.records.len()
    );
    println!(
        "    canvas wall {:?} vs scalar-CPU wall {:?} (modeled GPU: {:.3} ms)",
        canvas_wall,
        cpu_wall,
        dev.modeled_time() * 1e3
    );

    // --- 2. Disjunction of two polygons (Section 5.1) -------------------
    let q2 = star_polygon(
        &BBox::new(Point::new(10.0, 50.0), Point::new(55.0, 95.0)),
        64,
        0.5,
        8,
    );
    let mut dev = Device::nvidia();
    let multi = selection::select_points_multi(
        &mut dev,
        vp,
        &pickups,
        &[q.clone(), q2.clone()],
        MultiPolygon::Disjunction,
    );
    let base2 = canvas_algebra::baseline::select_scalar(&trips.pickups, &[q.clone(), q2]);
    assert_eq!(multi.records, base2.records);
    println!(
        "[2] 2-polygon disjunction: {} pickups (same blend+mask operators, one extra render)",
        multi.records.len()
    );

    // --- 3. Distance-based selection (Section 4.1, case 3) --------------
    let stand = Point::new(45.0, 55.0);
    let mut dev = Device::nvidia();
    let near = selection::select_points_within_distance_exact(&mut dev, vp, &pickups, stand, 8.0);
    println!(
        "[3] pickups within 8 km of the taxi stand at {stand}: {}",
        near.records.len()
    );

    // --- 4. Revenue inside the polygon (SUM aggregation, Section 4.3) ---
    let mut dev = Device::nvidia();
    let revenue =
        canvas_core::queries::aggregate::sum_points_in_polygon(&mut dev, vp, &pickups, &q);
    let expect: f64 = sel
        .records
        .iter()
        .map(|&i| trips.fares[i as usize] as f64)
        .sum();
    assert!((revenue - expect).abs() < 1e-2 * expect.max(1.0));
    println!("[4] total fare revenue inside the polygon: ${revenue:.2}");
}
