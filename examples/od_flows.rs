//! Origin–destination flows (Section 4.6): which trips start in one
//! zone and end in another, and the full zone-to-zone flow matrix —
//! the paper's "taxi trips between two specific neighborhoods" example.
//!
//! ```text
//! cargo run --release --example od_flows
//! ```

use canvas_algebra::prelude::*;
use canvas_core::queries::od;
use std::sync::Arc;

fn main() {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let n = 80_000;
    let trips = generate_trips(&extent, n, 16, 1234);
    let vp = Viewport::square_pixels(extent, 512);
    let mut dev = Device::nvidia();

    // Two hand-drawn neighborhoods.
    let downtown = star_polygon(
        &BBox::new(Point::new(30.0, 40.0), Point::new(60.0, 70.0)),
        64,
        0.4,
        1,
    );
    let airport = star_polygon(
        &BBox::new(Point::new(70.0, 5.0), Point::new(95.0, 30.0)),
        48,
        0.3,
        2,
    );

    let batch = trips.od_batch();
    let to_airport = od::select_od(&mut dev, vp, &batch, &downtown, &airport);
    let from_airport = od::select_od(&mut dev, vp, &batch, &airport, &downtown);
    println!("downtown → airport trips: {}", to_airport.len());
    println!("airport → downtown trips: {}", from_airport.len());

    // Exact cross-check against a scalar scan.
    let expect = (0..trips.len())
        .filter(|&i| {
            downtown.contains_closed(trips.pickups[i]) && airport.contains_closed(trips.dropoffs[i])
        })
        .count();
    assert_eq!(to_airport.len(), expect);

    // Zone-to-zone flow matrix over a coarse partition.
    let zones: AreaSource = Arc::new(neighborhoods(&extent, 6, 9));
    let matrix = od::od_flow_matrix(&mut dev, vp, &batch, &zones, &zones);
    println!("\nflow matrix (origin zone rows → destination zone columns):");
    print!("      ");
    for j in 0..zones.len() {
        print!("{j:>7}");
    }
    println!();
    for (i, row) in matrix.iter().enumerate() {
        print!("  {i:>3} ");
        for v in row {
            print!("{v:>7}");
        }
        println!();
    }
    let total: u64 = matrix.iter().flatten().sum();
    println!("\n{total} of {n} trips have both endpoints inside the partition extent");
}
