//! Serving concurrent clients from one engine.
//!
//! Four "users" pan/zoom over the same taxi data simultaneously. Each
//! submits a mix of selection, heatmap, choropleth, and aggregation
//! queries; the engine deduplicates identical work, answers repeats
//! from the budgeted canvas cache, and interleaves the rest fairly on
//! one shared worker pool.
//!
//! ```text
//! cargo run --release --example serve_concurrent
//! ```

use canvas_algebra::engine::{EngineConfig, Query, QueryEngine};
use canvas_algebra::prelude::*;
use std::sync::Arc;

fn main() {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let data = Arc::new(PointBatch::from_points(
        canvas_algebra::datagen::taxi_pickups(&extent, 200_000, 42),
    ));
    let zones: AreaSource = Arc::new(canvas_algebra::datagen::neighborhoods(&extent, 16, 11));
    let district = canvas_algebra::datagen::star_polygon(
        &BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0)),
        32,
        0.4,
        7,
    );

    let engine = Arc::new(QueryEngine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    }));
    if let Some(c) = engine.calibration() {
        println!(
            "calibrated min_parallel_items = {} (dispatch {:.1}µs/pass, {:.2}ns/texel)",
            c.derived_min_parallel_items,
            c.dispatch_ns_per_pass / 1e3,
            c.per_item_ns,
        );
    }

    // Each client's pan/zoom path revisits viewports — the reuse the
    // cache exists for.
    let viewports: Vec<Viewport> = vec![
        Viewport::square_pixels(extent, 256),
        Viewport::square_pixels(
            BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 70.0)),
            256,
        ),
        Viewport::square_pixels(
            BBox::new(Point::new(40.0, 40.0), Point::new(90.0, 90.0)),
            256,
        ),
    ];

    let t0 = std::time::Instant::now();
    let mut clients = Vec::new();
    for user in 0..4u64 {
        let engine = Arc::clone(&engine);
        let data = data.clone();
        let zones = zones.clone();
        let district = district.clone();
        let viewports = viewports.clone();
        clients.push(std::thread::spawn(move || {
            for step in 0..12u64 {
                let vp = viewports[((user + step) % viewports.len() as u64) as usize];
                let query = match step % 4 {
                    0 => Query::SelectPoints {
                        data: data.clone(),
                        q: district.clone(),
                    },
                    1 => Query::SelectionHeatmap {
                        data: data.clone(),
                        q: district.clone(),
                    },
                    2 => Query::PolygonDensity {
                        table: zones.clone(),
                        q: district.clone(),
                    },
                    _ => Query::AggregateByZone {
                        data: data.clone(),
                        zones: zones.clone(),
                    },
                };
                let resp = engine.execute(&query, vp).expect("served");
                println!(
                    "user {user} step {step:2}: {:18} {:?} in {:7.2} ms",
                    query.label(),
                    resp.served,
                    resp.exec.as_secs_f64() * 1e3,
                );
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    let wall = t0.elapsed().as_secs_f64();
    let m = engine.metrics();
    let cs = engine.cache_stats();
    let ss = engine.scheduler_stats();
    println!(
        "\nserved {} queries in {wall:.2}s ({:.1} qps)",
        m.submitted,
        m.submitted as f64 / wall
    );
    println!(
        "  computed {}, cache hits {}, coalesced {} (reuse rate {:.0}%)",
        m.computed,
        m.cache_hits,
        m.coalesced,
        m.reuse_rate() * 100.0
    );
    println!(
        "  cache: {} entries, {:.1} MiB resident, {} evictions",
        cs.entries,
        cs.bytes as f64 / (1 << 20) as f64,
        cs.evictions
    );
    println!(
        "  scheduler: {} pass grants, {} handovers, fairness {:?}",
        ss.grants,
        ss.handovers,
        ss.jain_index().map(|j| (j * 100.0).round() / 100.0),
    );
}
