//! A GIS-flavored workflow: load geometry from WKT into spatial tables,
//! run selections over points / polygons / lines with the *same* engine,
//! and export a canvas as a PGM image — demonstrating the relational
//! integration surface of paper Section 7.
//!
//! ```text
//! cargo run --example gis_workflow
//! ```

use canvas_algebra::prelude::*;
use canvas_core::{viz, SpatialTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Load three tables from WKT (the lingua franca of PostGIS etc.)
    let mut restaurants = SpatialTable::from_wkt_lines(
        "POINT (12 14)\n\
         POINT (25 31)\n\
         POINT (42 18)\n\
         POINT (48 47)\n\
         POINT (66 59)\n\
         POINT (71 22)\n\
         POINT (83 76)\n\
         POINT (35 64)",
    )?;
    restaurants.set_attr("rating", vec![4.5, 3.0, 4.9, 4.0, 2.5, 3.8, 4.2, 4.7])?;

    let districts = SpatialTable::from_wkt_lines(
        "POLYGON ((5 5, 45 5, 45 45, 5 45, 5 5))\n\
         POLYGON ((40 40, 90 40, 90 90, 40 90, 40 40))\n\
         POLYGON ((55 5, 95 5, 95 35, 55 35, 55 5))",
    )?;

    let roads = SpatialTable::from_wkt_lines(
        "LINESTRING (0 30, 100 35)\n\
         LINESTRING (50 0, 55 100)\n\
         LINESTRING (0 90, 30 60, 70 95)",
    )?;

    // --- A hand-drawn query region -------------------------------------
    let query =
        canvas_geom::wkt::parse_wkt("POLYGON ((20 20, 60 15, 70 50, 45 70, 15 55, 20 20))")?;
    let q = match &query.primitives()[0] {
        canvas_geom::Primitive::Area(p) => p.clone(),
        _ => unreachable!(),
    };

    // --- Same engine, three geometry types ------------------------------
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let vp = Viewport::square_pixels(extent, 256);
    let mut dev = Device::nvidia();

    let r = restaurants.select_in_polygon(&mut dev, vp, &q)?;
    println!("restaurants in the region: {r:?}");
    if let Some(ratings) = restaurants.attr("rating") {
        let avg: f32 = r.iter().map(|&i| ratings[i as usize]).sum::<f32>() / r.len().max(1) as f32;
        println!("  average rating: {avg:.2}");
    }

    let d = districts.select_in_polygon(&mut dev, vp, &q)?;
    println!("districts intersecting the region: {d:?}");

    let streets = roads.select_in_polygon(&mut dev, vp, &q)?;
    println!("roads crossing the region: {streets:?}");

    // --- Render the query region canvas to an image ---------------------
    let canvas = render_query_polygon(&mut dev, vp, q, 1);
    let pgm = viz::to_pgm(&canvas, viz::Shade::Support);
    std::fs::create_dir_all("results")?;
    std::fs::write("results/query_region.pgm", &pgm)?;
    println!("\nwrote results/query_region.pgm ({} bytes)", pgm.len());
    println!(
        "\nquery region as ASCII:\n{}",
        viz::to_ascii(&canvas, 48, 20, viz::Shade::Support)
    );
    Ok(())
}
