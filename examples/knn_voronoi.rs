//! Nearest-neighbor analytics: kNN via the circle-ladder workflow
//! (Section 4.4) and the Voronoi stored procedure (Section 4.5), with an
//! ASCII rendering of the diagram.
//!
//! ```text
//! cargo run --release --example knn_voronoi
//! ```

use canvas_algebra::prelude::*;
use canvas_core::queries::{knn, voronoi};

fn main() {
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let vp = Viewport::square_pixels(extent, 256);
    let mut dev = Device::nvidia();

    // --- kNN over a clustered point cloud --------------------------------
    let pts = taxi_pickups(&extent, 50_000, 314);
    let batch = PointBatch::from_points(pts.clone());
    let query = Point::new(45.0, 55.0);
    for k in [1usize, 5, 25] {
        let ids = knn::knn(&mut dev, vp, &batch, query, k);
        let farthest = ids
            .last()
            .map(|&i| pts[i as usize].dist(query))
            .unwrap_or(0.0);
        println!(
            "k = {k:>2}: nearest ids {:?}{} (radius {farthest:.3})",
            &ids[..ids.len().min(5)],
            if ids.len() > 5 { ", …" } else { "" }
        );
    }

    // --- Voronoi diagram of service stations -----------------------------
    let stations = jittered_sites_demo(&extent);
    println!(
        "\nVoronoi diagram of {} stations (each region = nearest station):",
        stations.len()
    );
    let diagram = voronoi::compute_voronoi(&mut dev, vp, &stations);
    let glyphs: Vec<char> = "0123456789abcdef".chars().collect();
    for row in (0..24).rev() {
        let mut line = String::new();
        for col in 0..48 {
            let p = Point::new(
                (col as f64 + 0.5) * 100.0 / 48.0,
                (row as f64 + 0.5) * 100.0 / 24.0,
            );
            let site = voronoi::voronoi_site_at(&diagram, p).unwrap_or(0) as usize;
            line.push(glyphs[site % glyphs.len()]);
        }
        println!("  {line}");
    }
    let areas = voronoi::voronoi_cell_areas(&diagram, stations.len());
    let busiest = areas
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, a)| (i, *a))
        .unwrap();
    println!(
        "largest service region: station {} covering {:.0} km²",
        busiest.0, busiest.1
    );
}

fn jittered_sites_demo(extent: &BBox) -> Vec<Point> {
    canvas_algebra::datagen::jittered_sites(extent, 9, 77)
}
