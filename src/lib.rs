//! # canvas-algebra
//!
//! Umbrella crate for the Rust reproduction of *"A GPU-friendly
//! Geometric Data Model and Algebra for Spatial Queries"* (Doraiswamy &
//! Freire, SIGMOD 2020). It re-exports the workspace crates under one
//! roof and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! * [`geom`] — geometry substrate (primitives, predicates, indexes),
//! * [`raster`] — software graphics pipeline + GPU device cost model,
//! * [`core`] — the canvas data model, the algebra, and the paper's
//!   query formulations,
//! * [`engine`] — the concurrent query-serving engine (admission,
//!   fingerprint-keyed canvas cache, fair-share pass scheduling),
//! * [`baseline`] — CPU / parallel-CPU / traditional-GPU baselines,
//! * [`datagen`] — seeded synthetic workloads (taxi trips, calibrated
//!   query polygons, neighborhood partitions),
//! * [`obs`] — observability: trace spans, the histogram metrics
//!   registry, and the Chrome-trace/Perfetto exporter (see
//!   `docs/OBSERVABILITY.md`).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! the substitution table, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub use canvas_baseline as baseline;
pub use canvas_core as core;
pub use canvas_datagen as datagen;
pub use canvas_engine as engine;
pub use canvas_geom as geom;
pub use canvas_obs as obs;
pub use canvas_raster as raster;

/// One-stop prelude for applications: the core prelude plus workload
/// generators.
pub mod prelude {
    pub use canvas_core::prelude::*;
    pub use canvas_datagen::{
        calibrated_polygon, generate_trips, neighborhoods, neighborhoods_detailed, star_polygon,
        taxi_pickups, uniform_points,
    };
    pub use canvas_geom::{BBox, GeomObject, Point, Polygon, Polyline, Primitive};
}
