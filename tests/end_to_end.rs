//! End-to-end scenario tests: the full taxi-analytics pipeline across
//! every query class, plus device-accounting sanity (the performance
//! *shape* claims of the paper hold under the cost model).

use canvas_algebra::prelude::*;
use canvas_core::queries::{knn, od, selection, voronoi};
use std::sync::Arc;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

#[test]
fn taxi_pipeline_end_to_end() {
    let vp = Viewport::square_pixels(extent(), 256);
    let trips = generate_trips(&extent(), 12_000, 16, 2026);
    let pickups = PointBatch::with_weights(trips.pickups.clone(), trips.fares.clone());
    let mut dev = Device::nvidia();

    // 1. Selection: evening rush near downtown.
    let downtown = star_polygon(
        &BBox::new(Point::new(30.0, 35.0), Point::new(65.0, 75.0)),
        96,
        0.5,
        1,
    );
    let sel = selection::select_points_in_polygon(&mut dev, vp, &pickups, &downtown);
    assert!(!sel.records.is_empty());

    // 2. kNN: the 5 pickups nearest the stadium agree with brute force.
    let stadium = Point::new(70.0, 65.0);
    let nearest = knn::knn(&mut dev, vp, &pickups, stadium, 5);
    let mut brute: Vec<(f64, u32)> = trips
        .pickups
        .iter()
        .enumerate()
        .map(|(i, p)| (p.dist_sq(stadium), i as u32))
        .collect();
    brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let brute5: Vec<u32> = brute[..5].iter().map(|(_, i)| *i).collect();
    assert_eq!(nearest, brute5);

    // 3. OD: trips from downtown to the airport zone.
    let airport = star_polygon(
        &BBox::new(Point::new(75.0, 5.0), Point::new(98.0, 28.0)),
        48,
        0.3,
        2,
    );
    let flows = od::select_od(&mut dev, vp, &trips.od_batch(), &downtown, &airport);
    let expect = (0..trips.len())
        .filter(|&i| {
            downtown.contains_closed(trips.pickups[i]) && airport.contains_closed(trips.dropoffs[i])
        })
        .count();
    assert_eq!(flows.len(), expect);

    // 4. Voronoi service areas around 6 garages.
    let garages = canvas_algebra::datagen::jittered_sites(&extent(), 6, 3);
    let diagram = voronoi::compute_voronoi(&mut dev, vp, &garages);
    assert_eq!(diagram.non_null_count(), 256 * 256);
    let areas = voronoi::voronoi_cell_areas(&diagram, garages.len());
    let total: f64 = areas.iter().sum();
    assert!((total - 10_000.0).abs() < 1e-6);

    // 5. Convex hull of the selected pickups.
    let hull = canvas_core::queries::hull::hull_of_selection(&mut dev, vp, &pickups, &downtown);
    assert!(hull.len() >= 3);
    for &id in &sel.records {
        assert!(canvas_geom::hull::hull_contains(
            &hull,
            trips.pickups[id as usize]
        ));
    }
}

#[test]
fn paper_shape_claims_hold_under_cost_model() {
    // The three structural performance claims of Section 6, validated on
    // the device model at reproduction scale.
    let vp = Viewport::square_pixels(extent(), 256);
    let pts = taxi_pickups(&extent(), 60_000, 5);
    let batch = PointBatch::from_points(pts.clone());
    let mbr = BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0));
    let q1 = star_polygon(&mbr, 128, 0.5, 6);
    let q2 = star_polygon(&mbr, 128, 0.5, 7);

    // Canvas on the discrete GPU.
    let mut nv = Device::nvidia();
    let c1 = selection::select_points_in_polygon(&mut nv, vp, &batch, &q1);
    let nv_time = nv.modeled_time();

    // Canvas on the integrated GPU.
    let mut intel = Device::intel();
    let _ = selection::select_points_in_polygon(&mut intel, vp, &batch, &q1);
    let intel_time = intel.modeled_time();

    // GPU PIP baseline.
    let mut gb = Device::nvidia();
    let b1 =
        canvas_algebra::baseline::select_gpu_baseline(&mut gb, &pts, std::slice::from_ref(&q1));
    let gpu_baseline_time = gb.modeled_time();

    // CPU scalar (modeled from counted edge tests).
    let cpu = canvas_algebra::baseline::select_scalar(&pts, std::slice::from_ref(&q1));
    let cpu_time =
        canvas_raster::DeviceProfile::cpu_scalar().estimate(&canvas_raster::PipelineStats {
            compute_edge_tests: cpu.edge_tests,
            ..Default::default()
        });
    assert_eq!(c1.records, b1.records);

    // Claim 1: every GPU approach is >= 2 orders of magnitude over CPU.
    assert!(cpu_time / nv_time > 100.0, "nvidia {}", cpu_time / nv_time);
    assert!(
        cpu_time / gpu_baseline_time > 50.0,
        "gpu baseline {}",
        cpu_time / gpu_baseline_time
    );
    // Claim 2 (incl. the Intel observation): integrated GPU is slower
    // than discrete but still far ahead of the CPU.
    assert!(intel_time > nv_time);
    assert!(
        cpu_time / intel_time > 20.0,
        "intel {}",
        cpu_time / intel_time
    );
    // Claim 3: the canvas margin over the GPU baseline grows with the
    // number of constraints.
    let mut nv2 = Device::nvidia();
    let _ = selection::select_points_multi(
        &mut nv2,
        vp,
        &batch,
        &[q1.clone(), q2.clone()],
        selection::MultiPolygon::Disjunction,
    );
    let nv2_time = nv2.modeled_time();
    let mut gb2 = Device::nvidia();
    let _ = canvas_algebra::baseline::select_gpu_baseline(&mut gb2, &pts, &[q1, q2]);
    let gb2_time = gb2.modeled_time();
    let margin1 = gpu_baseline_time / nv_time;
    let margin2 = gb2_time / nv2_time;
    assert!(
        margin2 > margin1,
        "margin must grow with constraints: {margin1} → {margin2}"
    );
}

#[test]
fn transfer_time_significant_fraction() {
    // Section 6: "the time to transfer data between the CPU and GPU ...
    // is a significant fraction of the query time".
    let vp = Viewport::square_pixels(extent(), 256);
    let pts = taxi_pickups(&extent(), 100_000, 8);
    let batch = PointBatch::from_points(pts);
    let q = star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0)),
        64,
        0.5,
        9,
    );
    let mut dev = Device::nvidia();
    let _ = selection::select_points_in_polygon(&mut dev, vp, &batch, &q);
    let transfer = dev.modeled_transfer_time();
    let total = dev.modeled_time();
    assert!(
        transfer / total > 0.2,
        "transfer fraction {}",
        transfer / total
    );
}

#[test]
fn stats_accounting_consistent() {
    let vp = Viewport::square_pixels(extent(), 128);
    let pts = uniform_points(&extent(), 1_000, 10);
    let batch = PointBatch::from_points(pts);
    let q = star_polygon(
        &BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0)),
        32,
        0.4,
        11,
    );
    let mut dev = Device::nvidia();
    assert_eq!(dev.stats().fragments, 0);
    let _ = selection::select_points_in_polygon(&mut dev, vp, &batch, &q);
    let st = dev.stats();
    assert!(st.passes >= 4, "render, render, blend, mask");
    assert!(st.fragments >= 1_000, "each point shades a fragment");
    assert!(st.boundary_fragments > 0);
    assert!(st.bytes_uploaded > 0);
    dev.reset_stats();
    assert_eq!(dev.stats().fragments, 0);

    // Zones with the same Arc are not re-registered per blend.
    let zones: AreaSource = Arc::new(neighborhoods(&extent(), 4, 12));
    let c1 = render_polygon(&mut dev, vp, &zones, 0, 0);
    let c2 = render_polygon(&mut dev, vp, &zones, 1, 1);
    let merged = blend(&mut dev, &c1, &c2, BlendFn::AreaCount);
    assert_eq!(merged.area_sources().len(), 1);
}
