//! Integration: every selection variant of the canvas algebra must
//! agree bit-for-bit with the exact CPU baselines on realistic
//! generated workloads — the exactness contract of paper Section 5.

use canvas_algebra::prelude::*;
use canvas_core::queries::selection::{self, MultiPolygon};

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

#[test]
fn polygonal_selection_equals_baselines_across_seeds() {
    for seed in [1u64, 7, 42] {
        let pts = taxi_pickups(&extent(), 8_000, seed);
        let mbr = BBox::new(Point::new(15.0, 20.0), Point::new(80.0, 85.0));
        let q = star_polygon(&mbr, 72, 0.55, seed + 100);
        let batch = PointBatch::from_points(pts.clone());
        let vp = Viewport::square_pixels(extent(), 256);

        let mut dev = Device::nvidia();
        let canvas = selection::select_points_in_polygon(&mut dev, vp, &batch, &q);
        let scalar = canvas_algebra::baseline::select_scalar(&pts, std::slice::from_ref(&q));
        let parallel = canvas_algebra::baseline::select_parallel(&pts, std::slice::from_ref(&q), 4);
        let mut gdev = Device::nvidia();
        let gpu = canvas_algebra::baseline::select_gpu_baseline(
            &mut gdev,
            &pts,
            std::slice::from_ref(&q),
        );

        assert_eq!(
            canvas.records, scalar.records,
            "seed {seed}: canvas vs scalar"
        );
        assert_eq!(
            scalar.records, parallel.records,
            "seed {seed}: scalar vs parallel"
        );
        assert_eq!(scalar.records, gpu.records, "seed {seed}: scalar vs gpu");
        assert!(!canvas.records.is_empty());
    }
}

#[test]
fn disjunction_equals_baseline() {
    let pts = taxi_pickups(&extent(), 6_000, 5);
    let qs = vec![
        star_polygon(
            &BBox::new(Point::new(10.0, 10.0), Point::new(50.0, 50.0)),
            48,
            0.5,
            1,
        ),
        star_polygon(
            &BBox::new(Point::new(40.0, 40.0), Point::new(90.0, 90.0)),
            48,
            0.5,
            2,
        ),
        star_polygon(
            &BBox::new(Point::new(60.0, 5.0), Point::new(95.0, 40.0)),
            48,
            0.5,
            3,
        ),
    ];
    let batch = PointBatch::from_points(pts.clone());
    let vp = Viewport::square_pixels(extent(), 256);
    let mut dev = Device::nvidia();
    let canvas =
        selection::select_points_multi(&mut dev, vp, &batch, &qs, MultiPolygon::Disjunction);
    let scalar = canvas_algebra::baseline::select_scalar(&pts, &qs);
    assert_eq!(canvas.records, scalar.records);
}

#[test]
fn conjunction_equals_baseline() {
    let pts = taxi_pickups(&extent(), 6_000, 6);
    let qs = vec![
        star_polygon(
            &BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 70.0)),
            48,
            0.4,
            4,
        ),
        star_polygon(
            &BBox::new(Point::new(35.0, 35.0), Point::new(85.0, 85.0)),
            48,
            0.4,
            5,
        ),
    ];
    let batch = PointBatch::from_points(pts.clone());
    let vp = Viewport::square_pixels(extent(), 256);
    let mut dev = Device::nvidia();
    let canvas =
        selection::select_points_multi(&mut dev, vp, &batch, &qs, MultiPolygon::Conjunction);
    let scalar = canvas_algebra::baseline::select_scalar_conjunction(&pts, &qs);
    assert_eq!(canvas.records, scalar.records);
}

#[test]
fn rect_halfspace_distance_constraints() {
    let pts = uniform_points(&extent(), 5_000, 11);
    let batch = PointBatch::from_points(pts.clone());
    let vp = Viewport::square_pixels(extent(), 256);
    let mut dev = Device::nvidia();

    // Rect.
    let sel = selection::select_points_in_rect(
        &mut dev,
        vp,
        &batch,
        Point::new(25.0, 30.0),
        Point::new(70.0, 75.0),
    );
    let want: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| (25.0..=70.0).contains(&p.x) && (30.0..=75.0).contains(&p.y))
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(sel.records, want);

    // Half space: y > x  <=>  x - y < 0.
    let sel = selection::select_points_in_halfspace(&mut dev, vp, &batch, 1.0, -1.0, 0.0);
    let want: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| p.x <= p.y)
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(sel.records, want);

    // Distance.
    let c = Point::new(40.0, 60.0);
    let sel = selection::select_points_within_distance_exact(&mut dev, vp, &batch, c, 17.5);
    let want: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| p.dist(c) <= 17.5)
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(sel.records, want);
}

#[test]
fn polygon_data_selection_equals_vector_test() {
    // The reuse claim (paper Section 5.1): the same operators select
    // polygon records; results must match exact vector intersection.
    let zones = neighborhoods(&extent(), 25, 3);
    let q = star_polygon(
        &BBox::new(Point::new(25.0, 25.0), Point::new(75.0, 75.0)),
        64,
        0.5,
        9,
    );
    let table: AreaSource = std::sync::Arc::new(zones.clone());
    let vp = Viewport::square_pixels(extent(), 256);
    let mut dev = Device::nvidia();
    let sel = selection::select_polygons_intersecting(&mut dev, vp, &table, &q);
    let want: Vec<u32> = zones
        .iter()
        .enumerate()
        .filter(|(_, z)| z.intersects(&q))
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(sel.records, want);
    assert!(!want.is_empty());
    assert!(want.len() < zones.len());
}

#[test]
fn device_profile_does_not_change_answers() {
    // Determinism across devices: the modeled hardware affects time,
    // never results.
    let pts = taxi_pickups(&extent(), 3_000, 21);
    let q = star_polygon(
        &BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0)),
        64,
        0.5,
        22,
    );
    let batch = PointBatch::from_points(pts);
    let vp = Viewport::square_pixels(extent(), 256);
    let mut nv = Device::nvidia();
    let mut intel = Device::intel();
    let a = selection::select_points_in_polygon(&mut nv, vp, &batch, &q);
    let b = selection::select_points_in_polygon(&mut intel, vp, &batch, &q);
    assert_eq!(a.records, b.records);
}
