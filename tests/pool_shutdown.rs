//! CI pool-shutdown leak check: a `Device`'s persistent worker pool is
//! spawned once by `cpu_parallel(n)`, re-used across passes without
//! spawning anything further, and **fully joined when the device
//! drops** — no lingering executor threads in the process afterwards.
//!
//! This file holds exactly one test so the process-wide worker count is
//! not perturbed by sibling tests in the same binary.

use canvas_algebra::prelude::*;
use canvas_raster::live_worker_count;

#[test]
fn device_drop_joins_all_pool_workers() {
    let baseline = live_worker_count();
    {
        let mut dev = Device::cpu_parallel(8);
        assert_eq!(
            live_worker_count(),
            baseline + 7,
            "cpu_parallel(8) must spawn exactly 7 background workers"
        );

        // Drive real pipeline work through the pool: a selection over a
        // 256² viewport exercises tiled draws, blend, and mask passes.
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let pts = uniform_points(&extent, 20_000, 7);
        let mbr = BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0));
        let poly = star_polygon(&mbr, 32, 0.6, 3);
        let vp = Viewport::square_pixels(extent, 256);
        let sel = canvas_core::queries::selection::select_points_in_polygon(
            &mut dev,
            vp,
            &PointBatch::from_points(pts),
            &poly,
        );
        assert!(!sel.records.is_empty());
        assert_eq!(
            live_worker_count(),
            baseline + 7,
            "passes must reuse the pool, not spawn more threads"
        );

        // A 1-thread device spawns nothing at all.
        let cpu = Device::cpu();
        assert_eq!(live_worker_count(), baseline + 7);
        drop(cpu);
    }
    assert_eq!(
        live_worker_count(),
        baseline,
        "worker threads leaked after Device drop"
    );
}
