//! Integration + property tests for the algebra's structural laws:
//! closure, blend associativity (Section 3.2), mask idempotence,
//! dissect/blend reconstruction, and rewrite-equivalence (Section 7).

use std::sync::Arc;

use canvas_algebra::prelude::*;
use canvas_core::algebra::{flatten_multiblend, optimize, Expr};
use canvas_core::ops::{self, CountCond, MaskSpec};
use proptest::prelude::*;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn vp() -> Viewport {
    Viewport::square_pixels(extent(), 64)
}

#[test]
fn mask_is_idempotent() {
    let mut dev = Device::nvidia();
    let pts = uniform_points(&extent(), 500, 3);
    let q = star_polygon(
        &BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0)),
        48,
        0.5,
        4,
    );
    let cp = render_points(&mut dev, vp(), &PointBatch::from_points(pts));
    let cq = render_query_polygon(&mut dev, vp(), q, 1);
    let merged = blend(&mut dev, &cp, &cq, BlendFn::PointOverArea);
    let spec = MaskSpec::PointInAreas(CountCond::Ge(1));
    let once = mask(&mut dev, &merged, &spec);
    let twice = mask(&mut dev, &once, &spec);
    assert_eq!(once.texels(), twice.texels());
    assert_eq!(once.point_records(), twice.point_records());
}

#[test]
fn dissect_then_multiway_blend_reconstructs() {
    // D followed by B*[∪] is the identity on canvas support.
    let mut dev = Device::nvidia();
    let pts = uniform_points(&extent(), 40, 9);
    let c = render_points(&mut dev, vp(), &PointBatch::from_points(pts));
    let parts = ops::dissect(&c);
    let refs: Vec<&canvas_core::Canvas> = parts.iter().collect();
    let rebuilt = ops::multiway_blend(&mut dev, &refs, BlendFn::Over).unwrap();
    for (x, y, t) in c.non_null() {
        assert_eq!(rebuilt.texel(x, y), t, "mismatch at ({x},{y})");
    }
    assert_eq!(rebuilt.non_null_count(), c.non_null_count());
}

#[test]
fn blend_with_empty_canvas_is_identity() {
    let mut dev = Device::nvidia();
    let pts = uniform_points(&extent(), 100, 13);
    let c = render_points(&mut dev, vp(), &PointBatch::from_points(pts));
    let empty = canvas_core::Canvas::empty(vp());
    let merged = blend(&mut dev, &c, &empty, BlendFn::Over);
    assert_eq!(merged.texels(), c.texels());
}

#[test]
fn geometric_transform_invertible() {
    // Translating there and back preserves the result set.
    let mut dev = Device::nvidia();
    let pts = uniform_points(&extent(), 200, 17);
    let c = render_points(&mut dev, vp(), &PointBatch::from_points(pts));
    let fwd = ops::transform_positions(
        &mut dev,
        &c,
        &ops::PositionMap::Translate(Point::new(3.0, -2.0)),
        vp(),
    );
    let back = ops::transform_positions(
        &mut dev,
        &fwd,
        &ops::PositionMap::Translate(Point::new(-3.0, 2.0)),
        vp(),
    );
    // Points near the border may leave the viewport and be pruned; all
    // surviving records must land back where they started.
    for e in back.boundary().points() {
        let orig = c
            .boundary()
            .points()
            .iter()
            .find(|o| o.record == e.record)
            .expect("record existed");
        assert!(orig.loc.dist(e.loc) < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Associative blends really associate on arbitrary texel triples.
    /// Metadata is integer-valued (counts / integral weights) — that is
    /// what the paper's blends accumulate, and it keeps f32 addition
    /// exact so the algebraic law holds bitwise.
    #[test]
    fn blend_fn_associativity(
        ids in prop::array::uniform3(0u32..100),
        v1s_i in prop::array::uniform3(0u16..1000),
        v2s_i in prop::array::uniform3(0u16..1000),
        dims in prop::array::uniform3(0usize..3),
    ) {
        let v1s: Vec<f32> = v1s_i.iter().map(|&v| v as f32).collect();
        let v2s: Vec<f32> = v2s_i.iter().map(|&v| v as f32).collect();
        let texels: Vec<Texel> = (0..3)
            .map(|i| Texel::with_dim(dims[i], DimInfo::new(ids[i], v1s[i], v2s[i])))
            .collect();
        for op in [BlendFn::Over, BlendFn::Accumulate, BlendFn::PointAccumulate, BlendFn::AreaCount] {
            prop_assert!(op.is_associative());
            let left = op.apply(op.apply(texels[0], texels[1]), texels[2]);
            let right = op.apply(texels[0], op.apply(texels[1], texels[2]));
            prop_assert_eq!(left, right, "{:?}", op);
        }
    }

    /// ∅ is the identity of Over on both sides.
    #[test]
    fn over_identity(
        id in 0u32..100,
        v1 in 0.0f32..10.0,
        d in 0usize..3,
    ) {
        let t = Texel::with_dim(d, DimInfo::new(id, v1, 0.0));
        prop_assert_eq!(BlendFn::Over.apply(t, Texel::null()), t);
        prop_assert_eq!(BlendFn::Over.apply(Texel::null(), t), t);
    }

    /// Plan rewriting never changes query answers (Section 7's plan-
    /// equivalence requirement) and never increases the cost heuristic.
    #[test]
    fn rewrites_preserve_semantics(
        seed in 0u64..500,
        k in 1usize..4,
        n in 50usize..300,
    ) {
        let pts = uniform_points(&extent(), n, seed);
        let data = Arc::new(PointBatch::from_points(pts));
        let polys: Vec<Polygon> = (0..k)
            .map(|i| star_polygon(
                &BBox::new(Point::new(10.0, 10.0), Point::new(90.0, 90.0)),
                16,
                0.5,
                seed * 31 + i as u64,
            ))
            .collect();
        let plan = canvas_core::queries::selection::points_in_polygons_plan(
            data,
            &polys,
            canvas_core::queries::selection::MultiPolygon::Disjunction,
        );
        let optimized = optimize(plan.clone());
        let flattened = flatten_multiblend(plan.clone());

        let mut d1 = Device::nvidia();
        let r1 = plan.eval(&mut d1, vp());
        let mut d2 = Device::nvidia();
        let r2 = optimized.eval(&mut d2, vp());
        let mut d3 = Device::nvidia();
        let r3 = flattened.eval(&mut d3, vp());
        prop_assert_eq!(r1.point_records(), r2.point_records());
        prop_assert_eq!(r2.point_records(), r3.point_records());
        prop_assert!(optimized.cost() <= plan.cost() + 1e-9);
    }

    /// Closure: the output of any operator chain is a canvas that can be
    /// masked again without error, and empty masks produce empty
    /// canvases (the pruning convention of Section 4).
    #[test]
    fn closure_and_pruning(seed in 0u64..200, n in 10usize..200) {
        let pts = uniform_points(&extent(), n, seed);
        let mut dev = Device::nvidia();
        let c = render_points(&mut dev, vp(), &PointBatch::from_points(pts));
        let never = MaskSpec::Texel("false", Arc::new(|_: &Texel| false));
        let masked = mask(&mut dev, &c, &never);
        prop_assert!(masked.is_empty());
        let again = mask(&mut dev, &masked, &never);
        prop_assert!(again.is_empty());
    }
}

#[test]
fn expression_plans_print_paper_figures() {
    // Figure 8(b)'s plan shape is reproducible from the builder API.
    let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
    let table: AreaSource = Arc::new(vec![
        star_polygon(&extent(), 12, 0.3, 1),
        star_polygon(&extent(), 12, 0.3, 2),
    ]);
    let plan = Expr::mask(
        MaskSpec::PointInAreas(CountCond::Ge(1)),
        Expr::blend(
            BlendFn::PointOverArea,
            Expr::points(data),
            Expr::multi_blend(
                BlendFn::AreaCount,
                vec![
                    Expr::polygon_record(table.clone(), 0, 0),
                    Expr::polygon_record(table, 1, 1),
                ],
            ),
        ),
    );
    let diagram = plan.plan();
    assert!(diagram.contains("Mp'"));
    assert!(diagram.contains("B[⊙]"));
    assert!(diagram.contains("B*[⊕]"));
    let fused = optimize(plan).plan();
    assert!(fused.contains("C_Y*[2 polygons"));
}
