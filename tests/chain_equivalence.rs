//! Streamed ≡ materialized equivalence harness for fused operator
//! chains.
//!
//! The fused-execution contract (PR "Fused streaming operator chains"):
//! running `render(points) → op₁ → … → opₖ` tile-streamed through the
//! executor's multi-stage hand-off produces **bit-identical** canvases
//! — texel plane, certain-cover plane, boundary index — *and* identical
//! pipeline work counters, compared against
//!
//! 1. the materialized plan (one whole-canvas pass per operator), and
//! 2. the sequential `Device::cpu` reference,
//!
//! for random chains of depth 1–4 with random operators and parameters,
//! across thread counts {1, 2, 3, 8}. The fused run must additionally
//! keep at most `Policy::stream_window(workers)` tile buffers live.

use canvas_algebra::prelude::*;
use canvas_core::ops::chain::{run_points_chain, run_points_chain_materialized, CanvasChain};
use canvas_core::queries::heatmap;
use canvas_raster::{Policy, WorkerPool};
use proptest::prelude::*;
use std::sync::Arc;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

/// A chain operator as pure data, so the same random plan can be
/// instantiated against any device (operand canvases must be rendered
/// by the device under test for stats parity).
#[derive(Clone, Copy, Debug)]
enum OpSpec {
    /// Value Transform variant + parameter.
    Value(u8, f32),
    /// Blend with the k-th operand polygon canvas, via blend-fn variant.
    Blend(u8),
    /// Coarse texel mask variant + parameter.
    Mask(u8, f32),
}

fn blend_fn(variant: u8) -> BlendFn {
    match variant % 4 {
        0 => BlendFn::Over,
        1 => BlendFn::PointOverArea,
        2 => BlendFn::PointAccumulate,
        _ => BlendFn::Accumulate,
    }
}

/// Strategy: a random chain of depth 1–4 (the shim has no `prop_oneof`,
/// so kind and variant fold into one integer: kind = k % 3,
/// variant = k / 3).
fn arb_chain() -> impl Strategy<Value = Vec<OpSpec>> {
    prop::collection::vec(
        (0u8..12, 0.5f32..4.0).prop_map(|(k, p)| match k % 3 {
            0 => OpSpec::Value(k / 3, p),
            1 => OpSpec::Blend(k / 3),
            _ => OpSpec::Mask(k / 3, p),
        }),
        1..5,
    )
}

/// Renders one operand polygon canvas per Blend op (same geometry and
/// order on every device) and builds the borrowed chain.
fn build_chain<'a>(specs: &[OpSpec], operands: &'a [Canvas]) -> CanvasChain<'a> {
    let mut chain = CanvasChain::new();
    let mut next_operand = 0usize;
    for spec in specs {
        chain = match *spec {
            OpSpec::Value(0, p) => chain.value(move |_, mut t| {
                if let Some(mut d) = t.get(0) {
                    d.v2 *= p;
                    t.set(0, d);
                }
                t
            }),
            OpSpec::Value(1, p) => chain.value(move |loc, mut t| {
                if !t.is_null() {
                    let mut d = t.get(0).unwrap_or_default();
                    d.v2 = (loc.x * 0.25 + loc.y) as f32 + p;
                    t.set(0, d);
                }
                t
            }),
            // A *nulling* value transform: stresses the interaction of
            // later masks with pixels a value stage already nulled.
            OpSpec::Value(_, p) => chain.value(move |_, t| match t.get(0) {
                Some(d) if d.v1 < p => Texel::null(),
                _ => t,
            }),
            OpSpec::Blend(v) => {
                let c = &operands[next_operand];
                next_operand += 1;
                chain.blend(c, blend_fn(v))
            }
            OpSpec::Mask(0, _) => chain.mask("has-point", |t: &Texel| t.has(0)),
            OpSpec::Mask(1, _) => chain.mask("has-area", |t: &Texel| t.has(2)),
            OpSpec::Mask(_, p) => chain.mask("count>=k", move |t: &Texel| {
                t.get(0).map(|d| d.v1 >= p).unwrap_or(false)
            }),
        };
    }
    chain
}

/// Renders the Blend operands for a spec list, in spec order.
fn render_operands(dev: &mut Device, vp: Viewport, specs: &[OpSpec], seed: u64) -> Vec<Canvas> {
    specs
        .iter()
        .filter(|s| matches!(s, OpSpec::Blend(_)))
        .enumerate()
        .map(|(k, _)| {
            let mbr = BBox::new(
                Point::new(10.0 + 7.0 * k as f64, 12.0 + 5.0 * k as f64),
                Point::new(70.0 + 6.0 * k as f64, 75.0 + 4.0 * k as f64),
            );
            let poly = star_polygon(&mbr, 10 + 3 * k, 0.6, seed + k as u64);
            canvas_core::source::render_query_polygon(dev, vp, poly, k as u32 + 1)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant: random chains, streamed vs materialized
    /// vs `Device::cpu`, bit-identical planes + boundary + stats across
    /// threads {1, 2, 3, 8}; fused peak live tiles within the window.
    #[test]
    fn chain_streamed_equals_materialized_across_threads(
        specs in arb_chain(),
        n in 50usize..400,
        seed in 0u64..10_000,
        res in prop::sample::select(vec![64u32, 128, 192]),
    ) {
        let batch = PointBatch::from_points(uniform_points(&extent(), n, seed));
        let vp = Viewport::square_pixels(extent(), res);

        // Sequential materialized reference (Device::cpu).
        let mut ref_dev = Device::cpu();
        let ref_operands = render_operands(&mut ref_dev, vp, &specs, seed);
        let reference =
            run_points_chain_materialized(&mut ref_dev, vp, &batch, &build_chain(&specs, &ref_operands));
        let ref_stats = ref_dev.stats();

        for threads in [1usize, 2, 3, 8] {
            let mut dev = Device::cpu_parallel(threads);
            let operands = render_operands(&mut dev, vp, &specs, seed);
            let fused = run_points_chain(&mut dev, vp, &batch, &build_chain(&specs, &operands));
            prop_assert_eq!(
                reference.texels(), fused.canvas.texels(),
                "texels diverge: {} threads, chain {:?}", threads, &specs
            );
            prop_assert_eq!(
                reference.cover(), fused.canvas.cover(),
                "cover diverges: {} threads, chain {:?}", threads, &specs
            );
            prop_assert_eq!(
                reference.boundary(), fused.canvas.boundary(),
                "boundary diverges: {} threads, chain {:?}", threads, &specs
            );
            prop_assert_eq!(
                reference.area_sources().len(), fused.canvas.area_sources().len(),
                "sources diverge: {} threads", threads
            );
            prop_assert_eq!(
                &ref_stats, &dev.stats(),
                "stats diverge: {} threads, chain {:?}", threads, &specs
            );
            let pool = dev.pool();
            let window = pool.policy().stream_window(pool.worker_count());
            prop_assert!(
                fused.peak_tiles_in_flight <= window,
                "peak {} tiles exceeds window {} at {} threads",
                fused.peak_tiles_in_flight, window, threads
            );
        }
    }

    /// The heatmap query (selection wired through a fused chain) agrees
    /// with its materialized plan on random inputs and thread counts.
    #[test]
    fn chain_heatmap_query_equivalence(
        n in 50usize..400,
        seed in 0u64..10_000,
        verts in 6usize..24,
        threads in prop::sample::select(vec![1usize, 2, 3, 8]),
    ) {
        let mbr = BBox::new(Point::new(15.0, 10.0), Point::new(85.0, 80.0));
        let poly = star_polygon(&mbr, verts, 0.55, seed);
        let batch = PointBatch::from_points(uniform_points(&extent(), n, seed));
        let vp = Viewport::square_pixels(extent(), 128);

        let mut dev_f = Device::cpu_parallel(threads);
        let fused = heatmap::selection_heatmap(&mut dev_f, vp, &batch, &poly);
        let mut dev_m = Device::cpu();
        let want = heatmap::selection_heatmap_materialized(&mut dev_m, vp, &batch, &poly);

        prop_assert_eq!(want.texels(), fused.canvas.texels(), "{} threads", threads);
        prop_assert_eq!(want.cover(), fused.canvas.cover(), "{} threads", threads);
        prop_assert_eq!(want.boundary(), fused.canvas.boundary(), "{} threads", threads);
        prop_assert_eq!(&dev_m.stats(), &dev_f.stats(), "stats, {} threads", threads);
    }
}

/// Edge case: an empty draw (0 primitives) must still run every chain
/// operator over the whole canvas, identically on every path.
#[test]
fn chain_empty_draw_equivalence() {
    let vp = Viewport::square_pixels(extent(), 128);
    let batch = PointBatch::from_points(vec![]);
    let specs = [
        OpSpec::Value(1, 2.0),
        OpSpec::Blend(0),
        OpSpec::Mask(1, 1.0),
    ];

    let mut ref_dev = Device::cpu();
    let operands = render_operands(&mut ref_dev, vp, &specs, 7);
    let reference =
        run_points_chain_materialized(&mut ref_dev, vp, &batch, &build_chain(&specs, &operands));
    for threads in [1usize, 3, 8] {
        let mut dev = Device::cpu_parallel(threads);
        let operands = render_operands(&mut dev, vp, &specs, 7);
        let fused = run_points_chain(&mut dev, vp, &batch, &build_chain(&specs, &operands));
        assert_eq!(
            reference.texels(),
            fused.canvas.texels(),
            "{threads} threads"
        );
        assert_eq!(reference.cover(), fused.canvas.cover(), "{threads} threads");
        assert_eq!(ref_dev.stats(), dev.stats(), "{threads} threads");
    }
}

/// Edge case: a canvas smaller than one tile (single-tile streaming).
#[test]
fn chain_single_tile_canvas_equivalence() {
    let vp = Viewport::square_pixels(extent(), 32); // < 64-pixel tile
    let batch = PointBatch::from_points(uniform_points(&extent(), 120, 11));
    let specs = [
        OpSpec::Blend(1),
        OpSpec::Mask(0, 1.0),
        OpSpec::Value(0, 3.0),
    ];

    let mut ref_dev = Device::cpu();
    let operands = render_operands(&mut ref_dev, vp, &specs, 3);
    let reference =
        run_points_chain_materialized(&mut ref_dev, vp, &batch, &build_chain(&specs, &operands));
    for threads in [1usize, 2, 8] {
        let mut dev = Device::cpu_parallel(threads);
        let operands = render_operands(&mut dev, vp, &specs, 3);
        let fused = run_points_chain(&mut dev, vp, &batch, &build_chain(&specs, &operands));
        assert_eq!(
            reference.texels(),
            fused.canvas.texels(),
            "{threads} threads"
        );
        assert_eq!(
            reference.boundary(),
            fused.canvas.boundary(),
            "{threads} threads"
        );
        assert!(fused.peak_tiles_in_flight <= 1, "one tile total");
        assert_eq!(ref_dev.stats(), dev.stats(), "{threads} threads");
    }
}

/// Edge case: a (mis)configured streaming window of 0 is clamped to 1
/// and the fused chain still completes with identical results — the
/// claim gate must serialize, not deadlock.
#[test]
fn chain_window_zero_policy_clamped_not_deadlocked() {
    let vp = Viewport::square_pixels(extent(), 128);
    let batch = PointBatch::from_points(uniform_points(&extent(), 300, 23));
    let specs = [OpSpec::Blend(2), OpSpec::Mask(2, 2.0)];

    let mut ref_dev = Device::cpu();
    let operands = render_operands(&mut ref_dev, vp, &specs, 5);
    let reference =
        run_points_chain_materialized(&mut ref_dev, vp, &batch, &build_chain(&specs, &operands));

    let mut dev = Device::cpu_parallel(4);
    let policy = Policy {
        stream_window_per_worker: 0,
        ..*dev.pool().policy()
    };
    dev.pipeline()
        .set_pool(Arc::new(WorkerPool::with_policy(4, policy)));
    assert_eq!(
        dev.pool().policy().stream_window(dev.pool().worker_count()),
        1
    );
    let operands = render_operands(&mut dev, vp, &specs, 5);
    let fused = run_points_chain(&mut dev, vp, &batch, &build_chain(&specs, &operands));
    assert_eq!(reference.texels(), fused.canvas.texels());
    assert_eq!(reference.cover(), fused.canvas.cover());
    assert_eq!(reference.boundary(), fused.canvas.boundary());
    assert_eq!(fused.peak_tiles_in_flight, 1, "window 1 ⇒ one live tile");
}
