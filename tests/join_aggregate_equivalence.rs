//! Integration: joins and aggregations across the canvas algebra and
//! the traditional baselines must produce identical answers (Sections
//! 4.2, 4.3, 5.2).

use canvas_algebra::prelude::*;
use canvas_core::queries::{aggregate, join};
use std::sync::Arc;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn vp() -> Viewport {
    Viewport::square_pixels(extent(), 256)
}

#[test]
fn type1_join_equals_baseline_join() {
    let pts = taxi_pickups(&extent(), 4_000, 31);
    let zones = neighborhoods(&extent(), 15, 32);
    let table: AreaSource = Arc::new(zones.clone());
    let mut dev = Device::nvidia();
    let canvas_pairs = join::join_points_polygons(
        &mut dev,
        vp(),
        &PointBatch::from_points(pts.clone()),
        &table,
    );
    let baseline_pairs = canvas_algebra::baseline::join_rtree(&pts, &zones).pairs;
    assert_eq!(canvas_pairs, baseline_pairs);
    assert!(!canvas_pairs.is_empty());
}

#[test]
fn type2_join_equals_vector_intersections() {
    let left = neighborhoods(&extent(), 8, 41);
    let right: Vec<Polygon> = (0..6)
        .map(|i| {
            star_polygon(
                &BBox::new(
                    Point::new(10.0 + 10.0 * i as f64, 15.0),
                    Point::new(30.0 + 10.0 * i as f64, 55.0),
                ),
                24,
                0.4,
                50 + i as u64,
            )
        })
        .collect();
    let lt: AreaSource = Arc::new(left.clone());
    let rt: AreaSource = Arc::new(right.clone());
    let mut dev = Device::nvidia();
    let got = join::join_polygons_polygons(&mut dev, vp(), &lt, &rt);
    let mut want = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if a.intersects(b) {
                want.push((i as u32, j as u32));
            }
        }
    }
    want.sort_unstable();
    assert_eq!(got, want);
}

#[test]
fn distance_join_equals_brute_force() {
    let lpts = taxi_pickups(&extent(), 1_500, 61);
    let rpts = uniform_points(&extent(), 12, 62);
    let mut dev = Device::nvidia();
    let got = join::distance_join(
        &mut dev,
        vp(),
        &PointBatch::from_points(lpts.clone()),
        &PointBatch::from_points(rpts.clone()),
        9.0,
    );
    let mut want = Vec::new();
    for (j, c) in rpts.iter().enumerate() {
        for (i, p) in lpts.iter().enumerate() {
            if p.dist(*c) <= 9.0 {
                want.push((i as u32, j as u32));
            }
        }
    }
    want.sort_unstable_by_key(|&(p, y)| (y, p));
    assert_eq!(got, want);
}

#[test]
fn all_three_aggregation_plans_agree_with_cpu_plan() {
    let trips = generate_trips(&extent(), 10_000, 8, 71);
    let zones = neighborhoods_detailed(&extent(), 18, 60, 72);
    let table: AreaSource = Arc::new(zones.clone());
    let batch = PointBatch::with_weights(trips.pickups.clone(), trips.fares.clone());

    let mut dev = Device::nvidia();
    let fused = aggregate::aggregate_join_rasterjoin(&mut dev, vp(), &batch, &table);
    let unfused = aggregate::aggregate_join_blend_plan(&mut dev, vp(), &batch, &table);
    let materialized = aggregate::aggregate_join_materialized(&mut dev, vp(), &batch, &table);
    let (cpu_counts, cpu_sums, _) =
        canvas_algebra::baseline::aggregate_join_baseline(&trips.pickups, &trips.fares, &zones);

    assert_eq!(fused.counts, cpu_counts, "fused vs cpu");
    assert_eq!(unfused.counts, cpu_counts, "unfused vs cpu");
    assert_eq!(materialized.counts, cpu_counts, "materialized vs cpu");
    for ((a, b), c) in fused.sums.iter().zip(&unfused.sums).zip(&cpu_sums) {
        assert!(
            (a - c).abs() < 1e-2 * c.abs().max(1.0),
            "fused sum {a} vs cpu {c}"
        );
        assert!(
            (b - c).abs() < 1e-2 * c.abs().max(1.0),
            "unfused sum {b} vs cpu {c}"
        );
    }
    // Every pickup inside the partition is counted exactly once overall
    // (cells tile the extent; shared-boundary points may legitimately
    // count twice, so allow a tiny slack).
    let total: u64 = fused.counts.iter().sum();
    let n = trips.len() as u64;
    assert!(total >= n && total <= n + n / 100, "total {total} vs n {n}");
}

#[test]
fn count_and_sum_over_selection_consistent() {
    let trips = generate_trips(&extent(), 8_000, 8, 81);
    let q = star_polygon(
        &BBox::new(Point::new(20.0, 25.0), Point::new(75.0, 80.0)),
        96,
        0.5,
        82,
    );
    let batch = PointBatch::with_weights(trips.pickups.clone(), trips.fares.clone());
    let mut dev = Device::nvidia();
    let count = aggregate::count_points_in_polygon(&mut dev, vp(), &batch, &q);
    let sum = aggregate::sum_points_in_polygon(&mut dev, vp(), &batch, &q);

    let expect_n = trips
        .pickups
        .iter()
        .filter(|p| q.contains_closed(**p))
        .count() as u64;
    let expect_s: f64 = trips
        .pickups
        .iter()
        .zip(&trips.fares)
        .filter(|(p, _)| q.contains_closed(**p))
        .map(|(_, f)| *f as f64)
        .sum();
    assert_eq!(count, expect_n);
    assert!((sum - expect_s).abs() < 1e-2 * expect_s.max(1.0));
}

#[test]
fn aggregation_resolution_independence() {
    // Exactness again: group counts cannot depend on the canvas grid.
    let trips = generate_trips(&extent(), 3_000, 4, 91);
    let zones: AreaSource = Arc::new(neighborhoods(&extent(), 9, 92));
    let batch = PointBatch::from_points(trips.pickups.clone());
    let mut results = Vec::new();
    for res in [64u32, 128, 512] {
        let v = Viewport::square_pixels(extent(), res);
        let mut dev = Device::nvidia();
        results.push(aggregate::aggregate_join_rasterjoin(&mut dev, v, &batch, &zones).counts);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}
