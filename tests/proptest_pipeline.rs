//! Cross-crate property tests: the canvas pipeline agrees with exact
//! vector geometry on randomized inputs — the load-bearing invariant of
//! the whole reproduction (conservative rasterization + boundary
//! refinement ⇒ exact answers at any resolution).

use canvas_algebra::prelude::*;
use canvas_core::queries::selection;
use proptest::prelude::*;

fn extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

/// Strategy: a star polygon with a random MBR inside the extent.
fn arb_polygon() -> impl Strategy<Value = Polygon> {
    (
        5.0f64..45.0,
        5.0f64..45.0,
        20.0f64..50.0,
        20.0f64..50.0,
        6usize..64,
        0u64..10_000,
    )
        .prop_map(|(x0, y0, w, h, verts, seed)| {
            let mbr = BBox::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
            star_polygon(&mbr, verts, 0.6, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Canvas selection == exact PIP for random polygons, point sets and
    /// resolutions (including coarse grids where many pixels straddle
    /// edges).
    #[test]
    fn selection_exact_for_random_inputs(
        poly in arb_polygon(),
        n in 50usize..600,
        seed in 0u64..10_000,
        res in prop::sample::select(vec![32u32, 64, 128, 256]),
    ) {
        let pts = uniform_points(&extent(), n, seed);
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| poly.contains_closed(**p))
            .map(|(i, _)| i as u32)
            .collect();
        let vp = Viewport::square_pixels(extent(), res);
        let mut dev = Device::nvidia();
        let got = selection::select_points_in_polygon(
            &mut dev,
            vp,
            &PointBatch::from_points(pts),
            &poly,
        );
        prop_assert_eq!(got.records, want);
    }

    /// COUNT aggregation equals the selection cardinality for random
    /// configurations (Figure 7 plan consistency).
    #[test]
    fn count_equals_selection_cardinality(
        poly in arb_polygon(),
        n in 50usize..400,
        seed in 0u64..10_000,
    ) {
        let pts = uniform_points(&extent(), n, seed);
        let vp = Viewport::square_pixels(extent(), 64);
        let mut dev = Device::nvidia();
        let batch = PointBatch::from_points(pts);
        let sel = selection::select_points_in_polygon(&mut dev, vp, &batch, &poly);
        let count = canvas_core::queries::aggregate::count_points_in_polygon(
            &mut dev, vp, &batch, &poly,
        );
        prop_assert_eq!(count as usize, sel.records.len());
    }

    /// The conservative render's coverage is a superset of the standard
    /// render's, and both contain every exactly-inside pixel center.
    #[test]
    fn conservative_coverage_superset(poly in arb_polygon()) {
        let vp = Viewport::square_pixels(extent(), 64);
        let table: AreaSource = std::sync::Arc::new(vec![poly.clone()]);
        let mut dev = Device::nvidia();
        let cons = canvas_core::source::render_polygon_with(
            &mut dev, vp, &table, 0, Texel::area(1, 1.0, 0.0), true,
        );
        let std_r = canvas_core::source::render_polygon_with(
            &mut dev, vp, &table, 0, Texel::area(1, 1.0, 0.0), false,
        );
        for (x, y, _) in std_r.non_null() {
            prop_assert!(!cons.texel(x, y).is_null(),
                "conservative lost standard pixel ({}, {})", x, y);
        }
        // Every pixel whose center is strictly inside is covered.
        for y in 0..vp.height() {
            for x in 0..vp.width() {
                let c = vp.pixel_center(x, y);
                if matches!(poly.contains(c), canvas_geom::Containment::Inside) {
                    prop_assert!(!cons.texel(x, y).is_null(),
                        "missing interior pixel ({}, {})", x, y);
                }
            }
        }
    }

    /// Distance selection is exact against the metric, not the
    /// tessellated circle.
    #[test]
    fn distance_selection_metric_exact(
        cx in 20.0f64..80.0,
        cy in 20.0f64..80.0,
        d in 5.0f64..30.0,
        n in 50usize..400,
        seed in 0u64..10_000,
    ) {
        let pts = uniform_points(&extent(), n, seed);
        let c = Point::new(cx, cy);
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(c) <= d)
            .map(|(i, _)| i as u32)
            .collect();
        let vp = Viewport::square_pixels(extent(), 128);
        let mut dev = Device::nvidia();
        let got = selection::select_points_within_distance_exact(
            &mut dev,
            vp,
            &PointBatch::from_points(pts),
            c,
            d,
        );
        prop_assert_eq!(got.records, want);
    }

    /// Sequential ≡ parallel: rendering and querying the same random
    /// point/polygon workload on `Device::cpu` and `Device::cpu_parallel(n)`
    /// produces **bit-identical** canvases — texel plane, certain-cover
    /// plane, and boundary index all equal. This is what licenses the
    /// tiled pipeline: tiles merge in a fixed order and per-pixel blend
    /// order is the input primitive order, so thread count cannot leak
    /// into results. (Point accumulation per pixel also relies on the
    /// blend functions being associative-commutative per Section 3 —
    /// asserted separately in `algebra_laws.rs` — but the tiled pipeline
    /// does not even need that: it preserves input order outright.)
    #[test]
    fn sequential_equals_parallel_bitwise(
        poly in arb_polygon(),
        n in 50usize..600,
        seed in 0u64..10_000,
        threads in prop::sample::select(vec![2usize, 3, 4, 8]),
        res in prop::sample::select(vec![64u32, 128, 256]),
    ) {
        let pts = uniform_points(&extent(), n, seed);
        let batch = PointBatch::from_points(pts);
        let vp = Viewport::square_pixels(extent(), res);

        let mut seq_dev = Device::cpu();
        let seq = selection::select_points_in_polygon(&mut seq_dev, vp, &batch, &poly);
        let mut par_dev = Device::cpu_parallel(threads);
        let par = selection::select_points_in_polygon(&mut par_dev, vp, &batch, &poly);

        prop_assert_eq!(&seq.records, &par.records);
        prop_assert_eq!(seq.canvas.texels(), par.canvas.texels());
        prop_assert_eq!(seq.canvas.cover(), par.canvas.cover());
        prop_assert_eq!(seq.canvas.boundary(), par.canvas.boundary());
        // The modeled work is identical too: parallelism changes wall
        // clock, never the counted pipeline work.
        prop_assert_eq!(seq_dev.stats(), par_dev.stats());

        // The polygon side alone (conservative render with boundary
        // entries + cover counts) must also match plane-for-plane.
        let table: AreaSource = std::sync::Arc::new(vec![poly]);
        let c_seq = canvas_core::source::render_polygon(&mut seq_dev, vp, &table, 0, 1);
        let c_par = canvas_core::source::render_polygon(&mut par_dev, vp, &table, 0, 1);
        prop_assert_eq!(c_seq.texels(), c_par.texels());
        prop_assert_eq!(c_seq.cover(), c_par.cover());
        prop_assert_eq!(c_seq.boundary(), c_par.boundary());
    }

    /// Executor-pool determinism across the operators parallelized on
    /// the persistent pool: Value Transform (band-parallel full-screen
    /// pass), Map/scatter (pool-parallel γ evaluation with in-order
    /// blend apply), and the streaming tiled draws (bounded-channel
    /// tile merge). Texel/cover/boundary planes and the pipeline stats
    /// must be **bit-identical** across thread counts {1, 2, 3, 8}.
    /// Resolution 256² sits at the pool's minimum-work threshold, so
    /// the parallel code paths genuinely engage.
    #[test]
    fn executor_ops_bit_identical_across_thread_counts(
        poly in arb_polygon(),
        n in 100usize..600,
        seed in 0u64..10_000,
    ) {
        let pts = uniform_points(&extent(), n, seed);
        let batch = PointBatch::from_points(pts);
        let table: AreaSource = std::sync::Arc::new(vec![poly]);
        let vp = Viewport::square_pixels(extent(), 256);

        // One full operator chain per device; returns every plane the
        // chain produces plus the counted work.
        let run = |dev: &mut Device| {
            // Streaming tiled draws: point accumulation + conservative
            // polygon render (cover plane + boundary index).
            let cp = canvas_core::source::render_points(dev, vp, &batch);
            let cy = canvas_core::source::render_polygon(dev, vp, &table, 0, 1);
            // Value Transform: location- and value-dependent rewrite.
            let vt = value_transform(dev, &cp, |p, mut t| {
                if let Some(mut d) = t.get(0) {
                    d.v2 = (p.x * 0.25 + p.y) as f32;
                    t.set(0, d);
                }
                t
            });
            // Map = G[γ] ∘ D: scatter everything into one pixel with
            // float accumulation (order-sensitive ⇒ a real determinism
            // probe).
            let folded = map_scatter(
                dev,
                &vt,
                &ValueMap::to_constant(Point::new(0.5, 0.5)),
                vp,
                BlendFn::Accumulate,
            );
            (cp, cy, vt, folded, dev.stats())
        };

        let mut seq_dev = Device::cpu();
        let (s_cp, s_cy, s_vt, s_fold, s_stats) = run(&mut seq_dev);
        for threads in [2usize, 3, 8] {
            let mut dev = Device::cpu_parallel(threads);
            let (p_cp, p_cy, p_vt, p_fold, p_stats) = run(&mut dev);
            prop_assert_eq!(s_cp.texels(), p_cp.texels(), "points, {} threads", threads);
            prop_assert_eq!(s_cy.texels(), p_cy.texels(), "polygon, {} threads", threads);
            prop_assert_eq!(s_cy.cover(), p_cy.cover(), "cover, {} threads", threads);
            prop_assert_eq!(s_cy.boundary(), p_cy.boundary(), "boundary, {} threads", threads);
            prop_assert_eq!(s_vt.texels(), p_vt.texels(), "value_transform, {} threads", threads);
            prop_assert_eq!(s_fold.texels(), p_fold.texels(), "map_scatter, {} threads", threads);
            prop_assert_eq!(&s_stats, &p_stats, "stats, {} threads", threads);
        }
    }

    /// Voronoi canvas assignment matches the brute-force nearest site at
    /// every pixel center (up to exact ties).
    #[test]
    fn voronoi_matches_nearest_site(
        k in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let sites = canvas_algebra::datagen::jittered_sites(&extent(), k, seed);
        let vp = Viewport::square_pixels(extent(), 32);
        let mut dev = Device::nvidia();
        let diagram = canvas_core::queries::voronoi::compute_voronoi(&mut dev, vp, &sites);
        for y in 0..vp.height() {
            for x in 0..vp.width() {
                let p = vp.pixel_center(x, y);
                let got = diagram.texel(x, y).get(2).unwrap().id as usize;
                let best = sites
                    .iter()
                    .map(|s| p.dist_sq(*s))
                    .fold(f64::INFINITY, f64::min);
                let got_d = p.dist_sq(sites[got]);
                prop_assert!(
                    (got_d as f32 - best as f32).abs() <= f32::EPSILON * (best as f32).max(1.0),
                    "pixel ({}, {}): got site {} at d² {}, best d² {}",
                    x, y, got, got_d, best
                );
            }
        }
    }
}
