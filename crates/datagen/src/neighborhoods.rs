//! Neighborhood-polygon generation: a Voronoi partition of the extent.
//!
//! The paper's aggregation queries group taxi pickups by NYC
//! neighborhood polygons. We synthesize an equivalent polygon table by
//! computing the exact Voronoi cells of jittered seed sites (each cell =
//! extent ∩ half-planes toward every other site), giving a realistic
//! space-filling, mutually-disjoint polygon set of controllable size.

use canvas_geom::clip::clip_ring_halfplane;
use canvas_geom::polygon::Polygon;
use canvas_geom::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `k` neighborhood polygons partitioning the extent, from a
/// jittered grid of Voronoi sites.
pub fn neighborhoods(extent: &BBox, k: usize, seed: u64) -> Vec<Polygon> {
    let sites = jittered_sites(extent, k, seed);
    sites
        .iter()
        .enumerate()
        .map(|(i, &site)| voronoi_cell(extent, &sites, i, site))
        .collect()
}

/// As [`neighborhoods`] but with each cell's edges subdivided so every
/// polygon carries roughly `target_vertices` vertices — real
/// administrative boundaries have hundreds of vertices, and PIP-based
/// baselines pay per vertex (the canvas approach does not, which is part
/// of the paper's point).
pub fn neighborhoods_detailed(
    extent: &BBox,
    k: usize,
    target_vertices: usize,
    seed: u64,
) -> Vec<Polygon> {
    neighborhoods(extent, k, seed)
        .into_iter()
        .map(|p| subdivide_polygon(&p, target_vertices))
        .collect()
}

/// Subdivides each edge uniformly until the outer ring reaches at least
/// `target_vertices` vertices (pure refinement: the region is unchanged,
/// so partitions stay partitions).
pub fn subdivide_polygon(poly: &Polygon, target_vertices: usize) -> Polygon {
    let verts = poly.outer().vertices();
    let n = verts.len();
    if n >= target_vertices {
        return poly.clone();
    }
    let per_edge = target_vertices.div_ceil(n).max(1);
    let mut out = Vec::with_capacity(n * per_edge);
    for i in 0..n {
        let a = verts[i];
        let b = verts[(i + 1) % n];
        for s in 0..per_edge {
            out.push(a.lerp(b, s as f64 / per_edge as f64));
        }
    }
    Polygon::simple(out).unwrap_or_else(|_| poly.clone())
}

/// Jittered-grid site layout (keeps cells reasonably balanced, like real
/// administrative zones).
pub fn jittered_sites(extent: &BBox, k: usize, seed: u64) -> Vec<Point> {
    let k = k.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5173);
    let aspect = extent.width() / extent.height().max(1e-12);
    let rows = ((k as f64 / aspect).sqrt().ceil() as usize).max(1);
    let cols = k.div_ceil(rows);
    let cw = extent.width() / cols as f64;
    let ch = extent.height() / rows as f64;
    let mut sites = Vec::with_capacity(k);
    'outer: for r in 0..rows {
        for c in 0..cols {
            if sites.len() == k {
                break 'outer;
            }
            sites.push(Point::new(
                extent.min.x + (c as f64 + rng.gen_range(0.25..0.75)) * cw,
                extent.min.y + (r as f64 + rng.gen_range(0.25..0.75)) * ch,
            ));
        }
    }
    sites
}

/// Exact Voronoi cell of `sites[i]`: the extent rectangle clipped by the
/// bisector half-plane toward every other site.
fn voronoi_cell(extent: &BBox, sites: &[Point], i: usize, site: Point) -> Polygon {
    let mut ring: Vec<Point> = extent.corners().to_vec();
    for (j, &other) in sites.iter().enumerate() {
        if j == i {
            continue;
        }
        // Points closer to `site` than `other`:
        // |p - site|² < |p - other|²  ⇔  a·x + b·y + c < 0 with
        let a = 2.0 * (other.x - site.x);
        let b = 2.0 * (other.y - site.y);
        let c = site.x * site.x + site.y * site.y - other.x * other.x - other.y * other.y;
        ring = clip_ring_halfplane(&ring, a, b, c);
        if ring.len() < 3 {
            break;
        }
    }
    Polygon::simple(ring).unwrap_or_else(|_| {
        // Degenerate cell (duplicate sites): emit a tiny triangle at the
        // site so the table stays rectangular.
        Polygon::simple(vec![
            site,
            site + Point::new(1e-6, 0.0),
            site + Point::new(0.0, 1e-6),
        ])
        .expect("fallback triangle")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn partition_covers_extent() {
        let polys = neighborhoods(&extent(), 20, 5);
        assert_eq!(polys.len(), 20);
        let total: f64 = polys.iter().map(|p| p.area()).sum();
        assert!(
            (total - 10_000.0).abs() < 1.0,
            "cells must tile the extent, got area {total}"
        );
    }

    #[test]
    fn cells_disjoint_interiors() {
        let polys = neighborhoods(&extent(), 12, 9);
        // Probe points: each interior point belongs to at most one cell
        // (boundaries may be shared).
        let mut rng_state = 77u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..200 {
            let p = Point::new(next() * 100.0, next() * 100.0);
            let strictly_inside = polys
                .iter()
                .filter(|poly| matches!(poly.contains(p), canvas_geom::Containment::Inside))
                .count();
            assert!(strictly_inside <= 1, "point {p} in {strictly_inside} cells");
        }
    }

    #[test]
    fn each_site_in_its_cell() {
        let sites = jittered_sites(&extent(), 15, 3);
        let polys = neighborhoods(&extent(), 15, 3);
        for (site, poly) in sites.iter().zip(&polys) {
            assert!(poly.contains_closed(*site), "site {site} outside its cell");
        }
    }

    #[test]
    fn seeded_determinism() {
        let a = neighborhoods(&extent(), 8, 1);
        let b = neighborhoods(&extent(), 8, 1);
        assert_eq!(a, b);
        let c = neighborhoods(&extent(), 8, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn single_cell_is_extent() {
        let polys = neighborhoods(&extent(), 1, 4);
        assert_eq!(polys.len(), 1);
        assert!((polys[0].area() - 10_000.0).abs() < 1e-6);
    }

    #[test]
    fn subdivision_preserves_region() {
        let polys = neighborhoods(&extent(), 6, 8);
        for p in &polys {
            let d = subdivide_polygon(p, 120);
            assert!(d.num_vertices() >= 120);
            assert!((d.area() - p.area()).abs() < 1e-9);
            // Same membership for probe points.
            for probe in [
                Point::new(10.0, 10.0),
                Point::new(50.0, 50.0),
                Point::new(90.0, 30.0),
            ] {
                assert_eq!(d.contains_closed(probe), p.contains_closed(probe));
            }
        }
    }

    #[test]
    fn detailed_neighborhoods_vertex_counts() {
        let polys = neighborhoods_detailed(&extent(), 10, 100, 3);
        assert_eq!(polys.len(), 10);
        for p in &polys {
            assert!(p.num_vertices() >= 100, "got {}", p.num_vertices());
        }
        let total: f64 = polys.iter().map(|p| p.area()).sum();
        assert!((total - 10_000.0).abs() < 1.0);
    }
}
