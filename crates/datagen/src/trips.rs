//! Synthetic origin–destination trip workload (stands in for the NYC
//! taxi trip records of the paper's evaluation).
//!
//! Each trip has a pickup (origin), a dropoff (destination), and
//! attributes: fare amount (the SUM/AVG aggregation weight), passenger
//! count, and a pickup-time slot (the paper varies input size by pickup
//! time range — the slot lets the harness do the same).

use crate::points::{clustered_points, default_hotspots};
use canvas_geom::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic trip table in column layout.
#[derive(Clone, Debug, Default)]
pub struct Trips {
    pub pickups: Vec<Point>,
    pub dropoffs: Vec<Point>,
    /// Fare in dollars (weight for SUM/AVG aggregations).
    pub fares: Vec<f32>,
    pub passenger_counts: Vec<u8>,
    /// Pickup time slot in `[0, time_slots)`.
    pub time_slots: Vec<u16>,
    pub num_time_slots: u16,
}

impl Trips {
    pub fn len(&self) -> usize {
        self.pickups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pickups.is_empty()
    }

    /// Restricts to trips with `time_slot < cutoff` — the paper's "size
    /// of the input is varied using the pickup time range".
    pub fn with_time_range(&self, cutoff: u16) -> Trips {
        let keep: Vec<usize> = (0..self.len())
            .filter(|&i| self.time_slots[i] < cutoff)
            .collect();
        Trips {
            pickups: keep.iter().map(|&i| self.pickups[i]).collect(),
            dropoffs: keep.iter().map(|&i| self.dropoffs[i]).collect(),
            fares: keep.iter().map(|&i| self.fares[i]).collect(),
            passenger_counts: keep.iter().map(|&i| self.passenger_counts[i]).collect(),
            time_slots: keep.iter().map(|&i| self.time_slots[i]).collect(),
            num_time_slots: self.num_time_slots,
        }
    }

    /// The pickup side as a weighted point batch (fare as weight).
    pub fn pickup_batch(&self) -> canvas_core::PointBatch {
        canvas_core::PointBatch::with_weights(self.pickups.clone(), self.fares.clone())
    }

    /// As an origin–destination batch for OD queries.
    pub fn od_batch(&self) -> canvas_core::queries::od::TripBatch {
        canvas_core::queries::od::TripBatch {
            origins: self.pickups.clone(),
            destinations: self.dropoffs.clone(),
            weights: self.fares.clone(),
        }
    }
}

/// Generates `n` trips over the extent with city-like clustering:
/// pickups from the hotspot mixture, dropoffs from the same mixture
/// displaced by a trip vector whose length follows fare.
pub fn generate_trips(extent: &BBox, n: usize, num_time_slots: u16, seed: u64) -> Trips {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xACE1_BEEF);
    let pickups = clustered_points(extent, &default_hotspots(extent), n, seed);
    let dropoffs = clustered_points(extent, &default_hotspots(extent), n, seed ^ 0x5EED);
    let mut fares = Vec::with_capacity(n);
    let mut passenger_counts = Vec::with_capacity(n);
    let mut time_slots = Vec::with_capacity(n);
    for i in 0..n {
        // Fare correlates with trip length plus a base charge.
        let dist = pickups[i].dist(dropoffs[i]);
        let fare = 2.5 + 0.35 * dist + rng.gen_range(0.0..3.0);
        fares.push(fare as f32);
        passenger_counts.push(rng.gen_range(1..=6));
        time_slots.push(rng.gen_range(0..num_time_slots.max(1)));
    }
    Trips {
        pickups,
        dropoffs,
        fares,
        passenger_counts,
        time_slots,
        num_time_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn trips_generated_consistently() {
        let a = generate_trips(&extent(), 500, 8, 42);
        let b = generate_trips(&extent(), 500, 8, 42);
        assert_eq!(a.pickups, b.pickups);
        assert_eq!(a.fares, b.fares);
        assert_eq!(a.len(), 500);
        assert!(a.pickups.iter().all(|p| extent().contains(*p)));
        assert!(a.dropoffs.iter().all(|p| extent().contains(*p)));
    }

    #[test]
    fn time_range_scaling() {
        let t = generate_trips(&extent(), 2000, 10, 7);
        let half = t.with_time_range(5);
        let full = t.with_time_range(10);
        assert_eq!(full.len(), 2000);
        // Uniform slots: roughly half the trips.
        assert!((half.len() as f64 - 1000.0).abs() < 150.0, "{}", half.len());
        assert!(half.time_slots.iter().all(|&s| s < 5));
    }

    #[test]
    fn fares_positive_and_distance_correlated() {
        let t = generate_trips(&extent(), 1000, 4, 9);
        assert!(t.fares.iter().all(|&f| f >= 2.5));
        // Longest quartile of trips should out-fare the shortest quartile.
        let mut by_dist: Vec<(f64, f32)> = t
            .pickups
            .iter()
            .zip(&t.dropoffs)
            .zip(&t.fares)
            .map(|((p, d), f)| (p.dist(*d), *f))
            .collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let q = by_dist.len() / 4;
        let short_avg: f32 = by_dist[..q].iter().map(|x| x.1).sum::<f32>() / q as f32;
        let long_avg: f32 =
            by_dist[3 * q..].iter().map(|x| x.1).sum::<f32>() / (by_dist.len() - 3 * q) as f32;
        assert!(long_avg > short_avg);
    }

    #[test]
    fn batch_conversions() {
        let t = generate_trips(&extent(), 50, 2, 3);
        let pb = t.pickup_batch();
        assert_eq!(pb.len(), 50);
        assert_eq!(pb.weights, t.fares);
        let od = t.od_batch();
        assert_eq!(od.len(), 50);
        assert_eq!(od.origins, t.pickups);
    }
}
