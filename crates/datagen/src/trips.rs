//! Synthetic origin–destination trip workload (stands in for the NYC
//! taxi trip records of the paper's evaluation).
//!
//! Each trip has a pickup (origin), a dropoff (destination), and
//! attributes: fare amount (the SUM/AVG aggregation weight), passenger
//! count, and a pickup-time slot (the paper varies input size by pickup
//! time range — the slot lets the harness do the same).

use crate::points::{clustered_points, default_hotspots};
use canvas_geom::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic trip table in column layout.
#[derive(Clone, Debug, Default)]
pub struct Trips {
    pub pickups: Vec<Point>,
    pub dropoffs: Vec<Point>,
    /// Fare in dollars (weight for SUM/AVG aggregations).
    pub fares: Vec<f32>,
    pub passenger_counts: Vec<u8>,
    /// Pickup time slot in `[0, time_slots)`.
    pub time_slots: Vec<u16>,
    pub num_time_slots: u16,
}

impl Trips {
    pub fn len(&self) -> usize {
        self.pickups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pickups.is_empty()
    }

    /// Restricts to trips with `time_slot < cutoff` — the paper's "size
    /// of the input is varied using the pickup time range".
    pub fn with_time_range(&self, cutoff: u16) -> Trips {
        let keep: Vec<usize> = (0..self.len())
            .filter(|&i| self.time_slots[i] < cutoff)
            .collect();
        Trips {
            pickups: keep.iter().map(|&i| self.pickups[i]).collect(),
            dropoffs: keep.iter().map(|&i| self.dropoffs[i]).collect(),
            fares: keep.iter().map(|&i| self.fares[i]).collect(),
            passenger_counts: keep.iter().map(|&i| self.passenger_counts[i]).collect(),
            time_slots: keep.iter().map(|&i| self.time_slots[i]).collect(),
            num_time_slots: self.num_time_slots,
        }
    }

    /// The pickup side as a weighted point batch (fare as weight).
    pub fn pickup_batch(&self) -> canvas_core::PointBatch {
        canvas_core::PointBatch::with_weights(self.pickups.clone(), self.fares.clone())
    }

    /// Every column stably sorted by pickup time slot — the arrival
    /// order of a live feed. `generate_trips` draws slots i.i.d., so
    /// its raw column order is generation order, not arrival order;
    /// the **stable** sort makes the result (and anything built on it,
    /// like [`TripFeed`]) a pure function of the seed.
    pub fn sorted_by_time(&self) -> Trips {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by_key(|&i| self.time_slots[i]);
        Trips {
            pickups: idx.iter().map(|&i| self.pickups[i]).collect(),
            dropoffs: idx.iter().map(|&i| self.dropoffs[i]).collect(),
            fares: idx.iter().map(|&i| self.fares[i]).collect(),
            passenger_counts: idx.iter().map(|&i| self.passenger_counts[i]).collect(),
            time_slots: idx.iter().map(|&i| self.time_slots[i]).collect(),
            num_time_slots: self.num_time_slots,
        }
    }

    /// As an origin–destination batch for OD queries.
    pub fn od_batch(&self) -> canvas_core::queries::od::TripBatch {
        canvas_core::queries::od::TripBatch {
            origins: self.pickups.clone(),
            destinations: self.dropoffs.clone(),
            weights: self.fares.clone(),
        }
    }
}

/// Generates `n` trips over the extent with city-like clustering:
/// pickups from the hotspot mixture, dropoffs from the same mixture
/// displaced by a trip vector whose length follows fare.
pub fn generate_trips(extent: &BBox, n: usize, num_time_slots: u16, seed: u64) -> Trips {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xACE1_BEEF);
    let pickups = clustered_points(extent, &default_hotspots(extent), n, seed);
    let dropoffs = clustered_points(extent, &default_hotspots(extent), n, seed ^ 0x5EED);
    let mut fares = Vec::with_capacity(n);
    let mut passenger_counts = Vec::with_capacity(n);
    let mut time_slots = Vec::with_capacity(n);
    for i in 0..n {
        // Fare correlates with trip length plus a base charge.
        let dist = pickups[i].dist(dropoffs[i]);
        let fare = 2.5 + 0.35 * dist + rng.gen_range(0.0..3.0);
        fares.push(fare as f32);
        passenger_counts.push(rng.gen_range(1..=6));
        time_slots.push(rng.gen_range(0..num_time_slots.max(1)));
    }
    Trips {
        pickups,
        dropoffs,
        fares,
        passenger_counts,
        time_slots,
        num_time_slots,
    }
}

/// A deterministic, replayable taxi-feed stream: trips arrive in
/// pickup-time order, one append batch per time slot. Built for the
/// streaming-ingest path — batch 0 seeds a
/// [`VersionedTable`](canvas_core::VersionedTable), each later batch
/// is one append — and for the stress/bench workloads, which need the
/// *same* batches on every run: two feeds over identical trips (same
/// seed) emit bit-identical batches in the same order.
pub struct TripFeed {
    trips: Trips,
    /// `starts[s]..starts[s + 1]` is slot `s`'s index range in the
    /// time-sorted columns.
    starts: Vec<usize>,
}

impl TripFeed {
    /// Feed over a trip table (sorted internally; see
    /// [`Trips::sorted_by_time`]). Every time slot yields a batch, so
    /// empty slots replay as empty appends — a real feed ticks even
    /// when no trips arrive.
    pub fn new(trips: &Trips) -> TripFeed {
        let trips = trips.sorted_by_time();
        let mut starts = vec![0usize; trips.num_time_slots.max(1) as usize + 1];
        for &s in &trips.time_slots {
            starts[s as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        TripFeed { trips, starts }
    }

    /// Append batches in the feed (= time slots, including empty ones).
    pub fn num_batches(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total trips across all batches.
    pub fn len(&self) -> usize {
        self.trips.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trips.is_empty()
    }

    /// The slot-`i` append batch: pickups weighted by fare, in arrival
    /// order. Ids are batch-local — a `VersionedTable` re-ids appends
    /// globally on ingest.
    pub fn batch(&self, i: usize) -> canvas_core::PointBatch {
        let (lo, hi) = (self.starts[i], self.starts[i + 1]);
        canvas_core::PointBatch::with_weights(
            self.trips.pickups[lo..hi].to_vec(),
            self.trips.fares[lo..hi].to_vec(),
        )
    }

    /// All batches in arrival order.
    pub fn batches(&self) -> impl Iterator<Item = canvas_core::PointBatch> + '_ {
        (0..self.num_batches()).map(|i| self.batch(i))
    }

    /// The underlying time-sorted trip table.
    pub fn trips(&self) -> &Trips {
        &self.trips
    }
}

/// Generates a seeded trip table and wraps it as a replayable
/// timestamp-ordered append stream (see [`TripFeed`]).
pub fn trip_feed(extent: &BBox, n: usize, num_time_slots: u16, seed: u64) -> TripFeed {
    TripFeed::new(&generate_trips(extent, n, num_time_slots, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn trips_generated_consistently() {
        let a = generate_trips(&extent(), 500, 8, 42);
        let b = generate_trips(&extent(), 500, 8, 42);
        assert_eq!(a.pickups, b.pickups);
        assert_eq!(a.fares, b.fares);
        assert_eq!(a.len(), 500);
        assert!(a.pickups.iter().all(|p| extent().contains(*p)));
        assert!(a.dropoffs.iter().all(|p| extent().contains(*p)));
    }

    #[test]
    fn time_range_scaling() {
        let t = generate_trips(&extent(), 2000, 10, 7);
        let half = t.with_time_range(5);
        let full = t.with_time_range(10);
        assert_eq!(full.len(), 2000);
        // Uniform slots: roughly half the trips.
        assert!((half.len() as f64 - 1000.0).abs() < 150.0, "{}", half.len());
        assert!(half.time_slots.iter().all(|&s| s < 5));
    }

    #[test]
    fn fares_positive_and_distance_correlated() {
        let t = generate_trips(&extent(), 1000, 4, 9);
        assert!(t.fares.iter().all(|&f| f >= 2.5));
        // Longest quartile of trips should out-fare the shortest quartile.
        let mut by_dist: Vec<(f64, f32)> = t
            .pickups
            .iter()
            .zip(&t.dropoffs)
            .zip(&t.fares)
            .map(|((p, d), f)| (p.dist(*d), *f))
            .collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let q = by_dist.len() / 4;
        let short_avg: f32 = by_dist[..q].iter().map(|x| x.1).sum::<f32>() / q as f32;
        let long_avg: f32 =
            by_dist[3 * q..].iter().map(|x| x.1).sum::<f32>() / (by_dist.len() - 3 * q) as f32;
        assert!(long_avg > short_avg);
    }

    #[test]
    fn feed_replays_identically_and_in_time_order() {
        let a = trip_feed(&extent(), 800, 6, 42);
        let b = trip_feed(&extent(), 800, 6, 42);
        assert_eq!(a.num_batches(), 6);
        assert_eq!(a.len(), 800);
        // Bit-identical replay across constructions.
        for i in 0..a.num_batches() {
            let (ba, bb) = (a.batch(i), b.batch(i));
            assert_eq!(ba.points, bb.points, "batch {i}");
            assert_eq!(ba.weights, bb.weights, "batch {i}");
        }
        // Concatenated batches are the whole table in nondecreasing
        // time order, and each batch holds exactly its slot's trips.
        let total: usize = a.batches().map(|b| b.len()).sum();
        assert_eq!(total, 800);
        assert!(a.trips().time_slots.windows(2).all(|w| w[0] <= w[1]));
        let mut off = 0;
        for i in 0..a.num_batches() {
            let n = a.batch(i).len();
            assert!(a.trips().time_slots[off..off + n]
                .iter()
                .all(|&s| s as usize == i));
            off += n;
        }
    }

    #[test]
    fn stable_time_sort_preserves_within_slot_order() {
        let t = generate_trips(&extent(), 300, 4, 11);
        let s = t.sorted_by_time();
        assert_eq!(s.len(), t.len());
        // Within one slot, the stable sort keeps generation order: the
        // slot's pickups appear as the subsequence of the originals.
        for slot in 0..4u16 {
            let want: Vec<Point> = (0..t.len())
                .filter(|&i| t.time_slots[i] == slot)
                .map(|i| t.pickups[i])
                .collect();
            let got: Vec<Point> = (0..s.len())
                .filter(|&i| s.time_slots[i] == slot)
                .map(|i| s.pickups[i])
                .collect();
            assert_eq!(got, want, "slot {slot}");
        }
    }

    #[test]
    fn feed_emits_empty_batches_for_empty_slots() {
        // One trip, many slots: every other batch must still exist
        // (empty appends are real feed ticks).
        let t = Trips {
            pickups: vec![Point::new(1.0, 1.0)],
            dropoffs: vec![Point::new(2.0, 2.0)],
            fares: vec![5.0],
            passenger_counts: vec![1],
            time_slots: vec![3],
            num_time_slots: 8,
        };
        let feed = TripFeed::new(&t);
        assert_eq!(feed.num_batches(), 8);
        for i in 0..8 {
            assert_eq!(feed.batch(i).len(), usize::from(i == 3), "batch {i}");
        }
    }

    #[test]
    fn batch_conversions() {
        let t = generate_trips(&extent(), 50, 2, 3);
        let pb = t.pickup_batch();
        assert_eq!(pb.len(), 50);
        assert_eq!(pb.weights, t.fares);
        let od = t.od_batch();
        assert_eq!(od.len(), 50);
        assert_eq!(od.origins, t.pickups);
    }
}
