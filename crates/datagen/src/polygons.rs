//! Query-polygon generation with selectivity calibration.
//!
//! The paper's evaluation uses "hand-drawn" query polygons "adjusted to
//! have the same MBR", with selectivity from roughly 3% to 83% and
//! varying shape complexity (Figure 10). These generators reproduce that
//! setup without the visual interface:
//!
//! * [`star_polygon`] — star-shaped polygons with a smoothed random
//!   radial profile (looks hand-drawn, controllable vertex count),
//! * [`fit_to_bbox`] — normalizes any polygon onto a target MBR,
//! * [`calibrated_polygon`] — binary-searches a radial scale so the
//!   polygon captures a target fraction of a given point set.

use canvas_geom::polygon::Polygon;
use canvas_geom::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A star-shaped (hand-drawn-looking) polygon with `vertices` vertices
/// centered in the extent. `roughness ∈ [0, 1)` controls radial
/// variation (0 = regular polygon).
pub fn star_polygon(extent: &BBox, vertices: usize, roughness: f64, seed: u64) -> Polygon {
    let vertices = vertices.max(3);
    let mut rng = StdRng::seed_from_u64(seed);
    let center = extent.center();
    let base_r = 0.5 * extent.width().min(extent.height());

    // Random radial profile, then smooth with a 3-tap box filter so the
    // outline looks drawn rather than jagged noise.
    let raw: Vec<f64> = (0..vertices)
        .map(|_| 1.0 - roughness * rng.gen_range(0.0..1.0))
        .collect();
    let smooth: Vec<f64> = (0..vertices)
        .map(|i| {
            let a = raw[(i + vertices - 1) % vertices];
            let b = raw[i];
            let c = raw[(i + 1) % vertices];
            (a + b + c) / 3.0
        })
        .collect();

    let pts: Vec<Point> = (0..vertices)
        .map(|i| {
            let t = std::f64::consts::TAU * i as f64 / vertices as f64;
            center + Point::new(t.cos(), t.sin()) * (base_r * smooth[i])
        })
        .collect();
    Polygon::simple(pts).expect("star polygon is non-degenerate")
}

/// Rescales a polygon so its MBR coincides with `target` (the paper's
/// "adjusted to have the same MBR" step).
pub fn fit_to_bbox(poly: &Polygon, target: &BBox) -> Polygon {
    let b = poly.bbox();
    let sx = target.width() / b.width().max(1e-12);
    let sy = target.height() / b.height().max(1e-12);
    let map = |p: Point| {
        Point::new(
            target.min.x + (p.x - b.min.x) * sx,
            target.min.y + (p.y - b.min.y) * sy,
        )
    };
    let outer = canvas_geom::Ring::new(poly.outer().vertices().iter().map(|v| map(*v)).collect())
        .expect("scaled ring stays valid");
    let holes = poly
        .holes()
        .iter()
        .filter_map(|h| canvas_geom::Ring::new(h.vertices().iter().map(|v| map(*v)).collect()).ok())
        .collect();
    Polygon::new(outer, holes)
}

/// Fraction of `points` inside the polygon.
pub fn selectivity(poly: &Polygon, points: &[Point]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let hits = points.iter().filter(|p| poly.contains_closed(**p)).count();
    hits as f64 / points.len() as f64
}

/// Generates a star polygon whose selectivity against `points` is within
/// `tol` of `target` (binary search on a radial scale around the
/// centroid), then MBR-normalized to `mbr`. Mirrors the paper's
/// Figure 10 setup: fixed MBR, varying shape/selectivity.
pub fn calibrated_polygon(
    mbr: &BBox,
    points: &[Point],
    target: f64,
    vertices: usize,
    seed: u64,
) -> Polygon {
    assert!((0.0..=1.0).contains(&target));
    let shape = star_polygon(mbr, vertices, 0.55, seed);
    let centroid = shape.outer().centroid();

    let scaled = |factor: f64| -> Polygon {
        let outer = canvas_geom::Ring::new(
            shape
                .outer()
                .vertices()
                .iter()
                .map(|v| centroid + (*v - centroid) * factor)
                .collect(),
        )
        .expect("scaled star stays valid");
        Polygon::new(outer, Vec::new())
    };

    let (mut lo, mut hi) = (0.02f64, 1.6f64);
    let mut best = scaled(1.0);
    let mut best_err = f64::INFINITY;
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        let cand = scaled(mid);
        let s = selectivity(&cand, points);
        let err = (s - target).abs();
        if err < best_err {
            best_err = err;
            best = cand;
        }
        if s < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::uniform_points;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn star_polygon_valid_and_seeded() {
        let a = star_polygon(&extent(), 24, 0.5, 3);
        let b = star_polygon(&extent(), 24, 0.5, 3);
        let c = star_polygon(&extent(), 24, 0.5, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.outer().len(), 24);
        assert!(a.area() > 0.0);
        // Star-shaped around the center: centroid inside.
        assert!(a.contains_closed(extent().center()));
    }

    #[test]
    fn vertex_count_controls_complexity() {
        for n in [8, 32, 128, 512] {
            let p = star_polygon(&extent(), n, 0.4, 9);
            assert_eq!(p.num_vertices(), n);
        }
    }

    #[test]
    fn fit_to_bbox_normalizes_mbr() {
        let p = star_polygon(&extent(), 16, 0.6, 5);
        let target = BBox::new(Point::new(10.0, 20.0), Point::new(60.0, 80.0));
        let fitted = fit_to_bbox(&p, &target);
        let b = fitted.bbox();
        assert!((b.min.x - 10.0).abs() < 1e-9);
        assert!((b.max.y - 80.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_hits_targets() {
        let pts = uniform_points(&extent(), 4000, 77);
        // The paper's selectivity range: ~3% to ~83%.
        for (target, tol) in [(0.03, 0.02), (0.25, 0.04), (0.5, 0.05), (0.83, 0.05)] {
            let poly = calibrated_polygon(&extent(), &pts, target, 48, 13);
            let s = selectivity(&poly, &pts);
            assert!((s - target).abs() <= tol, "target {target}, got {s}");
        }
    }

    #[test]
    fn selectivity_bounds() {
        let pts = uniform_points(&extent(), 100, 1);
        let tiny = star_polygon(
            &BBox::new(Point::new(49.0, 49.0), Point::new(51.0, 51.0)),
            8,
            0.1,
            2,
        );
        assert!(selectivity(&tiny, &pts) < 0.1);
        assert_eq!(selectivity(&tiny, &[]), 0.0);
    }
}
