//! # canvas-datagen
//!
//! Seeded synthetic workloads standing in for the paper's evaluation
//! data (NYC taxi trips + hand-drawn query polygons — see DESIGN.md §2
//! for the substitution table):
//!
//! * [`points`] — uniform and Gaussian-hotspot point clouds
//!   (`taxi_pickups` is the standard benchmark workload),
//! * [`trips`] — origin–destination trip tables with fare / passenger /
//!   time-slot attributes,
//! * [`polygons`] — "hand-drawn" star polygons with MBR normalization
//!   and **selectivity calibration** (the Figure 10 setup),
//! * [`neighborhoods()`] — exact Voronoi-cell partitions of the extent
//!   (the polygon side of aggregation queries).
//!
//! Everything is deterministic given a seed, so experiments reproduce.

pub mod neighborhoods;
pub mod points;
pub mod polygons;
pub mod trips;

pub use neighborhoods::{jittered_sites, neighborhoods, neighborhoods_detailed, subdivide_polygon};
pub use points::{clustered_points, default_hotspots, taxi_pickups, uniform_points, Hotspot};
pub use polygons::{calibrated_polygon, fit_to_bbox, selectivity, star_polygon};
pub use trips::{generate_trips, trip_feed, TripFeed, Trips};
