//! Synthetic point workloads.
//!
//! **Substitution note (DESIGN.md §2).** The paper evaluates on NYC taxi
//! pickup locations restricted to a query MBR. That data is not
//! available here, so these generators produce seeded synthetic
//! equivalents: a Gaussian-mixture "hotspot" distribution mimics the
//! heavy clustering of urban pickups (dense midtown-like cores, sparse
//! periphery), and a uniform generator provides the unclustered control.
//! Both exercise the same code paths (rasterization density skew, PIP
//! cost per point) with controllable sizes.

use canvas_geom::{BBox, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniformly distributed points in the extent.
pub fn uniform_points(extent: &BBox, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(extent.min.x..=extent.max.x),
                rng.gen_range(extent.min.y..=extent.max.y),
            )
        })
        .collect()
}

/// A Gaussian hotspot: cluster center plus isotropic spread.
#[derive(Clone, Copy, Debug)]
pub struct Hotspot {
    pub center: Point,
    pub sigma: f64,
    /// Relative sampling weight among hotspots.
    pub weight: f64,
}

/// Clustered points from a Gaussian mixture over `hotspots`, clamped to
/// the extent (urban pickup distributions are heavily multi-modal).
pub fn clustered_points(extent: &BBox, hotspots: &[Hotspot], n: usize, seed: u64) -> Vec<Point> {
    assert!(!hotspots.is_empty(), "need at least one hotspot");
    let mut rng = StdRng::seed_from_u64(seed);
    let total_w: f64 = hotspots.iter().map(|h| h.weight).sum();
    (0..n)
        .map(|_| {
            // Pick a hotspot by weight.
            let mut pick = rng.gen_range(0.0..total_w);
            let mut spot = hotspots[0];
            for h in hotspots {
                if pick < h.weight {
                    spot = *h;
                    break;
                }
                pick -= h.weight;
            }
            // Box–Muller Gaussian offsets.
            let (g1, g2) = gaussian_pair(&mut rng);
            let p = Point::new(
                spot.center.x + g1 * spot.sigma,
                spot.center.y + g2 * spot.sigma,
            );
            Point::new(
                p.x.clamp(extent.min.x, extent.max.x),
                p.y.clamp(extent.min.y, extent.max.y),
            )
        })
        .collect()
}

/// Default city-like hotspot layout for an extent: one dominant core,
/// two secondary centers, one outlying cluster.
pub fn default_hotspots(extent: &BBox) -> Vec<Hotspot> {
    let w = extent.width();
    let h = extent.height();
    let at = |fx: f64, fy: f64| Point::new(extent.min.x + fx * w, extent.min.y + fy * h);
    vec![
        Hotspot {
            center: at(0.45, 0.55),
            sigma: 0.10 * w.min(h),
            weight: 0.5,
        },
        Hotspot {
            center: at(0.25, 0.3),
            sigma: 0.06 * w.min(h),
            weight: 0.2,
        },
        Hotspot {
            center: at(0.7, 0.65),
            sigma: 0.08 * w.min(h),
            weight: 0.2,
        },
        Hotspot {
            center: at(0.8, 0.15),
            sigma: 0.04 * w.min(h),
            weight: 0.1,
        },
    ]
}

/// Seeded city-like point cloud: the standard workload of the benchmark
/// harness (stands in for taxi pickups inside the query MBR).
pub fn taxi_pickups(extent: &BBox, n: usize, seed: u64) -> Vec<Point> {
    clustered_points(extent, &default_hotspots(extent), n, seed)
}

/// One standard Gaussian pair via Box–Muller.
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let t = std::f64::consts::TAU * u2;
    (r * t.cos(), r * t.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn uniform_points_in_extent_and_seeded() {
        let e = extent();
        let a = uniform_points(&e, 1000, 7);
        let b = uniform_points(&e, 1000, 7);
        let c = uniform_points(&e, 1000, 8);
        assert_eq!(a, b, "same seed must reproduce");
        assert_ne!(a, c, "different seed must differ");
        assert!(a.iter().all(|p| e.contains(*p)));
    }

    #[test]
    fn clustered_points_cluster() {
        let e = extent();
        let pts = taxi_pickups(&e, 5000, 42);
        assert_eq!(pts.len(), 5000);
        assert!(pts.iter().all(|p| e.contains(*p)));
        // Density near the dominant core exceeds density in a far corner.
        let near_core = pts
            .iter()
            .filter(|p| p.dist(Point::new(45.0, 55.0)) < 15.0)
            .count();
        let corner = pts
            .iter()
            .filter(|p| p.dist(Point::new(5.0, 95.0)) < 15.0)
            .count();
        assert!(
            near_core > 5 * corner.max(1),
            "core {near_core} vs corner {corner}"
        );
    }

    #[test]
    fn hotspot_weights_respected() {
        let e = extent();
        let spots = vec![
            Hotspot {
                center: Point::new(20.0, 20.0),
                sigma: 2.0,
                weight: 0.9,
            },
            Hotspot {
                center: Point::new(80.0, 80.0),
                sigma: 2.0,
                weight: 0.1,
            },
        ];
        let pts = clustered_points(&e, &spots, 2000, 11);
        let near_a = pts
            .iter()
            .filter(|p| p.dist(Point::new(20.0, 20.0)) < 10.0)
            .count();
        let near_b = pts
            .iter()
            .filter(|p| p.dist(Point::new(80.0, 80.0)) < 10.0)
            .count();
        assert!(near_a > 4 * near_b, "a {near_a} vs b {near_b}");
    }

    #[test]
    fn zero_points() {
        assert!(uniform_points(&extent(), 0, 1).is_empty());
        assert!(taxi_pickups(&extent(), 0, 1).is_empty());
    }
}
