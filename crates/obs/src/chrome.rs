//! Chrome-trace-event / Perfetto JSON export.
//!
//! Writes the [`TraceSink`]'s records in the Chrome trace event format
//! (the JSON flavor both `chrome://tracing` and `ui.perfetto.dev`
//! load): complete events (`"ph":"X"`) with microsecond timestamps,
//! plus metadata events naming the tracks.
//!
//! ## Track mapping
//!
//! Spans of one query run concurrently on several worker threads, so a
//! single linear track per query would overlap illegally. Instead:
//!
//! * `pid` = the span's **query** id — each served query renders as
//!   its own process group, named `query <id>` (untracked spans fall
//!   into a `(untracked)` group with pid 0);
//! * `tid` = the recording thread's stable ordinal — within a query
//!   group, each participating thread gets its own nested track.
//!
//! The result reads top-down as the issue's span taxonomy: the engine
//! thread's `execute → … → eval` stack on one track, worker `pass` /
//! `tile` spans on sibling tracks, all inside one query group.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::metrics::json_string;
use crate::trace::{ArgValue, SpanRecord, TraceSink};

impl TraceSink {
    /// Writes all buffered records (without draining them) to `path`
    /// as a Chrome/Perfetto-loadable JSON trace, including the sink's
    /// metadata header.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write_chrome_trace_to(&mut w, &self.snapshot(), &self.meta(), self.dropped())?;
        w.flush()
    }
}

/// Serializes `records` as a Chrome trace event JSON document.
/// `meta` and `dropped` land in the top-level `otherData` header.
pub fn write_chrome_trace_to<W: Write>(
    w: &mut W,
    records: &[SpanRecord],
    meta: &[(String, String)],
    dropped: u64,
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"displayTimeUnit\": \"ms\",")?;
    write!(w, "  \"otherData\": {{\"dropped_events\": {dropped}")?;
    for (k, v) in meta {
        write!(w, ", {}: {}", json_string(k), json_string(v))?;
    }
    writeln!(w, "}},")?;
    writeln!(w, "  \"traceEvents\": [")?;

    let mut first = true;
    let sep = |w: &mut W, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            writeln!(w, ",")
        }
    };

    // Track-naming metadata: one process per query id, one thread
    // track per (query, thread) pair that recorded spans. Sorting the
    // process index by query id keeps the timeline in submission
    // order.
    let mut queries: Vec<u64> = records.iter().map(|r| r.query).collect();
    queries.sort_unstable();
    queries.dedup();
    let mut tracks: Vec<(u64, u32)> = records.iter().map(|r| (r.query, r.thread)).collect();
    tracks.sort_unstable();
    tracks.dedup();

    for (idx, q) in queries.iter().enumerate() {
        let name = if *q == 0 {
            "(untracked)".to_string()
        } else {
            format!("query {q}")
        };
        sep(w, &mut first)?;
        write!(
            w,
            "    {{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {q}, \"tid\": 0, \"args\": {{\"name\": {}}}}}",
            json_string(&name)
        )?;
        sep(w, &mut first)?;
        write!(
            w,
            "    {{\"ph\": \"M\", \"name\": \"process_sort_index\", \"pid\": {q}, \"tid\": 0, \"args\": {{\"sort_index\": {idx}}}}}"
        )?;
    }
    for (q, t) in &tracks {
        sep(w, &mut first)?;
        write!(
            w,
            "    {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {q}, \"tid\": {t}, \"args\": {{\"name\": \"thread {t}\"}}}}"
        )?;
    }

    for r in records {
        sep(w, &mut first)?;
        // Chrome wants microseconds; keep ns precision via fractions.
        let ts = r.start_ns as f64 / 1000.0;
        let dur = r.dur_ns as f64 / 1000.0;
        write!(
            w,
            "    {{\"ph\": \"X\", \"name\": {}, \"cat\": {}, \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"pid\": {}, \"tid\": {}, \"args\": {{\"span_id\": {}, \"parent_id\": {}",
            json_string(r.name),
            json_string(r.cat),
            r.query,
            r.thread,
            r.id,
            r.parent,
        )?;
        for (k, v) in &r.args {
            write!(w, ", {}: ", json_string(k))?;
            match v {
                ArgValue::U64(n) => write!(w, "{n}")?,
                ArgValue::F64(x) if x.is_finite() => write!(w, "{x}")?,
                ArgValue::F64(x) => write!(w, "{}", json_string(&x.to_string()))?,
                ArgValue::Str(s) => write!(w, "{}", json_string(s))?,
            }
        }
        write!(w, "}}}}")?;
    }

    writeln!(w)?;
    writeln!(w, "  ]")?;
    writeln!(w, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::tests::traced;
    use crate::trace::{current_ctx, span, span_with_query, with_ctx};

    fn render(records: &[SpanRecord]) -> String {
        let mut buf = Vec::new();
        write_chrome_trace_to(
            &mut buf,
            records,
            &[("simd_backend".to_string(), "avx2".to_string())],
            3,
        )
        .unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn exports_tracks_events_and_header() {
        let records = traced(|| {
            let mut root = span_with_query("execute", "engine");
            root.arg_str("query", || "heatmap \"taxi\"".to_string());
            let ctx = current_ctx();
            std::thread::scope(|s| {
                s.spawn(move || {
                    with_ctx(ctx, || {
                        let _w = span("pass", "executor");
                    });
                });
            });
            let _e = span("eval", "engine");
        });
        let out = render(&records);

        // Header metadata and drop counter.
        assert!(out.contains("\"dropped_events\": 3"));
        assert!(out.contains("\"simd_backend\": \"avx2\""));
        // Process/thread naming metadata for the query group.
        let qid = records.iter().find(|r| r.name == "execute").unwrap().query;
        assert!(out.contains(&format!("\"name\": \"query {qid}\"")));
        assert!(out.contains("\"process_sort_index\""));
        assert!(out.contains("\"thread_name\""));
        // Complete events carrying span/parent ids and escaped args.
        assert!(out.contains("\"ph\": \"X\""));
        assert!(out.contains("\"name\": \"pass\""));
        assert!(out.contains("heatmap \\\"taxi\\\""));
        // Worker span sits in the same pid group as the root.
        let pass = records.iter().find(|r| r.name == "pass").unwrap();
        assert_eq!(pass.query, qid);
    }

    #[test]
    fn output_is_well_formed_json() {
        let records = traced(|| {
            let mut s = span_with_query("execute", "engine");
            s.arg_f64("bad", f64::NAN);
            s.arg_u64("tiles", 7);
            let _c = span("prepare", "engine");
        });
        let out = render(&records);
        // Structural sanity without a JSON dependency: balanced
        // braces/brackets outside strings and no NaN literal (NaN is
        // not valid JSON — it must be stringified).
        assert!(!out.contains(": NaN"));
        let (mut brace, mut bracket, mut in_str, mut esc) = (0i64, 0i64, false, false);
        for c in out.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' if !in_str => brace += 1,
                '}' if !in_str => brace -= 1,
                '[' if !in_str => bracket += 1,
                ']' if !in_str => bracket -= 1,
                _ => {}
            }
            assert!(brace >= 0 && bracket >= 0);
        }
        assert_eq!(brace, 0);
        assert_eq!(bracket, 0);
        assert!(!in_str);
    }

    #[test]
    fn write_to_file_roundtrips() {
        let records = traced(|| {
            let _s = span_with_query("execute", "engine");
        });
        assert!(!records.is_empty());
        // Exercise the file-writing path through the sink itself.
        let _guard = crate::trace::tests::TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::trace::sink().clear();
        crate::trace::set_tracing(true);
        {
            let _s = span_with_query("execute", "engine");
        }
        crate::trace::set_tracing(false);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("obs_trace_test_{}.json", std::process::id()));
        crate::trace::sink().write_chrome_trace(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        crate::trace::sink().clear();
        assert!(body.contains("\"traceEvents\""));
        assert!(body.contains("\"execute\""));
    }
}
