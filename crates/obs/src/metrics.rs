//! Named counters and log-bucketed histograms.
//!
//! The [`Histogram`] uses power-of-two buckets: bucket 0 holds the
//! value 0 and bucket *i* (1 ≤ *i* ≤ 64) holds values in
//! [2^(i−1), 2^i). That covers the full `u64` range in 65 fixed
//! buckets with ≤ 2× relative quantile error, recording is a handful
//! of relaxed atomic ops (lock-free, no allocation), and two
//! histograms merge by adding buckets — which is what lets the engine
//! keep per-station histograms and fold them into one snapshot.
//!
//! All values are dimensionless `u64`s; latency users record
//! nanoseconds (see [`Histogram::record_secs`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one for zero + one per power of two.
pub const BUCKETS: usize = 65;

/// Bucket index for a value (0 → 0, otherwise `64 - leading_zeros`).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing named counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Sets the counter to `max(current, n)` — for gauges that track a
    /// high-water mark (e.g. peak queue depth).
    pub fn record_max(&self, n: u64) {
        self.0.fetch_max(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for gauges snapshotted from elsewhere.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }
}

/// A concurrent log-bucketed histogram (see module docs).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Saturating sum of recorded values (overflow clamps to
    /// `u64::MAX`, at which point `mean` degrades gracefully).
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; safe to call from any
    /// thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating add: a CAS loop, but recording frequency here is
        // per-query, not per-texel.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in seconds as nanoseconds.
    pub fn record_secs(&self, secs: f64) {
        let ns = if secs <= 0.0 {
            0
        } else {
            (secs * 1e9).min(u64::MAX as f64) as u64
        };
        self.record(ns);
    }

    /// Folds another histogram's contents into this one.
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            b.fetch_add(o.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let o_sum = other.sum.load(Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(o_sum))
            });
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile math and serialization.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`] with quantile/mean accessors.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), linearly interpolated within the
    /// containing bucket and clamped to the observed max. Returns 0 on
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i).min(self.max);
                // Position of the target rank within this bucket.
                let frac = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
                return (est as u64).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Quantile in seconds (for nanosecond-recording users).
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e9
    }

    pub fn mean_secs(&self) -> f64 {
        self.mean() / 1e9
    }

    pub fn max_secs(&self) -> f64 {
        self.max as f64 / 1e9
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` —
    /// used by the Prometheus exposition and tests.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lo(i), bucket_hi(i), n))
            .collect()
    }
}

/// A named collection of counters, histograms, and process metadata,
/// snapshot-able as JSON or Prometheus text exposition.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    meta: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the named counter. The `Arc` may be cached by
    /// hot paths so steady-state recording never takes the registry
    /// lock.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the named histogram (same caching contract as
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Upserts a process-level metadata entry (`simd_backend`,
    /// `host_cores`, …) exported with every snapshot.
    pub fn set_meta(&self, key: &str, value: impl Into<String>) {
        self.meta
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key.to_string(), value.into());
    }

    pub fn meta(&self) -> BTreeMap<String, String> {
        self.meta
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    fn counter_values(&self) -> BTreeMap<String, u64> {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    fn histogram_snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// The whole registry as one JSON object:
    /// `{"metadata":{…},"counters":{…},"histograms":{name:{count,sum,
    /// max,mean,p50,p95,p99}}}`.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"metadata\": {");
        let meta = self.meta();
        for (i, (k, v)) in meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), json_string(v)));
        }
        out.push_str("\n  },\n  \"counters\": {");
        let counters = self.counter_values();
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_string(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let histograms = self.histogram_snapshots();
        for (i, (k, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                json_string(k),
                h.count(),
                h.sum(),
                h.max(),
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// The whole registry as Prometheus text exposition (v0.0.4):
    /// counters as `counter`, histograms as `summary` quantiles plus
    /// `_max` gauges, metadata as a `_process_info` gauge with one
    /// label per entry.
    pub fn snapshot_prometheus(&self, prefix: &str) -> String {
        let mut out = String::with_capacity(1024);
        let meta = self.meta();
        if !meta.is_empty() {
            let name = format!("{prefix}_process_info");
            out.push_str(&format!(
                "# HELP {name} Process-level metadata.\n# TYPE {name} gauge\n{name}{{"
            ));
            for (i, (k, v)) in meta.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}=\"{}\"", prom_name(k), prom_label(v)));
            }
            out.push_str("} 1\n");
        }
        for (k, v) in self.counter_values() {
            let name = format!("{prefix}_{}", prom_name(&k));
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, h) in self.histogram_snapshots() {
            let name = format!("{prefix}_{}", prom_name(&k));
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!(
                "# TYPE {name}_max gauge\n{name}_max {}\n",
                h.max()
            ));
        }
        out
    }
}

/// JSON-escapes and quotes a string.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Sanitizes a metric name for Prometheus (`[a-zA-Z0-9_]`).
fn prom_name(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escapes a Prometheus label value.
fn prom_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(bucket_of((1u64 << 63) - 1), 63);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn zero_and_max_record_cleanly() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
        // Sum saturates rather than wrapping.
        assert_eq!(s.sum(), u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().sum(), u64::MAX);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn single_value_quantiles_hit_the_value_bucket() {
        let h = Histogram::new();
        h.record(1000);
        let s = h.snapshot();
        // 1000 lives in [512, 1023]; every quantile must land there,
        // clamped to the observed max.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = s.quantile(q);
            assert!((512..=1000).contains(&v), "q={q} -> {v}");
        }
        assert_eq!(s.max(), 1000);
        assert_eq!(s.mean(), 1000.0);
    }

    #[test]
    fn quantiles_are_monotone_and_ordered() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let s = h.snapshot();
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max());
        // p50 of ~uniform [17, 17000] should land within its 2× bucket
        // of the true median (8500 → bucket [8192, 16383]).
        assert!((4096..=16383).contains(&s.p50()), "p50 = {}", s.p50());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for i in 0..100u64 {
            a.record(i);
            combined.record(i);
        }
        for i in 1000..1100u64 {
            b.record(i);
            combined.record(i);
        }
        a.merge(&b);
        let (sa, sc) = (a.snapshot(), combined.snapshot());
        assert_eq!(sa.count(), sc.count());
        assert_eq!(sa.sum(), sc.sum());
        assert_eq!(sa.max(), sc.max());
        assert_eq!(sa.nonzero_buckets(), sc.nonzero_buckets());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(sa.quantile(q), sc.quantile(q));
        }

        // Snapshot-level merge agrees too.
        let mut snap = HistogramSnapshot::default();
        snap.merge(&sc);
        assert_eq!(snap.count(), sc.count());
        assert_eq!(snap.p95(), sc.p95());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), THREADS * PER_THREAD);
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.sum(), n * (n - 1) / 2);
        assert_eq!(snap.max(), n - 1);
        let bucket_total: u64 = snap.nonzero_buckets().iter().map(|&(_, _, c)| c).sum();
        assert_eq!(bucket_total, n);
    }

    #[test]
    fn registry_snapshots_json_and_prometheus() {
        let r = Registry::new();
        r.counter("queries_submitted").add(42);
        r.histogram("service_ns").record(1500);
        r.histogram("service_ns").record(3000);
        r.set_meta("simd_backend", "avx2");
        r.set_meta("host_cores", "8");

        let json = r.snapshot_json();
        assert!(json.contains("\"queries_submitted\": 42"));
        assert!(json.contains("\"service_ns\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"simd_backend\": \"avx2\""));

        let prom = r.snapshot_prometheus("canvas");
        assert!(prom.contains("# TYPE canvas_queries_submitted counter"));
        assert!(prom.contains("canvas_queries_submitted 42"));
        assert!(prom.contains("canvas_service_ns{quantile=\"0.5\"}"));
        assert!(prom.contains("canvas_service_ns_count 2"));
        assert!(prom.contains("simd_backend=\"avx2\""));
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.inc();
        assert_eq!(r.counter("x").get(), 2);
        let h1 = r.histogram("y");
        r.histogram("y").record(5);
        assert_eq!(h1.snapshot().count(), 1);
    }

    #[test]
    fn counter_max_and_set() {
        let c = Counter::default();
        c.record_max(10);
        c.record_max(5);
        assert_eq!(c.get(), 10);
        c.set(3);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn empty_snapshot_quantile_bounds() {
        let s = Histogram::new().snapshot();
        // The full q range is safe on an empty snapshot, including the
        // exact bounds and out-of-range inputs (clamped).
        for q in [0.0, 0.5, 1.0, -1.0, 2.0, f64::NAN] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
        assert_eq!(s.quantile_secs(0.99), 0.0);
        assert_eq!(s.mean_secs(), 0.0);
        assert_eq!(s.max_secs(), 0.0);
    }

    #[test]
    fn quantile_bounds_clamp_to_observed_range() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        // q=0.0 targets the first observation's bucket; q=1.0 the max.
        assert!(s.quantile(0.0) <= s.quantile(1.0));
        assert_eq!(s.quantile(1.0), 1000, "q=1.0 is the observed max");
        assert!(s.quantile(0.0) >= bucket_lo(bucket_of(10)));
        assert!(s.quantile(0.0) <= bucket_hi(bucket_of(10)));
        // Out-of-range q clamps rather than panicking or extrapolating.
        assert_eq!(s.quantile(7.5), s.quantile(1.0));
        assert_eq!(s.quantile(-0.5), s.quantile(0.0));
    }

    #[test]
    fn merge_saturates_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX - 1);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.sum(), u64::MAX, "histogram merge clamps, not wraps");
        assert_eq!(s.count(), 2);

        // Snapshot-level merge saturates the same way.
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.sum(), u64::MAX);
        assert_eq!(sa.count(), 3);
        assert_eq!(sa.max(), u64::MAX);
    }

    #[test]
    fn quantile_secs_on_single_bucket() {
        let h = Histogram::new();
        // Three observations in one bucket ([2^29, 2^30): ~0.54–1.07s).
        for _ in 0..3 {
            h.record_secs(0.75);
        }
        let s = h.snapshot();
        assert_eq!(s.nonzero_buckets().len(), 1);
        let (lo, _, n) = s.nonzero_buckets()[0];
        assert_eq!(n, 3);
        // Every quantile interpolates within the single bucket and
        // clamps to the observed max — never outside [lo, max].
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            let v = s.quantile_secs(q);
            assert!(
                v >= lo as f64 / 1e9 && v <= s.max_secs(),
                "q={q} -> {v}s outside [{}, {}]",
                lo as f64 / 1e9,
                s.max_secs()
            );
        }
        assert_eq!(s.quantile_secs(1.0), s.max_secs());
    }

    #[test]
    fn record_secs_converts_to_ns() {
        let h = Histogram::new();
        h.record_secs(0.001);
        h.record_secs(-1.0);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), 1_000_000);
        assert!((s.mean_secs() - 0.0005).abs() < 1e-9);
    }
}
