//! `ExecReport`: structured EXPLAIN / EXPLAIN ANALYZE for one query.
//!
//! A report is the *join* of two views of a query:
//!
//! * the **plan skeleton** — one [`NodeReport`] row per plan node
//!   (pre-order ids, operator labels, per-subtree structural
//!   fingerprints), which the engine derives from the normalized plan
//!   (`Prepared::explain()`; promoted query classes get a single
//!   descriptor row). Alone, this is EXPLAIN: `measured == false`.
//! * the **span tree** — the query's recorded spans (from the
//!   [`flight`](crate::flight) rings or a tracing capture), folded
//!   into the skeleton by [`ExecReport::measure`]: per-node exclusive
//!   wall time (node spans carry a `node` id argument stamped by the
//!   evaluator), executor pass counts and streamed-tile counts
//!   attributed to their nearest enclosing plan node, bytes produced,
//!   and per-node *provenance* (rendered here vs shared-subplan cache
//!   hit vs in-flight subscription), plus the engine-station timings
//!   (queue wait, gate wait, eval). This is EXPLAIN ANALYZE.
//!
//! Reports render as JSON ([`ExecReport::to_json`], machine-checkable
//! — CI validates one) and as an aligned text tree
//! ([`ExecReport::to_text`], the human form printed by
//! `examples/serve_traced.rs`).
//!
//! The type is deliberately plain (strings + integers): `canvas-obs`
//! sits below every other crate, so the engine describes plans *into*
//! it rather than this crate depending on the algebra.

use std::collections::HashMap;

use crate::metrics::json_string;
use crate::trace::{ArgValue, SpanRecord};

/// One plan-node row of an [`ExecReport`] (see module docs).
#[derive(Clone, Debug, Default)]
pub struct NodeReport {
    /// Pre-order node id within the normalized plan (0 = root). The
    /// evaluator stamps the same ids onto its spans — this is the join
    /// key.
    pub node: u64,
    /// Distance from the plan root (indentation in the text tree).
    pub depth: usize,
    /// Operator label (`B[⊙]`, `Mp'…`, `C_P[…]`, or the promoted
    /// class name).
    pub label: String,
    /// Structural fingerprint of this node's subtree (hex). The root
    /// row's fingerprint is the whole query's cache identity.
    pub fingerprint: String,
    /// Exclusive wall time: this node's span minus nested node spans
    /// (so rows sum to ≤ the root `execute` span instead of
    /// double-counting ancestors).
    pub wall_ns: u64,
    /// Executor passes (`pass` + `split_pass`) dispatched under this
    /// node.
    pub passes: u64,
    /// Tiles streamed (`tile_produce`) under this node.
    pub tiles: u64,
    /// Bytes of the canvas/payload this node produced.
    pub bytes: u64,
    /// How this node's result came to be: `plan` (unmeasured),
    /// `rendered`, `shared_cache` (subplan cache hit), `subscribed`
    /// (latched onto another query's in-flight render), `cache` /
    /// `coalesced` (whole-query hit — no node ran), or `missing`
    /// (measured query, but every span of this node was recycled).
    pub provenance: String,
}

/// A structured per-query execution report (see module docs).
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Query-class label (`Query::label`).
    pub query: String,
    /// Whole-query structural fingerprint (hex) — the cache identity.
    pub fingerprint: String,
    /// How the query was served: `plan` (EXPLAIN only), `computed`,
    /// `cache`, `coalesced`, `shed`, `failed`, or `panicked`.
    pub provenance: String,
    /// False for plan-only EXPLAIN; true once spans were folded in.
    pub measured: bool,
    /// End-to-end service time as the engine measured it.
    pub service_ns: u64,
    /// Duration of the root `execute` span (≤ `service_ns`).
    pub execute_ns: u64,
    /// Admission-wait station time.
    pub queue_wait_ns: u64,
    /// Fair-gate wait summed across this query's passes.
    pub gate_wait_ns: u64,
    /// Evaluation station time.
    pub eval_ns: u64,
    /// SIMD backend the tile kernels dispatched to (`scalar`/`sse2`/
    /// `avx2`).
    pub simd_backend: String,
    /// Spans joined into this report.
    pub spans_joined: u64,
    /// Distinct recycled ancestors detected (lower bound on spans the
    /// flight rings had already overwritten at capture time).
    pub spans_missing: u64,
    /// Plan rows, pre-order (row 0 = root).
    pub nodes: Vec<NodeReport>,
}

impl ExecReport {
    /// Folds a span tree into this plan skeleton (EXPLAIN → EXPLAIN
    /// ANALYZE). `spans` may contain other queries' records; only
    /// `query == query_id` ones are joined. Idempotent over the
    /// skeleton fields: labels, fingerprints, and the provenance the
    /// engine already set are preserved.
    pub fn measure(mut self, query_id: u64, spans: &[SpanRecord]) -> ExecReport {
        self.measured = true;
        let spans: Vec<&SpanRecord> = spans.iter().filter(|r| r.query == query_id).collect();
        self.spans_joined = spans.len() as u64;
        {
            let owned: Vec<SpanRecord> = spans.iter().map(|r| (*r).clone()).collect();
            self.spans_missing = crate::flight::missing_parents(&owned);
        }
        let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|r| (r.id, *r)).collect();
        // Span id → plan-node id, for spans the evaluator stamped.
        let node_of_span: HashMap<u64, u64> = spans
            .iter()
            .filter_map(|r| arg_u64(r, "node").map(|n| (r.id, n)))
            .collect();
        let mut row_index: HashMap<u64, usize> = HashMap::new();
        for (i, row) in self.nodes.iter().enumerate() {
            row_index.insert(row.node, i);
        }

        // Station timings from the engine/executor span names.
        for r in &spans {
            if r.id == query_id {
                self.execute_ns = r.dur_ns;
            }
            match r.name {
                "admission_wait" => self.queue_wait_ns += r.dur_ns,
                "eval" => self.eval_ns += r.dur_ns,
                "gate_wait" => self.gate_wait_ns += r.dur_ns,
                _ => {}
            }
        }

        // Per-node inclusive wall, bytes, and provenance from the
        // node-stamped spans…
        for r in &spans {
            let Some(node) = node_of_span.get(&r.id) else {
                continue;
            };
            let Some(&i) = row_index.get(node) else {
                continue;
            };
            let row = &mut self.nodes[i];
            row.wall_ns += r.dur_ns;
            if let Some(b) = arg_u64(r, "bytes") {
                row.bytes = row.bytes.max(b);
            }
            if let Some(src) = arg_str(r, "src") {
                row.provenance = src.to_string();
            } else if row.provenance.is_empty() || row.provenance == "plan" {
                row.provenance = "rendered".to_string();
            }
        }
        // …made exclusive: subtract each node span from its nearest
        // node-stamped ancestor, so rows sum to the root's inclusive
        // time instead of multiply counting nested nodes. Same-id
        // ancestors subtract too — a promoted procedure's class span
        // and the plan evaluations it runs internally all stamp node 0,
        // and only the outermost inclusive time may stand.
        for r in &spans {
            if !node_of_span.contains_key(&r.id) {
                continue;
            }
            if let Some(anc) = nearest_node_ancestor(r, &by_id, &node_of_span) {
                if let Some(&i) = row_index.get(&anc) {
                    let row = &mut self.nodes[i];
                    row.wall_ns = row.wall_ns.saturating_sub(r.dur_ns);
                }
            }
        }

        // Executor work attribution: passes and streamed tiles roll up
        // to the nearest enclosing plan node (root row when the work
        // ran outside any stamped node — e.g. the fused-chain
        // runners' interior draws).
        for r in &spans {
            let target = match r.name {
                "pass" | "split_pass" => 0,
                "tile_produce" => 1,
                _ => continue,
            };
            let node = nearest_node_ancestor(r, &by_id, &node_of_span).unwrap_or(0);
            if let Some(&i) = row_index.get(&node) {
                match target {
                    0 => self.nodes[i].passes += 1,
                    _ => self.nodes[i].tiles += 1,
                }
            }
        }

        // Whole-query hits never ran a node: every row inherits the
        // root provenance with zero work (the acceptance contract —
        // a cache-hit replay reports `provenance: cache`, zero passes).
        if self.provenance == "cache" || self.provenance == "coalesced" {
            for row in &mut self.nodes {
                row.provenance = self.provenance.clone();
            }
        } else {
            for row in &mut self.nodes {
                if row.provenance.is_empty() || row.provenance == "plan" {
                    row.provenance = "missing".to_string();
                }
            }
        }
        self
    }

    /// The report as a JSON object (stable field names; CI validates
    /// the structure of a captured one).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + self.nodes.len() * 160);
        out.push('{');
        out.push_str(&format!("\"query\": {}", json_string(&self.query)));
        out.push_str(&format!(
            ", \"fingerprint\": {}",
            json_string(&self.fingerprint)
        ));
        out.push_str(&format!(
            ", \"provenance\": {}",
            json_string(&self.provenance)
        ));
        out.push_str(&format!(", \"measured\": {}", self.measured));
        out.push_str(&format!(", \"service_ns\": {}", self.service_ns));
        out.push_str(&format!(", \"execute_ns\": {}", self.execute_ns));
        out.push_str(&format!(", \"queue_wait_ns\": {}", self.queue_wait_ns));
        out.push_str(&format!(", \"gate_wait_ns\": {}", self.gate_wait_ns));
        out.push_str(&format!(", \"eval_ns\": {}", self.eval_ns));
        out.push_str(&format!(
            ", \"simd_backend\": {}",
            json_string(&self.simd_backend)
        ));
        out.push_str(&format!(", \"spans_joined\": {}", self.spans_joined));
        out.push_str(&format!(", \"spans_missing\": {}", self.spans_missing));
        out.push_str(", \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"node\": {}, \"depth\": {}, \"label\": {}, \"fingerprint\": {}, \
                 \"wall_ns\": {}, \"passes\": {}, \"tiles\": {}, \"bytes\": {}, \
                 \"provenance\": {}}}",
                n.node,
                n.depth,
                json_string(&n.label),
                json_string(&n.fingerprint),
                n.wall_ns,
                n.passes,
                n.tiles,
                n.bytes,
                json_string(&n.provenance)
            ));
        }
        out.push_str("]}");
        out
    }

    /// The report as an aligned text tree — EXPLAIN ANALYZE for
    /// humans:
    ///
    /// ```text
    /// selection_heatmap  fp:4f2…  computed  service 12.4ms
    ///   stations: queue 0.0ms · gate 1.2ms · eval 11.8ms · simd avx2
    ///   #0 V[log]            1.1ms   1 pass             4.2MB  rendered
    ///   #1 · B[⊙]            9.6ms   3 passes  96 tiles 4.2MB  rendered
    ///   #2 · · C_P[50000]    0.8ms   1 pass             4.2MB  shared_cache
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{}  fp:{}  {}  service {}\n",
            self.query,
            short_fp(&self.fingerprint),
            self.provenance,
            fmt_ns(self.service_ns)
        ));
        if self.measured {
            out.push_str(&format!(
                "  stations: queue {} · gate {} · eval {} · simd {} · {} spans ({} missing)\n",
                fmt_ns(self.queue_wait_ns),
                fmt_ns(self.gate_wait_ns),
                fmt_ns(self.eval_ns),
                if self.simd_backend.is_empty() {
                    "?"
                } else {
                    &self.simd_backend
                },
                self.spans_joined,
                self.spans_missing
            ));
        }
        let label_col = self
            .nodes
            .iter()
            .map(|n| 2 * n.depth + n.label.chars().count())
            .max()
            .unwrap_or(0)
            .max(8);
        for n in &self.nodes {
            let tree = format!("{}{}", "· ".repeat(n.depth), n.label);
            let pad = label_col.saturating_sub(tree.chars().count());
            if self.measured {
                out.push_str(&format!(
                    "  #{:<3} {}{}  {:>9}  {:>3} passes  {:>5} tiles  {:>9}  {}\n",
                    n.node,
                    tree,
                    " ".repeat(pad),
                    fmt_ns(n.wall_ns),
                    n.passes,
                    n.tiles,
                    fmt_bytes(n.bytes),
                    n.provenance
                ));
            } else {
                out.push_str(&format!(
                    "  #{:<3} {}{}  fp:{}\n",
                    n.node,
                    tree,
                    " ".repeat(pad),
                    short_fp(&n.fingerprint)
                ));
            }
        }
        out
    }
}

fn arg_u64(r: &SpanRecord, key: &str) -> Option<u64> {
    r.args.iter().find_map(|(k, v)| match v {
        ArgValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

fn arg_str<'a>(r: &'a SpanRecord, key: &str) -> Option<&'a str> {
    r.args.iter().find_map(|(k, v)| match v {
        ArgValue::Str(s) if *k == key => Some(s.as_str()),
        _ => None,
    })
}

/// Walks the parent chain (excluding `r` itself) to the nearest span
/// carrying a plan-node id. `None` when the chain reaches a root or a
/// recycled (missing) ancestor first.
fn nearest_node_ancestor(
    r: &SpanRecord,
    by_id: &HashMap<u64, &SpanRecord>,
    node_of_span: &HashMap<u64, u64>,
) -> Option<u64> {
    let mut cur = r.parent;
    let mut hops = 0;
    while cur != 0 && hops < 128 {
        if let Some(n) = node_of_span.get(&cur) {
            return Some(*n);
        }
        cur = by_id.get(&cur)?.parent;
        hops += 1;
    }
    None
}

fn short_fp(fp: &str) -> &str {
    if fp.len() > 12 {
        &fp[..12]
    } else {
        fp
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        parent: u64,
        query: u64,
        name: &'static str,
        dur_ns: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            query,
            thread: 1,
            name,
            cat: "test",
            start_ns: 0,
            dur_ns,
            args,
        }
    }

    fn skeleton() -> ExecReport {
        ExecReport {
            query: "plan".into(),
            fingerprint: "aa".into(),
            provenance: "computed".into(),
            nodes: vec![
                NodeReport {
                    node: 0,
                    depth: 0,
                    label: "Mp'".into(),
                    fingerprint: "aa".into(),
                    provenance: "plan".into(),
                    ..NodeReport::default()
                },
                NodeReport {
                    node: 1,
                    depth: 1,
                    label: "B[⊙]".into(),
                    fingerprint: "bb".into(),
                    provenance: "plan".into(),
                    ..NodeReport::default()
                },
            ],
            ..ExecReport::default()
        }
    }

    /// execute(10) → eval → node0(mask) → node1(blend) → pass + tiles.
    fn spans() -> Vec<SpanRecord> {
        vec![
            span(10, 0, 10, "execute", 1000, vec![]),
            span(11, 10, 10, "admission_wait", 50, vec![]),
            span(12, 10, 10, "eval", 900, vec![]),
            span(
                13,
                12,
                10,
                "mask",
                800,
                vec![("node", ArgValue::U64(0)), ("bytes", ArgValue::U64(64))],
            ),
            span(
                14,
                13,
                10,
                "blend",
                600,
                vec![("node", ArgValue::U64(1)), ("bytes", ArgValue::U64(128))],
            ),
            span(15, 14, 10, "gate_wait", 30, vec![]),
            span(16, 14, 10, "pass", 500, vec![]),
            span(17, 16, 10, "tile_produce", 5, vec![]),
            span(18, 16, 10, "tile_produce", 5, vec![]),
            // A different query's span must not join.
            span(30, 0, 30, "execute", 77, vec![]),
        ]
    }

    #[test]
    fn measure_joins_stations_nodes_and_work() {
        let r = skeleton().measure(10, &spans());
        assert!(r.measured);
        assert_eq!(r.execute_ns, 1000);
        assert_eq!(r.queue_wait_ns, 50);
        assert_eq!(r.eval_ns, 900);
        assert_eq!(r.gate_wait_ns, 30);
        assert_eq!(r.spans_joined, 9, "other queries' spans excluded");
        // Node 0's wall is exclusive of node 1's nested 600ns.
        assert_eq!(r.nodes[0].wall_ns, 200);
        assert_eq!(r.nodes[1].wall_ns, 600);
        assert!(r.nodes[0].wall_ns + r.nodes[1].wall_ns <= r.execute_ns);
        // Pass + tiles attribute to the nearest node (the blend).
        assert_eq!(r.nodes[1].passes, 1);
        assert_eq!(r.nodes[1].tiles, 2);
        assert_eq!(r.nodes[0].passes, 0);
        assert_eq!(r.nodes[0].bytes, 64);
        assert_eq!(r.nodes[1].bytes, 128);
        assert_eq!(r.nodes[0].provenance, "rendered");
    }

    #[test]
    fn cache_hit_rows_inherit_provenance_with_zero_passes() {
        let mut sk = skeleton();
        sk.provenance = "cache".into();
        let hit_spans = vec![
            span(10, 0, 10, "execute", 100, vec![]),
            span(11, 10, 10, "cache_probe", 10, vec![]),
        ];
        let r = sk.measure(10, &hit_spans);
        for n in &r.nodes {
            assert_eq!(n.provenance, "cache");
            assert_eq!(n.passes, 0);
            assert_eq!(n.wall_ns, 0);
        }
    }

    #[test]
    fn shared_src_arg_sets_row_provenance() {
        let mut all = spans();
        all[3]
            .args
            .push(("src", ArgValue::Str("shared_cache".into())));
        let r = skeleton().measure(10, &all);
        assert_eq!(r.nodes[0].provenance, "shared_cache");
    }

    #[test]
    fn json_and_text_render() {
        let r = skeleton().measure(10, &spans());
        let js = r.to_json();
        assert!(js.contains("\"query\": \"plan\""));
        assert!(js.contains("\"nodes\": ["));
        assert!(js.contains("\"provenance\": \"computed\""));
        let txt = r.to_text();
        assert!(txt.contains("stations:"));
        assert!(txt.contains("B[⊙]"));
        // Plan-only rendering shows fingerprints instead of timings.
        let plain = skeleton().to_text();
        assert!(plain.contains("fp:bb"));
        assert!(!plain.contains("stations:"));
    }

    #[test]
    fn unobserved_rows_are_marked_missing() {
        let only_root = vec![
            span(10, 0, 10, "execute", 100, vec![]),
            span(13, 10, 10, "mask", 80, vec![("node", ArgValue::U64(0))]),
        ];
        let r = skeleton().measure(10, &only_root);
        assert_eq!(r.nodes[0].provenance, "rendered");
        assert_eq!(r.nodes[1].provenance, "missing");
    }
}
