//! The flight recorder: always-on, bounded, per-thread span rings with
//! tail-sampled slow-query capture.
//!
//! [`trace`](crate::trace) spans are either **off** (pre-PR-9 default:
//! blind in production) or recorded into one unbounded-ish global sink
//! (the tracing mode — great for a deliberate capture session, wrong
//! as an always-on default). The flight recorder is the third mode and
//! the new production default: every span is recorded into a small
//! **ring buffer owned by the recording thread**, overwriting the
//! oldest slot when full. Nothing is retained and nothing is decided
//! at record time — recording cost is one uncontended mutex push.
//!
//! The *decision* happens at query completion (**tail sampling**): the
//! engine checks the service time against its slow-query threshold
//! (and always captures shed / failed / panicked queries). Only then
//! are the query's spans [`collect`]ed out of the rings — joined by
//! their query-track id across every thread that worked on the query —
//! and promoted into a retained [`SlowQueryLog`] entry carrying the
//! full [`crate::report::ExecReport`]. Fast queries pay
//! nothing beyond the ring pushes; their slots are recycled by later
//! spans ([`recycled`] counts the overwrites).
//!
//! ## Loss accounting
//!
//! Rings are bounded, so a query that outlives its span volume can
//! lose early spans before capture. Loss is *detected*, not prevented:
//! [`collect`] counts orphans — collected spans whose parent id is
//! neither the flow root nor present in the collection — as a lower
//! bound on overwritten ancestors, surfaced through [`dropped`] and
//! per-report as `spans_missing`. The root `execute` span is recorded
//! last (RAII), so a captured report always has its root.
//!
//! ## Kill switch
//!
//! [`set_flight_recording`]`(false)` (or `CANVAS_FLIGHT=off` in the
//! environment) returns spans to the pre-PR-9 behavior: one relaxed
//! atomic load when tracing is also off. `bench_serve` measures the
//! on-vs-off per-span delta and gates the always-on overhead
//! (`flight_overhead_pct` ≤ 3% of mean service time).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::report::ExecReport;
use crate::trace::SpanRecord;

/// Per-thread ring capacity in span records. Sized to hold the full
/// span tree of a large streamed query on that thread (a 2048² chain
/// streams ~1k tiles → ~2k tile spans spread across the worker rings)
/// while keeping the always-on footprint at a few hundred KiB per
/// thread.
pub const FLIGHT_RING_CAPACITY: usize = 4096;

/// Process-level flight-recording flag. On by default; `CANVAS_FLIGHT=off`
/// or [`set_flight_recording`] disables. Relaxed ordering: a span
/// racing a toggle is either fully recorded or fully skipped.
static FLIGHT: AtomicBool = AtomicBool::new(true);
static FLIGHT_ENV_READ: std::sync::Once = std::sync::Once::new();

/// Spans overwritten in a ring before any capture wanted them — the
/// normal recycling of fast queries' slots.
static RECYCLED: AtomicU64 = AtomicU64::new(0);

/// Lower bound on spans a capture *wanted* but the rings had already
/// recycled (orphan-parent detection in [`collect`]).
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Turns the flight recorder on or off process-wide.
pub fn set_flight_recording(on: bool) {
    FLIGHT_ENV_READ.call_once(|| {});
    FLIGHT.store(on, Ordering::Relaxed);
}

/// True when spans are being recorded into the per-thread rings.
/// The first call consults `CANVAS_FLIGHT` (`off`/`0` disables).
#[inline]
pub fn flight_enabled() -> bool {
    FLIGHT_ENV_READ.call_once(|| {
        if let Ok(v) = std::env::var("CANVAS_FLIGHT") {
            if v.eq_ignore_ascii_case("off") || v == "0" {
                FLIGHT.store(false, Ordering::Relaxed);
            }
        }
    });
    FLIGHT.load(Ordering::Relaxed)
}

/// Ring-slot overwrites since process start (fast-query recycling).
pub fn recycled() -> u64 {
    RECYCLED.load(Ordering::Relaxed)
}

/// Spans detected missing at capture time (lower bound; see module
/// docs).
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// One thread's bounded span ring. The owning thread is the only
/// writer; [`collect`] is the rare cross-thread reader, so a plain
/// mutex around the deque is uncontended on the hot path.
struct Ring {
    slots: Mutex<VecDeque<SpanRecord>>,
}

/// Every ring ever registered (threads never unregister — rings are
/// bounded and thread counts are small, so the registry is too).
static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

std::thread_local! {
    static MY_RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

fn my_ring() -> Arc<Ring> {
    MY_RING.with(|cell| {
        Arc::clone(cell.get_or_init(|| {
            let ring = Arc::new(Ring {
                slots: Mutex::new(VecDeque::with_capacity(FLIGHT_RING_CAPACITY)),
            });
            rings()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&ring));
            ring
        }))
    })
}

/// Records one finished span into the current thread's ring,
/// recycling the oldest slot when full. Called from `Span::drop`.
pub(crate) fn record(rec: SpanRecord) {
    let ring = my_ring();
    let mut slots = ring
        .slots
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if slots.len() >= FLIGHT_RING_CAPACITY {
        slots.pop_front();
        RECYCLED.fetch_add(1, Ordering::Relaxed);
    }
    slots.push_back(rec);
}

/// Collects every resident span of one query track out of all thread
/// rings (non-destructively — slots stay until recycled, so a
/// [`Response::report`](../../canvas_engine/struct.Response.html) after
/// a slow-query capture sees the same tree). Orphans — spans whose
/// parent was already recycled — bump the global [`dropped`] counter.
pub fn collect(query: u64) -> Vec<SpanRecord> {
    if query == 0 {
        return Vec::new();
    }
    let ring_list: Vec<Arc<Ring>> = rings()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut out = Vec::new();
    for ring in &ring_list {
        let slots = ring
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        out.extend(slots.iter().filter(|r| r.query == query).cloned());
    }
    let missing = missing_parents(&out);
    if missing > 0 {
        DROPPED.fetch_add(missing, Ordering::Relaxed);
    }
    out
}

/// Distinct parent ids referenced by `spans` but absent from it (and
/// not flow roots) — the recycled-ancestor lower bound.
pub fn missing_parents(spans: &[SpanRecord]) -> u64 {
    let ids: std::collections::HashSet<u64> = spans.iter().map(|r| r.id).collect();
    let mut missing: Vec<u64> = spans
        .iter()
        .filter(|r| r.parent != 0 && !ids.contains(&r.parent))
        .map(|r| r.parent)
        .collect();
    missing.sort_unstable();
    missing.dedup();
    missing.len() as u64
}

/// Why a query was promoted into the [`SlowQueryLog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureReason {
    /// Service time exceeded the engine's slow-query threshold.
    SlowService,
    /// Shed at admission (`EngineError::Overloaded`).
    Shed,
    /// Failed — a coalesced follower saw its leader's failure.
    Failed,
    /// The evaluating leader panicked.
    Panicked,
}

impl CaptureReason {
    pub fn as_str(&self) -> &'static str {
        match self {
            CaptureReason::SlowService => "slow_service",
            CaptureReason::Shed => "shed",
            CaptureReason::Failed => "failed",
            CaptureReason::Panicked => "panicked",
        }
    }
}

/// One retained slow-query capture: identity, why it was kept, and the
/// full measured [`ExecReport`].
#[derive(Clone, Debug)]
pub struct SlowQuery {
    /// The query's span-track id (joins to a Perfetto `pid` when the
    /// same run was also traced).
    pub query_id: u64,
    /// Query-class label (`"knn"`, `"selection_heatmap"`, …).
    pub label: String,
    pub reason: CaptureReason,
    pub service_ns: u64,
    pub report: ExecReport,
}

/// The retained tail of captured slow queries: bounded, evicting the
/// least-recently-captured entry when full. The engine owns one and
/// exposes it via `QueryEngine::slow_queries()`.
pub struct SlowQueryLog {
    entries: Mutex<VecDeque<SlowQuery>>,
    cap: usize,
    captured: AtomicU64,
}

impl SlowQueryLog {
    /// A log retaining at most `cap` captures (≥ 1).
    pub fn new(cap: usize) -> Self {
        SlowQueryLog {
            entries: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            captured: AtomicU64::new(0),
        }
    }

    /// Retains a capture, evicting the oldest beyond the cap.
    pub fn push(&self, entry: SlowQuery) {
        self.captured.fetch_add(1, Ordering::Relaxed);
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if entries.len() >= self.cap {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// All retained captures, oldest first.
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Captures since construction (including evicted ones).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Retained entry count (≤ cap).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::tests::TRACE_TEST_LOCK;
    use crate::trace::{span, span_with_query};

    #[test]
    fn rings_capture_spans_without_tracing() {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::trace::set_tracing(false);
        crate::trace::sink().clear();
        set_flight_recording(true);
        let qid = {
            let root = span_with_query("execute", "engine");
            let _child = span("eval", "engine");
            root.query()
        };
        assert_ne!(qid, 0, "flight-on spans carry real ids");
        let spans = collect(qid);
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|r| r.name == "execute").unwrap();
        let child = spans.iter().find(|r| r.name == "eval").unwrap();
        assert_eq!(root.query, qid);
        assert_eq!(child.parent, root.id);
        assert!(
            crate::trace::sink().is_empty(),
            "flight-only spans never reach the tracing sink"
        );
    }

    #[test]
    fn rings_recycle_and_collect_detects_loss() {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::trace::set_tracing(false);
        set_flight_recording(true);
        let before = recycled();
        let qid = {
            let root = span_with_query("execute", "engine");
            // Overflow this thread's ring so early children recycle.
            for _ in 0..(FLIGHT_RING_CAPACITY + 64) {
                let parent = span("pass", "executor");
                let _inner = span("tile_produce", "executor");
                drop(parent);
            }
            root.query()
        };
        assert!(recycled() > before, "overflow must recycle slots");
        let spans = collect(qid);
        assert!(
            spans.iter().any(|r| r.name == "execute"),
            "the root, recorded last, survives"
        );
        assert!(
            spans.len() <= FLIGHT_RING_CAPACITY,
            "collection is ring-bounded"
        );
        // The oldest inner spans' parents are gone: loss is detected.
        assert!(missing_parents(&spans) > 0);
    }

    #[test]
    fn disabled_flight_records_nothing() {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::trace::set_tracing(false);
        set_flight_recording(false);
        let s = span_with_query("execute", "engine");
        assert_eq!(s.id(), 0);
        assert!(!s.is_recording());
        drop(s);
        set_flight_recording(true);
    }

    #[test]
    fn slow_query_log_caps_and_evicts_oldest() {
        let log = SlowQueryLog::new(2);
        for i in 0..3u64 {
            log.push(SlowQuery {
                query_id: i + 1,
                label: format!("q{i}"),
                reason: CaptureReason::SlowService,
                service_ns: i * 100,
                report: ExecReport::default(),
            });
        }
        assert_eq!(log.captured(), 3);
        assert_eq!(log.len(), 2);
        let ids: Vec<u64> = log.entries().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![2, 3], "oldest capture evicted first");
    }

    #[test]
    fn collect_untracked_is_empty() {
        assert!(collect(0).is_empty());
    }
}
