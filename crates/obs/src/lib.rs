//! # canvas-obs
//!
//! The **observability spine** of the canvas-algebra workspace: one
//! dependency-free crate every layer (engine → executor → raster →
//! core) instruments itself through, so a served query can be explained
//! end to end — *where did this query spend its time?* — instead of
//! only in aggregate.
//!
//! Five pieces:
//!
//! * [`trace`] — a low-overhead **span** API recording per-query trace
//!   trees into a process-global [`TraceSink`]. Tracing is off by
//!   default behind a process-level flag ([`trace::set_tracing`]);
//!   while disabled (and the flight recorder is off too), creating a
//!   span is a couple of relaxed atomic loads (~ns), so
//!   instrumentation can live permanently on hot paths. Spans carry a
//!   **query track** id that crosses thread boundaries with the work
//!   (the executor propagates the context to its pool workers
//!   alongside its scheduling ticket), so worker-side pass and tile
//!   spans attribute to the owning query.
//! * [`flight`] — the **always-on flight recorder**: bounded
//!   per-thread span rings that tail-sample. Every span lands in its
//!   recording thread's ring; at query completion the engine either
//!   lets the slots recycle (fast queries — free) or promotes the
//!   query's collected span tree into a retained [`SlowQueryLog`]
//!   entry (slow / shed / failed / panicked queries), so the one
//!   production query that blew its budget is explainable after the
//!   fact without tracing having been on.
//! * [`report`] — [`ExecReport`]: the structured EXPLAIN / EXPLAIN
//!   ANALYZE form of one query — plan rows joined to measured spans —
//!   rendered as JSON or an aligned text tree.
//! * [`metrics`] — named [`Counter`]s and log-bucketed [`Histogram`]s
//!   (p50/p95/p99/max, lock-free concurrent recording) in a
//!   [`Registry`] snapshot-able as JSON and as Prometheus text
//!   exposition — replacing mean-only latency aggregates.
//! * [`chrome`] — a Chrome-trace-event / Perfetto JSON writer
//!   ([`TraceSink::write_chrome_trace`]): a captured workload loads in
//!   `ui.perfetto.dev` or `chrome://tracing` as a flamegraph-style
//!   timeline, one process group per query, one track per worker
//!   thread.
//!
//! See `docs/OBSERVABILITY.md` at the repo root for the span taxonomy,
//! the metric-name reference, and the report field taxonomy.

pub mod chrome;
pub mod flight;
pub mod metrics;
pub mod report;
pub mod trace;

pub use flight::{
    flight_enabled, set_flight_recording, CaptureReason, SlowQuery, SlowQueryLog,
    FLIGHT_RING_CAPACITY,
};
pub use metrics::{Counter, Histogram, HistogramSnapshot, Registry};
pub use report::{ExecReport, NodeReport};
pub use trace::{
    set_tracing, sink, span, span_with_query, tracing_enabled, Ctx, Span, SpanRecord, TraceSink,
};
