//! Trace spans: timed, named, nested regions attributed to a query.
//!
//! ## Model
//!
//! A [`Span`] is an RAII guard: creating it notes the start time,
//! dropping it records a [`SpanRecord`] into the process-global
//! [`TraceSink`]. Records form trees through three ids:
//!
//! * `id` — unique per span,
//! * `parent` — the span that was open on the same logical flow when
//!   this one started (0 = root),
//! * `query` — the **track**: the root span of the query this work
//!   belongs to. Every span of one served query shares the `query` id
//!   no matter which thread recorded it, which is what lets the
//!   exporter render per-query timelines.
//!
//! ## Propagation
//!
//! Parent/query context lives in a thread-local [`Ctx`]. Within one
//! thread, nesting is automatic (spans save and restore the context).
//! Across threads the dispatcher captures [`current_ctx`] and the
//! worker runs under [`with_ctx`] — the executor's pool does exactly
//! this when it hands a pass to its workers, piggybacking on the same
//! dispatch hand-off as its fair-share ticket, so worker-side pass and
//! tile spans attribute to the owning query.
//!
//! ## Recording modes and overhead
//!
//! Span creation consults two process-level flags:
//!
//! * **Tracing** ([`set_tracing`], off by default) — finished spans
//!   are retained in the global [`TraceSink`] for export
//!   (Chrome-trace capture sessions).
//! * **Flight recording** ([`crate::flight::set_flight_recording`],
//!   *on* by default) — finished spans go into the recording thread's
//!   bounded ring ([`crate::flight`]), where they recycle for free
//!   unless the engine tail-samples the query as slow.
//!
//! Both may be on at once (one `SpanRecord` is built, the sink gets a
//! clone). With **both** off, [`span`] performs two relaxed atomic
//! loads and returns an inert guard whose drop is a no-op — tens of
//! nanoseconds at worst, cheap enough for per-pass and per-tile
//! instrumentation to stay compiled in permanently. `bench_serve`
//! measures the all-off span cost (`obs_overhead_pct`) and the
//! flight-on increment (`flight_overhead_pct`), both gated ≤ 3% of
//! mean service time.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Process-level tracing flag. Relaxed ordering: a span that races an
/// enable/disable transition is either fully recorded or fully skipped;
/// both are acceptable at a toggle boundary.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Turns span recording on or off process-wide.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// True when spans are currently being recorded.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// The propagation context of one logical flow: which query track work
/// belongs to and which span is the innermost open one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ctx {
    /// Root span id of the owning query (0 = untracked).
    pub query: u64,
    /// Innermost open span id (0 = none — new spans become roots).
    pub parent: u64,
}

std::thread_local! {
    static CTX: std::cell::Cell<Ctx> = const { std::cell::Cell::new(Ctx { query: 0, parent: 0 }) };
    /// Lazily-assigned small ordinal for the current OS thread (trace
    /// track id — stable for the thread's lifetime).
    static THREAD_ORD: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

static NEXT_THREAD_ORD: AtomicU32 = AtomicU32::new(1);

/// Small per-thread ordinal (1-based) used as the exporter's thread
/// track id.
pub fn thread_ordinal() -> u32 {
    THREAD_ORD.with(|c| {
        let mut t = c.get();
        if t == 0 {
            t = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
            c.set(t);
        }
        t
    })
}

/// The context of the current thread (capture before dispatching work
/// to another thread; see [`with_ctx`]).
pub fn current_ctx() -> Ctx {
    CTX.with(|c| c.get())
}

/// Runs `f` under `ctx` — the receiving half of cross-thread span
/// propagation. Restores the previous context afterwards, including on
/// unwind.
pub fn with_ctx<R>(ctx: Ctx, f: impl FnOnce() -> R) -> R {
    struct Restore(Ctx);
    impl Drop for Restore {
        fn drop(&mut self) {
            CTX.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CTX.with(|c| c.replace(ctx)));
    f()
}

/// One argument value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(String),
}

/// A finished span, as stored in the [`TraceSink`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub id: u64,
    /// Enclosing span id (0 = root of its flow).
    pub parent: u64,
    /// Owning query track (root span id of the query; 0 = untracked).
    pub query: u64,
    /// Recording thread's [`thread_ordinal`].
    pub thread: u32,
    pub name: &'static str,
    /// Category (layer): `"engine"`, `"executor"`, `"raster"`,
    /// `"algebra"`, …
    pub cat: &'static str,
    /// Start offset from the sink epoch, nanoseconds.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Hard cap on buffered records: a runaway traced workload degrades to
/// counted drops instead of unbounded memory growth.
pub const MAX_BUFFERED_RECORDS: usize = 1 << 21;

/// The process-global span buffer (see [`sink`]).
pub struct TraceSink {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU64,
    dropped: AtomicU64,
    meta: Mutex<Vec<(String, String)>>,
}

static SINK: OnceLock<TraceSink> = OnceLock::new();

/// The process-global [`TraceSink`].
pub fn sink() -> &'static TraceSink {
    SINK.get_or_init(|| TraceSink {
        epoch: Instant::now(),
        records: Mutex::new(Vec::new()),
        next_id: AtomicU64::new(1),
        dropped: AtomicU64::new(0),
        meta: Mutex::new(Vec::new()),
    })
}

impl TraceSink {
    /// Nanoseconds since the sink epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, rec: SpanRecord) {
        let mut records = self
            .records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if records.len() >= MAX_BUFFERED_RECORDS {
            drop(records);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        records.push(rec);
    }

    /// Buffered record count.
    pub fn len(&self) -> usize {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped at the [`MAX_BUFFERED_RECORDS`] cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drains and returns all buffered records.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(
            &mut *self
                .records
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Clones the buffered records without draining.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Discards buffered records and the drop counter (metadata stays).
    pub fn clear(&self) {
        self.take();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Upserts a header metadata entry (`simd_backend`, `host_cores`,
    /// …) — exported with every trace so files are self-describing
    /// across hosts.
    pub fn set_meta(&self, key: &str, value: impl Into<String>) {
        let mut meta = self
            .meta
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let value = value.into();
        match meta.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => meta.push((key.to_string(), value)),
        }
    }

    /// The current header metadata.
    pub fn meta(&self) -> Vec<(String, String)> {
        self.meta
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

/// Live state of an open span (absent on the all-off fast path).
struct ActiveSpan {
    id: u64,
    parent: u64,
    query: u64,
    prev: Ctx,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    /// Tracing was enabled at creation: the finished record is retained
    /// in the [`TraceSink`] (in addition to the flight ring when that
    /// is on too).
    to_sink: bool,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII span guard from [`span`] / [`span_with_query`]. Dropping it
/// records the span (when tracing and/or flight recording was enabled
/// at creation).
pub struct Span(Option<ActiveSpan>);

/// Opens a span on the current flow (see module docs). With tracing
/// and flight recording both disabled this is two atomic loads and an
/// inert guard.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> Span {
    let to_sink = tracing_enabled();
    if !to_sink && !crate::flight::flight_enabled() {
        return Span(None);
    }
    open_span(name, cat, false, to_sink)
}

/// Opens a span that **starts a new query track**: this span becomes
/// the root (`query == id`) and everything nested under it — on this
/// thread or propagated to workers — attributes to it. The engine
/// opens one per `execute`.
#[inline]
pub fn span_with_query(name: &'static str, cat: &'static str) -> Span {
    let to_sink = tracing_enabled();
    if !to_sink && !crate::flight::flight_enabled() {
        return Span(None);
    }
    open_span(name, cat, true, to_sink)
}

fn open_span(name: &'static str, cat: &'static str, new_query: bool, to_sink: bool) -> Span {
    let s = sink();
    let id = s.next_id.fetch_add(1, Ordering::Relaxed);
    let prev = current_ctx();
    let (query, parent) = if new_query {
        (id, prev.parent)
    } else {
        (prev.query, prev.parent)
    };
    CTX.with(|c| c.set(Ctx { query, parent: id }));
    Span(Some(ActiveSpan {
        id,
        parent,
        query,
        prev,
        name,
        cat,
        start_ns: s.now_ns(),
        to_sink,
        args: Vec::new(),
    }))
}

impl Span {
    /// This span's id (0 when tracing was disabled at creation).
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.id)
    }

    /// The query track this span belongs to (0 when inert/untracked).
    pub fn query(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.query)
    }

    /// True when this span is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    pub fn arg_u64(&mut self, key: &'static str, v: u64) {
        if let Some(a) = self.0.as_mut() {
            a.args.push((key, ArgValue::U64(v)));
        }
    }

    pub fn arg_f64(&mut self, key: &'static str, v: f64) {
        if let Some(a) = self.0.as_mut() {
            a.args.push((key, ArgValue::F64(v)));
        }
    }

    /// Attaches a string argument. The closure form means callers never
    /// pay the formatting cost on the disabled path.
    pub fn arg_str(&mut self, key: &'static str, v: impl FnOnce() -> String) {
        if let Some(a) = self.0.as_mut() {
            a.args.push((key, ArgValue::Str(v())));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        CTX.with(|c| c.set(a.prev));
        let s = sink();
        let end_ns = s.now_ns();
        let rec = SpanRecord {
            id: a.id,
            parent: a.parent,
            query: a.query,
            thread: thread_ordinal(),
            name: a.name,
            cat: a.cat,
            start_ns: a.start_ns,
            dur_ns: end_ns.saturating_sub(a.start_ns),
            args: a.args,
        };
        // One record, two possible destinations: the tracing sink
        // (when tracing was on at creation) and the flight ring (when
        // the recorder is on now). A span opened for a mode that was
        // disabled meanwhile is simply discarded.
        if a.to_sink {
            if crate::flight::flight_enabled() {
                s.push(rec.clone());
                crate::flight::record(rec);
            } else {
                s.push(rec);
            }
        } else if crate::flight::flight_enabled() {
            crate::flight::record(rec);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Tracing is process-global: tests that toggle it serialize here
    /// (shared with the chrome exporter's tests).
    pub(crate) static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// Runs `f` with tracing enabled on a clean sink, returning the
    /// records it produced.
    pub(crate) fn traced(f: impl FnOnce()) -> Vec<SpanRecord> {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        sink().clear();
        set_tracing(true);
        f();
        set_tracing(false);
        sink().take()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TRACE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_tracing(false);
        crate::flight::set_flight_recording(false);
        sink().clear();
        let before = sink().len();
        {
            let mut s = span("noop", "test");
            assert_eq!(s.id(), 0);
            assert!(!s.is_recording());
            s.arg_u64("k", 1);
            s.arg_str("expensive", || {
                unreachable!("must not format when disabled")
            });
        }
        assert_eq!(sink().len(), before);
        crate::flight::set_flight_recording(true);
    }

    #[test]
    fn nesting_links_parents_and_query_track() {
        let records = traced(|| {
            let root = span_with_query("execute", "engine");
            let rid = root.id();
            assert_eq!(root.query(), rid);
            {
                let child = span("prepare", "engine");
                assert_eq!(child.query(), rid);
                let grandchild = span("fingerprint", "engine");
                assert_eq!(grandchild.query(), rid);
            }
            let sibling = span("eval", "engine");
            assert_eq!(sibling.query(), rid);
        });
        assert_eq!(records.len(), 4);
        let by_name = |n: &str| records.iter().find(|r| r.name == n).unwrap();
        let root = by_name("execute");
        assert_eq!(root.parent, 0);
        assert_eq!(root.query, root.id);
        assert_eq!(by_name("prepare").parent, root.id);
        assert_eq!(by_name("fingerprint").parent, by_name("prepare").id);
        assert_eq!(by_name("eval").parent, root.id);
        assert!(records.iter().all(|r| r.query == root.id));
        // Durations nest: children end before the root's record (the
        // root dropped last) and never exceed it.
        assert!(by_name("prepare").dur_ns <= root.dur_ns);
    }

    #[test]
    fn ctx_propagates_across_threads() {
        let records = traced(|| {
            let root = span_with_query("execute", "engine");
            let rid = root.id();
            let ctx = current_ctx();
            assert_eq!(ctx.query, rid);
            std::thread::scope(|s| {
                s.spawn(move || {
                    with_ctx(ctx, || {
                        let w = span("pass", "executor");
                        assert_eq!(w.query(), rid);
                    });
                    // Outside with_ctx the worker thread is untracked.
                    assert_eq!(current_ctx(), Ctx::default());
                });
            });
        });
        let pass = records.iter().find(|r| r.name == "pass").unwrap();
        let root = records.iter().find(|r| r.name == "execute").unwrap();
        assert_eq!(pass.query, root.id);
        assert_eq!(pass.parent, root.id);
        assert_ne!(pass.thread, root.thread, "worker ran on another thread");
    }

    #[test]
    fn args_survive_into_records() {
        let records = traced(|| {
            let mut s = span("draw", "raster");
            s.arg_u64("tiles", 64);
            s.arg_f64("ratio", 0.5);
            s.arg_str("backend", || "avx2".to_string());
        });
        let r = &records[0];
        assert_eq!(r.args[0], ("tiles", ArgValue::U64(64)));
        assert_eq!(r.args[1], ("ratio", ArgValue::F64(0.5)));
        assert_eq!(r.args[2], ("backend", ArgValue::Str("avx2".into())));
    }

    #[test]
    fn meta_upserts() {
        sink().set_meta("test_meta_key", "a");
        sink().set_meta("test_meta_key", "b");
        let meta = sink().meta();
        let hits: Vec<_> = meta.iter().filter(|(k, _)| k == "test_meta_key").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "b");
    }
}
