//! Criterion bench for E9 (Section 4.5): the Voronoi stored procedure
//! (incremental value transforms) across site counts and resolutions.

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::voronoi::compute_voronoi;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_voronoi(c: &mut Criterion) {
    let extent = city_extent();
    let mut group = c.benchmark_group("voronoi");
    group.sample_size(10);
    for sites_n in [8usize, 32, 128] {
        let sites = canvas_datagen::jittered_sites(&extent, sites_n, 48);
        let vp = Viewport::square_pixels(extent, 128);
        group.bench_with_input(
            BenchmarkId::new("stored_procedure", sites_n),
            &sites_n,
            |b, _| {
                b.iter(|| {
                    let mut dev = Device::nvidia();
                    compute_voronoi(&mut dev, vp, &sites).non_null_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_voronoi);
criterion_main!(benches);
