//! Criterion bench for E3/E4 (Figure 9 c,d): disjunction of multiple
//! polygonal constraints. The canvas approach's extra cost per
//! constraint is one blended render; the baselines pay per-point PIP
//! tests per constraint.

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::selection::{select_points_multi, MultiPolygon};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_multi_constraint(c: &mut Criterion) {
    let extent = city_extent();
    let mbr = canvas_geom::BBox::new(
        canvas_geom::Point::new(15.0, 15.0),
        canvas_geom::Point::new(85.0, 85.0),
    );
    let n = 40_000usize;
    let points = canvas_datagen::taxi_pickups(&extent, n, 43);
    let batch = PointBatch::from_points(points.clone());
    let vp = Viewport::square_pixels(extent, 256);

    let mut group = c.benchmark_group("multi_constraint");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        let polys: Vec<canvas_geom::Polygon> = (0..k)
            .map(|i| canvas_datagen::star_polygon(&mbr, 64, 0.5, 100 + i as u64))
            .collect();

        group.bench_with_input(BenchmarkId::new("canvas", k), &k, |b, _| {
            b.iter(|| {
                let mut dev = Device::nvidia();
                select_points_multi(&mut dev, vp, &batch, &polys, MultiPolygon::Disjunction)
                    .records
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_scalar", k), &k, |b, _| {
            b.iter(|| {
                canvas_baseline::select_scalar(&points, &polys)
                    .records
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_constraint);
criterion_main!(benches);
