//! Criterion bench for E1/E2 (Figure 9 a,b): polygonal selection of
//! points, scaling the input size, one constraint polygon. Benches the
//! wall-clock of each approach's software implementation; the modeled
//! device times are produced by the `repro` binary.

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::selection::select_points_in_polygon;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_selection_scaling(c: &mut Criterion) {
    let extent = city_extent();
    let mbr = canvas_geom::BBox::new(
        canvas_geom::Point::new(15.0, 15.0),
        canvas_geom::Point::new(85.0, 85.0),
    );
    let poly = canvas_datagen::star_polygon(&mbr, 64, 0.5, 7);
    let vp = Viewport::square_pixels(extent, 256);

    let mut group = c.benchmark_group("selection_scaling");
    group.sample_size(10);
    for n in [10_000usize, 40_000, 160_000] {
        let points = canvas_datagen::taxi_pickups(&extent, n, 42);
        let batch = PointBatch::from_points(points.clone());

        group.bench_with_input(BenchmarkId::new("canvas", n), &n, |b, _| {
            b.iter(|| {
                let mut dev = Device::nvidia();
                select_points_in_polygon(&mut dev, vp, &batch, &poly)
                    .records
                    .len()
            })
        });
        // The tiled CPU pipeline across thread counts: the speedup curve
        // of the parallel execution mode (flat wall-clock on single-core
        // hosts; the modeled numbers in BENCH_baseline.json carry the
        // multi-core trajectory there).
        for threads in [1usize, 2, 4, 8] {
            let label = format!("{n}/t{threads}");
            group.bench_with_input(BenchmarkId::new("canvas_cpu", &label), &threads, |b, &t| {
                b.iter(|| {
                    let mut dev = Device::cpu_parallel(t);
                    select_points_in_polygon(&mut dev, vp, &batch, &poly)
                        .records
                        .len()
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("cpu_scalar", n), &n, |b, _| {
            b.iter(|| {
                canvas_baseline::select_scalar(&points, std::slice::from_ref(&poly))
                    .records
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("gpu_baseline", n), &n, |b, _| {
            b.iter(|| {
                let mut dev = Device::nvidia();
                canvas_baseline::select_gpu_baseline(&mut dev, &points, std::slice::from_ref(&poly))
                    .records
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection_scaling);
criterion_main!(benches);
