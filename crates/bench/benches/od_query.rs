//! Criterion bench for E10 (Section 4.6): origin–destination selection
//! (two chained polygonal constraints) vs a scalar two-predicate scan.

use canvas_bench::city_extent;
use canvas_core::queries::od::select_od;
use canvas_core::Device;
use canvas_geom::{BBox, Point};
use canvas_raster::Viewport;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_od(c: &mut Criterion) {
    let extent = city_extent();
    let vp = Viewport::square_pixels(extent, 256);
    let q1 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(55.0, 55.0)),
        48,
        0.4,
        49,
    );
    let q2 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(45.0, 45.0), Point::new(90.0, 90.0)),
        48,
        0.4,
        50,
    );

    let mut group = c.benchmark_group("od_query");
    group.sample_size(10);
    for n in [10_000usize, 40_000] {
        let trips = canvas_datagen::generate_trips(&extent, n, 8, 51);
        let batch = trips.od_batch();
        group.bench_with_input(BenchmarkId::new("canvas", n), &n, |b, _| {
            b.iter(|| {
                let mut dev = Device::nvidia();
                select_od(&mut dev, vp, &batch, &q1, &q2).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_scan", n), &n, |b, _| {
            b.iter(|| {
                (0..trips.len())
                    .filter(|&i| {
                        q1.contains_closed(trips.pickups[i])
                            && q2.contains_closed(trips.dropoffs[i])
                    })
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_od);
criterion_main!(benches);
