//! Criterion bench for E5 (Figure 10): fixed input, varying constraint
//! polygon (selectivity / vertex complexity). The baseline's cost is
//! linear in the polygon's vertex count; the canvas cost is not.

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::selection::select_points_in_polygon;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_vary_polygon(c: &mut Criterion) {
    let extent = city_extent();
    let n = 40_000usize;
    let points = canvas_datagen::taxi_pickups(&extent, n, 44);
    let batch = PointBatch::from_points(points.clone());
    let vp = Viewport::square_pixels(extent, 256);
    let mbr = canvas_geom::BBox::new(
        canvas_geom::Point::new(10.0, 10.0),
        canvas_geom::Point::new(90.0, 90.0),
    );

    let mut group = c.benchmark_group("vary_polygon");
    group.sample_size(10);
    for (target, verts) in [(0.05, 32usize), (0.35, 96), (0.80, 384)] {
        let poly = canvas_datagen::calibrated_polygon(&mbr, &points, target, verts, 17);
        let label = format!("sel{:02}_v{}", (target * 100.0) as u32, verts);

        group.bench_with_input(BenchmarkId::new("canvas", &label), &label, |b, _| {
            b.iter(|| {
                let mut dev = Device::nvidia();
                select_points_in_polygon(&mut dev, vp, &batch, &poly)
                    .records
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_scalar", &label), &label, |b, _| {
            b.iter(|| {
                canvas_baseline::select_scalar(&points, std::slice::from_ref(&poly))
                    .records
                    .len()
            })
        });
        // Tiled-pipeline thread sweep (see selection_scaling for the
        // rationale).
        for threads in [1usize, 2, 4, 8] {
            let tlabel = format!("{label}/t{threads}");
            group.bench_with_input(
                BenchmarkId::new("canvas_cpu", &tlabel),
                &threads,
                |b, &t| {
                    b.iter(|| {
                        let mut dev = Device::cpu_parallel(t);
                        select_points_in_polygon(&mut dev, vp, &batch, &poly)
                            .records
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_vary_polygon);
criterion_main!(benches);
