//! Criterion benches for the design ablations (DESIGN.md A1/A3):
//!
//! * A1 — conservative vs standard rasterization: the cost of the
//!   exactness machinery (boundary pass + refinement),
//! * A3 — fused instanced constraint draw vs unfused per-polygon blends.

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::selection::{points_in_polygons_plan, MultiPolygon};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn bench_conservative(c: &mut Criterion) {
    let extent = city_extent();
    let vp = Viewport::square_pixels(extent, 256);
    let mbr = canvas_geom::BBox::new(
        canvas_geom::Point::new(15.0, 15.0),
        canvas_geom::Point::new(85.0, 85.0),
    );
    let poly = canvas_datagen::star_polygon(&mbr, 128, 0.5, 52);
    let table: AreaSource = Arc::new(vec![poly]);

    let mut group = c.benchmark_group("ablation_conservative");
    group.sample_size(10);
    group.bench_function("conservative_render", |b| {
        b.iter(|| {
            let mut dev = Device::nvidia();
            canvas_core::source::render_polygon_with(
                &mut dev,
                vp,
                &table,
                0,
                Texel::area(1, 1.0, 0.0),
                true,
            )
            .non_null_count()
        })
    });
    group.bench_function("standard_render", |b| {
        b.iter(|| {
            let mut dev = Device::nvidia();
            canvas_core::source::render_polygon_with(
                &mut dev,
                vp,
                &table,
                0,
                Texel::area(1, 1.0, 0.0),
                false,
            )
            .non_null_count()
        })
    });
    group.finish();
}

fn bench_blend_fusion(c: &mut Criterion) {
    let extent = city_extent();
    let vp = Viewport::square_pixels(extent, 256);
    let mbr = canvas_geom::BBox::new(
        canvas_geom::Point::new(15.0, 15.0),
        canvas_geom::Point::new(85.0, 85.0),
    );
    let points = Arc::new(PointBatch::from_points(canvas_datagen::taxi_pickups(
        &extent, 10_000, 53,
    )));

    let mut group = c.benchmark_group("ablation_blend_fusion");
    group.sample_size(10);
    for k in [2usize, 8] {
        let polys: Vec<canvas_geom::Polygon> = (0..k)
            .map(|i| canvas_datagen::star_polygon(&mbr, 48, 0.5, 200 + i as u64))
            .collect();
        let plan = points_in_polygons_plan(points.clone(), &polys, MultiPolygon::Disjunction);

        group.bench_with_input(BenchmarkId::new("unfused", k), &k, |b, _| {
            let plan = plan.clone();
            b.iter(|| {
                let mut dev = Device::nvidia();
                plan.eval(&mut dev, vp).point_records().len()
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", k), &k, |b, _| {
            let plan = canvas_core::algebra::optimize(plan.clone());
            b.iter(|| {
                let mut dev = Device::nvidia();
                plan.eval(&mut dev, vp).point_records().len()
            })
        });
    }
    group.finish();
}

/// Refinement-kernel ablation: linear edge walk vs BVH ray cast (the
/// paper's Section 5 ray-tracing alternative) across polygon complexity.
fn bench_refinement_kernels(c: &mut Criterion) {
    let extent = city_extent();
    let mbr = canvas_geom::BBox::new(
        canvas_geom::Point::new(15.0, 15.0),
        canvas_geom::Point::new(85.0, 85.0),
    );
    let points = canvas_datagen::taxi_pickups(&extent, 10_000, 54);

    let mut group = c.benchmark_group("ablation_refinement");
    group.sample_size(10);
    for verts in [64usize, 512] {
        let poly = canvas_datagen::star_polygon(&mbr, verts, 0.5, 55);
        group.bench_with_input(BenchmarkId::new("linear_pip", verts), &verts, |b, _| {
            b.iter(|| {
                canvas_baseline::select_scalar(&points, std::slice::from_ref(&poly))
                    .records
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bvh_raycast", verts), &verts, |b, _| {
            b.iter(|| {
                canvas_baseline::select_scalar_bvh(&points, std::slice::from_ref(&poly))
                    .records
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_conservative,
    bench_blend_fusion,
    bench_refinement_kernels
);
criterion_main!(benches);
