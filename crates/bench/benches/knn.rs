//! Criterion bench for E8 (Section 4.4): kNN via the circle-ladder
//! canvas workflow vs a brute-force scan.

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::knn::knn;
use canvas_geom::Point;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_knn(c: &mut Criterion) {
    let extent = city_extent();
    let n = 40_000usize;
    let points = canvas_datagen::taxi_pickups(&extent, n, 47);
    let batch = PointBatch::from_points(points.clone());
    let vp = Viewport::square_pixels(extent, 256);
    let x = Point::new(45.0, 55.0);

    let mut group = c.benchmark_group("knn");
    group.sample_size(10);
    for k in [1usize, 16, 256] {
        group.bench_with_input(BenchmarkId::new("canvas_ladder", k), &k, |b, &k| {
            b.iter(|| {
                let mut dev = Device::nvidia();
                knn(&mut dev, vp, &batch, x, k).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("brute_force", k), &k, |b, &k| {
            b.iter(|| {
                let mut d: Vec<(f64, u32)> = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.dist_sq(x), i as u32))
                    .collect();
                d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                d.truncate(k);
                d.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
