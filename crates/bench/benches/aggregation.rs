//! Criterion bench for E6 (Section 5.2): spatial aggregation plans —
//! the fused RasterJoin-style canvas plan, the literal (unfused) algebra
//! plan, and the traditional join-then-aggregate baseline.

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::aggregate::{aggregate_join_blend_plan, aggregate_join_rasterjoin};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

fn bench_aggregation(c: &mut Criterion) {
    let extent = city_extent();
    let n = 40_000usize;
    let trips = canvas_datagen::generate_trips(&extent, n, 8, 45);
    let batch = PointBatch::with_weights(trips.pickups.clone(), trips.fares.clone());
    let vp = Viewport::square_pixels(extent, 256);

    let mut group = c.benchmark_group("aggregation");
    group.sample_size(10);
    for zones_n in [10usize, 40] {
        let zones: AreaSource = Arc::new(canvas_datagen::neighborhoods_detailed(
            &extent, zones_n, 150, 46,
        ));

        group.bench_with_input(
            BenchmarkId::new("rasterjoin_fused", zones_n),
            &zones_n,
            |b, _| {
                b.iter(|| {
                    let mut dev = Device::nvidia();
                    aggregate_join_rasterjoin(&mut dev, vp, &batch, &zones)
                        .counts
                        .iter()
                        .sum::<u64>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blend_plan_unfused", zones_n),
            &zones_n,
            |b, _| {
                b.iter(|| {
                    let mut dev = Device::nvidia();
                    aggregate_join_blend_plan(&mut dev, vp, &batch, &zones)
                        .counts
                        .iter()
                        .sum::<u64>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("join_then_aggregate", zones_n),
            &zones_n,
            |b, _| {
                b.iter(|| {
                    canvas_baseline::aggregate_join_baseline(&trips.pickups, &trips.fares, &zones)
                        .0
                        .iter()
                        .sum::<u64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
