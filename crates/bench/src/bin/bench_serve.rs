//! Emits `BENCH_serve.json`: the serving-engine benchmark. Drives N
//! client threads of mixed selection / heatmap / choropleth /
//! aggregation queries over a pan/zoom viewport walk, three ways:
//!
//! 1. **global lock** — one `Device` behind a `Mutex`, whole queries
//!    serialize (the pre-engine status quo),
//! 2. **engine, cache off** — fair-share pass interleaving + in-flight
//!    dedup only (isolates the scheduler's contribution),
//! 3. **engine** — the full subsystem incl. the budgeted canvas cache
//!    (the paper's interactive pan/zoom reuse case).
//!
//! Records throughput, cache traffic, per-client fairness (Jain index
//! over batch completion times), scheduler grant accounting, and the
//! startup calibration of `Policy::min_parallel_items`.
//!
//! A fourth section measures **cross-query subplan sharing**: a mixed
//! selection + heatmap workload in which every root plan is distinct
//! (the whole-plan cache is useless) but plans share interior
//! canvases (`C_P`, `C_Q`, the blended density canvas). It runs the
//! identical job list with sharing off and on, records both
//! throughputs and the sharing counters, and gates `subplan_hits > 0`
//! with a bit-identity spot check against `Device::cpu`.
//!
//! A fifth section drives the **promoted query classes** — knn,
//! voronoi, OD selection / flow matrix, spatio-temporal window / time
//! series, skyline, hull — through one engine as a mixed workload,
//! asserts cache-hit identity per class (the re-ask returns the
//! *identical* shared allocation), and records per-class latency
//! percentiles (`class_<label>_p50_secs` …) from the engine's
//! per-class service histograms.
//!
//! A sixth section measures **streaming ingest**: a `VersionedTable`
//! fed deterministic trip-feed append batches, each generation served
//! by a cache-off engine (full re-render every time) and by a cached
//! engine (incremental refresh: the predecessor canvas patched with
//! the delta's dirty tiles). Per-generation bit-identity is asserted,
//! and the record carries `ingest_incremental_speedup` (gated ≥ 2× on
//! hosts with ≥ 8 cores), `ingest_appends`, `incremental_refreshes`,
//! `dirty_tiles_redrawn`, and `full_renders_avoided`. Run with:
//!
//! ```text
//! cargo run --release -p canvas-bench --bin bench_serve \
//!     [-- output.json] [--smoke] [--trace-out trace.json] \
//!     [--report-out report.json]
//! ```
//!
//! With `--trace-out` the run replays a short slice of the workload
//! with span tracing enabled and writes a Chrome-trace-event JSON file
//! loadable in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`. The
//! traced slice runs outside every timed window; the timed arms always
//! run with tracing disabled, and the JSON records the measured cost of
//! a disabled span (`obs_disabled_span_ns`), the span count per query
//! (`obs_spans_per_query`), and their product as a fraction of mean
//! service time (`obs_overhead_pct`, gated ≤ 3%).
//!
//! The same section prices the **always-on flight recorder**: the cost
//! of a span with the per-thread rings recording but tracing off
//! (`flight_span_ns`), and its marginal overhead over the inert guard
//! as a fraction of mean service time (`flight_overhead_pct`, gated
//! ≤ 3% alongside `obs_overhead_pct`). A tiny-threshold engine then
//! exercises tail sampling end to end and the recorder counters land
//! in the JSON (`slow_captured`, `flight_recycled`, `flight_dropped`).
//! With `--report-out` the first captured query's measured EXPLAIN
//! ANALYZE report is written as JSON for downstream validation.
//!
//! Gates: the cache must see hits everywhere; the subplan workload
//! must see subplan hits everywhere; on hosts with ≥ 4 cores the full
//! engine must beat the global lock by ≥ 1.5× and client fairness must
//! stay ≥ 0.5 (on smaller hosts the numbers are recorded for the
//! trajectory but not asserted, like `bench_baseline`'s wall gate).

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::spatiotemporal::TemporalPoints;
use canvas_datagen as datagen;
use canvas_engine::{EngineConfig, Query, QueryEngine, Served};
use canvas_geom::{BBox, Point};
use canvas_obs as obs;

const CLIENTS: usize = 4;
const WORKERS: usize = 4;

struct Workload {
    queries: Vec<Query>,
    viewports: Vec<Viewport>,
    per_client: usize,
}

impl Workload {
    /// The (query, viewport) pair client `c` submits at step `s`: a
    /// deterministic pan/zoom walk in which clients revisit viewports
    /// and share query shapes — the interactive reuse pattern.
    fn pick(&self, client: usize, step: usize) -> (&Query, Viewport) {
        let qi = (client + step) % self.queries.len();
        let vi = (client * 2 + step / 2) % self.viewports.len();
        (&self.queries[qi], self.viewports[vi])
    }

    fn total(&self) -> usize {
        CLIENTS * self.per_client
    }
}

fn build_workload(smoke: bool) -> Workload {
    let extent = city_extent();
    let n_points = if smoke { 50_000 } else { 200_000 };
    let resolution = if smoke { 128 } else { 256 };
    let per_client = if smoke { 16 } else { 40 };
    let data = Arc::new(PointBatch::from_points(datagen::taxi_pickups(
        &extent, n_points, 42,
    )));
    let zones: AreaSource = Arc::new(datagen::neighborhoods(&extent, 16, 11));
    let district = datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0)),
        64,
        0.45,
        7,
    );
    let corridor = datagen::star_polygon(
        &BBox::new(Point::new(35.0, 5.0), Point::new(95.0, 55.0)),
        32,
        0.3,
        9,
    );
    let queries = vec![
        Query::SelectPoints {
            data: data.clone(),
            q: district.clone(),
        },
        Query::SelectionHeatmap {
            data: data.clone(),
            q: district.clone(),
        },
        Query::PolygonDensity {
            table: zones.clone(),
            q: corridor.clone(),
        },
        Query::AggregateByZone {
            data: data.clone(),
            zones: zones.clone(),
        },
        Query::SelectionHeatmap {
            data: data.clone(),
            q: corridor,
        },
    ];
    // A zoom ladder plus pans: 4 distinct viewports revisited often.
    let viewports = vec![
        Viewport::square_pixels(extent, resolution),
        Viewport::square_pixels(
            BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 70.0)),
            resolution,
        ),
        Viewport::square_pixels(
            BBox::new(Point::new(40.0, 35.0), Point::new(90.0, 85.0)),
            resolution,
        ),
        Viewport::square_pixels(extent, resolution / 2),
    ];
    Workload {
        queries,
        viewports,
        per_client,
    }
}

/// The heatmap as an algebra plan sharing the selection's interior
/// blend: `V[log](M[texel](B[⊙](C_P, C_Q)))` — same shape the engine's
/// subplan-sharing tests use.
fn heatmap_plan(data: &Arc<PointBatch>, q: &canvas_geom::Polygon) -> Query {
    Query::Plan(Expr::value_transform(
        "log",
        Arc::new(|_, mut t: Texel| {
            if let Some(mut p) = t.get(0) {
                p.v2 = (1.0 + p.v1).ln();
                t.set(0, p);
            }
            t
        }),
        Expr::mask(
            MaskSpec::Texel("point ∧ area", Arc::new(|t: &Texel| t.has(0) && t.has(2))),
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data.clone()),
                Expr::query_polygon(q.clone(), 1),
            ),
        ),
    ))
}

/// The subplan-sharing job list: every root plan distinct (no
/// whole-plan reuse possible), heavy interior overlap. For each
/// (polygon, viewport) pair three kinds — algebra selection, algebra
/// heatmap, fused-chain heatmap — share `C_P` (per viewport, across
/// all polygons), `C_Q`, and the blended density canvas.
fn build_subplan_jobs(smoke: bool, data: &Arc<PointBatch>) -> Vec<(Query, Viewport)> {
    let n_polys = if smoke { 3 } else { 6 };
    let resolution = if smoke { 128 } else { 256 };
    let extent = city_extent();
    let polys: Vec<canvas_geom::Polygon> = (0..n_polys)
        .map(|i| {
            let inset = 4.0 + 3.0 * i as f64;
            datagen::star_polygon(
                &BBox::new(
                    Point::new(inset, inset),
                    Point::new(100.0 - inset, 100.0 - inset),
                ),
                24,
                0.3 + 0.04 * i as f64,
                5 + i,
            )
        })
        .collect();
    let viewports = [
        Viewport::square_pixels(extent, resolution),
        Viewport::square_pixels(
            BBox::new(Point::new(20.0, 20.0), Point::new(70.0, 70.0)),
            resolution,
        ),
        Viewport::square_pixels(extent, resolution / 2),
    ];
    let mut jobs = Vec::new();
    for q in &polys {
        for vp in &viewports {
            jobs.push((
                Query::SelectPoints {
                    data: data.clone(),
                    q: q.clone(),
                },
                *vp,
            ));
            jobs.push((heatmap_plan(data, q), *vp));
            jobs.push((
                Query::SelectionHeatmap {
                    data: data.clone(),
                    q: q.clone(),
                },
                *vp,
            ));
        }
    }
    jobs
}

/// One canonical query per promoted class (knn §4.4, voronoi / skyline /
/// hull §4.5, OD §4.6, spatio-temporal §6) over shared synthetic
/// datasets, with the viewport each runs on. Labels match
/// `Query::label()` — the JSON field names derive from them.
fn build_promoted_jobs(smoke: bool) -> Vec<(&'static str, Query, Viewport)> {
    let extent = city_extent();
    let resolution = if smoke { 128 } else { 256 };
    let n_points = if smoke { 20_000 } else { 100_000 };
    let n_trips = if smoke { 10_000 } else { 50_000 };
    let vp = Viewport::square_pixels(extent, resolution);
    let data = Arc::new(PointBatch::from_points(datagen::taxi_pickups(
        &extent, n_points, 77,
    )));
    let trips_src = datagen::generate_trips(&extent, n_trips, 24, 78);
    let trips = Arc::new(trips_src.od_batch());
    let temporal = Arc::new(TemporalPoints::new(
        trips_src.pickups.clone(),
        trips_src.time_slots.iter().map(|&t| u32::from(t)).collect(),
    ));
    let sites = Arc::new(datagen::jittered_sites(&extent, 12, 5));
    let skyline_sites = Arc::new(datagen::jittered_sites(&extent, 3, 6));
    let zones: AreaSource = Arc::new(datagen::neighborhoods(&extent, 4, 11));
    let district = datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(70.0, 70.0)),
        24,
        0.35,
        3,
    );
    let corridor = datagen::star_polygon(
        &BBox::new(Point::new(30.0, 30.0), Point::new(95.0, 95.0)),
        24,
        0.3,
        4,
    );
    // Small pocket for the skyline: its dominance test is quadratic in
    // the selected count, so the constraint keeps selectivity low.
    let pocket = datagen::star_polygon(
        &BBox::new(Point::new(35.0, 35.0), Point::new(65.0, 65.0)),
        16,
        0.3,
        8,
    );
    vec![
        (
            "knn",
            Query::Knn {
                data: data.clone(),
                x: Point::new(50.0, 50.0),
                k: 32,
            },
            vp,
        ),
        ("voronoi", Query::Voronoi { sites }, vp),
        (
            "select_od",
            Query::SelectOd {
                trips: trips.clone(),
                q1: district.clone(),
                q2: corridor.clone(),
            },
            vp,
        ),
        (
            "od_flow_matrix",
            Query::OdFlowMatrix {
                trips,
                origin_zones: zones.clone(),
                dest_zones: zones,
            },
            vp,
        ),
        (
            "spatiotemporal_window",
            Query::SpatioTemporalWindow {
                data: temporal.clone(),
                q: district.clone(),
                t0: 0,
                t1: 12,
            },
            vp,
        ),
        (
            "region_time_series",
            Query::RegionTimeSeries {
                data: temporal,
                q: district,
                t0: 0,
                t1: 24,
                windows: 8,
            },
            vp,
        ),
        (
            "skyline",
            Query::Skyline {
                data: data.clone(),
                constraint: pocket,
                sites: skyline_sites,
            },
            vp,
        ),
        ("hull", Query::Hull { data, q: corridor }, vp),
    ]
}

/// Drives the job list round-robin across CLIENTS threads (adjacent
/// jobs — the members of a sharing pair — land on different clients,
/// so in-flight subscription and shared-cache hits both occur).
/// Returns the wall seconds.
fn run_jobs(engine: &QueryEngine, jobs: &[(Query, Viewport)]) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            s.spawn(move || {
                for (i, (q, vp)) in jobs.iter().enumerate() {
                    if i % CLIENTS == client {
                        let resp = engine.execute(q, *vp).expect("served");
                        // Kind-neutral consumption: promoted classes
                        // return ids / matrices / series, not canvases.
                        std::hint::black_box(resp.result.size_bytes());
                    }
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Per-client batch completion seconds → (wall, per_client, jain).
fn run_clients(
    work: &Arc<Workload>,
    serve: impl Fn(usize, &Query, Viewport) + Sync,
) -> (f64, Vec<f64>) {
    let t0 = Instant::now();
    let done: Vec<f64> = std::thread::scope(|s| {
        let serve = &serve;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let work = Arc::clone(work);
                s.spawn(move || {
                    let t_start = Instant::now();
                    for step in 0..work.per_client {
                        let (q, vp) = work.pick(client, step);
                        serve(client, q, vp);
                    }
                    t_start.elapsed().as_secs_f64()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    (t0.elapsed().as_secs_f64(), done)
}

fn jain(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Cost of one `obs::span` call under the *current* recording flags.
/// With both tracing and the flight recorder off it prices the inert
/// guard every instrumented site pays (one relaxed atomic load); with
/// the flight recorder on it prices the always-on ring append. Both the
/// ≤ 3% gates are grounded in these measurements, not assumptions.
fn measure_span_cost_ns() -> f64 {
    assert!(!obs::tracing_enabled(), "measure with tracing off");
    const ITERS: u32 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..ITERS {
        let span = obs::span("cost_probe", "bench");
        std::hint::black_box(&span);
        std::hint::black_box(i);
    }
    t0.elapsed().as_nanos() as f64 / f64::from(ITERS)
}

/// Replays a short slice of the pan/zoom workload — plus one query per
/// promoted class — with tracing enabled and returns the number of
/// queries replayed. Uses a fresh engine so the slice mixes computed
/// queries with cache hits (a warm engine would serve everything from
/// cache and undercount spans per query), and so every promoted class
/// computes and emits its per-class span (knn, voronoi, …) into the
/// trace. Runs outside every timed window; callers write the sink
/// afterwards.
fn run_traced_slice(work: &Arc<Workload>, promoted: &[(&'static str, Query, Viewport)]) -> usize {
    let engine = QueryEngine::with_config(EngineConfig {
        threads: WORKERS,
        max_concurrent: CLIENTS,
        max_queue: 64,
        cache_budget_bytes: 256 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    });
    let engine = &engine;
    let steps = work.per_client.min(4);
    obs::sink().clear();
    obs::set_tracing(true);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let work = Arc::clone(work);
            s.spawn(move || {
                for step in 0..steps {
                    let (q, vp) = work.pick(client, step);
                    let resp = engine.execute(q, vp).expect("served");
                    std::hint::black_box(resp.canvas().non_null_count());
                }
            });
        }
    });
    for (_, q, vp) in promoted {
        let resp = engine.execute(q, *vp).expect("served");
        std::hint::black_box(resp.result.size_bytes());
    }
    obs::set_tracing(false);
    CLIENTS * steps + promoted.len()
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut smoke = false;
    let mut trace_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--trace-out" {
            trace_out = Some(args.next().expect("--trace-out takes a path"));
        } else if let Some(path) = arg.strip_prefix("--trace-out=") {
            trace_out = Some(path.to_string());
        } else if arg == "--report-out" {
            report_out = Some(args.next().expect("--report-out takes a path"));
        } else if let Some(path) = arg.strip_prefix("--report-out=") {
            report_out = Some(path.to_string());
        } else {
            out_path = arg;
        }
    }
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let work = Arc::new(build_workload(smoke));
    let total = work.total();

    // --- 1. Global-lock baseline: one device, whole-query mutex. ---
    let lock_dev = Mutex::new(Device::cpu_parallel(WORKERS));
    let (lock_wall, _) = run_clients(&work, |_, q, vp| {
        let prepared = q.prepare();
        let mut dev = lock_dev.lock().unwrap();
        let result = prepared.execute(&mut dev, vp);
        std::hint::black_box(result.canvas().non_null_count());
    });
    let lock_qps = total as f64 / lock_wall;

    // --- 2. Engine with the cache disabled: scheduler + dedup only. ---
    let engine_nc = QueryEngine::with_config(EngineConfig {
        threads: WORKERS,
        max_concurrent: CLIENTS,
        max_queue: 64,
        cache_budget_bytes: 0,
        calibrate: false,
        // Scheduler-only configuration: subplan sharing stays off so
        // this arm keeps isolating the fair-share gate's contribution.
        share_subplans: false,
        ..EngineConfig::default()
    });
    let (nc_wall, _) = run_clients(&work, |_, q, vp| {
        let resp = engine_nc.execute(q, vp).expect("served");
        std::hint::black_box(resp.canvas().non_null_count());
    });
    let nocache_qps = total as f64 / nc_wall;

    // --- 3. The full engine: fair share + dedup + budgeted cache. ---
    let engine = QueryEngine::with_config(EngineConfig {
        threads: WORKERS,
        max_concurrent: CLIENTS,
        max_queue: 64,
        cache_budget_bytes: 256 << 20,
        calibrate: true,
        share_subplans: true,
        ..EngineConfig::default()
    });
    // Result-identity spot check against the locked device (the full
    // bit-identity harness lives in the engine's stress tests).
    {
        let (q, vp) = work.pick(0, 0);
        let resp = engine.execute(q, vp).expect("served");
        let mut dev = lock_dev.lock().unwrap();
        let want = q.prepare().execute(&mut dev, vp);
        assert_eq!(
            resp.canvas().texels(),
            want.canvas().texels(),
            "engine result must be bit-identical to the locked device's"
        );
    }
    let (engine_wall, client_secs) = run_clients(&work, |_, q, vp| {
        let resp = engine.execute(q, vp).expect("served");
        std::hint::black_box(resp.canvas().non_null_count());
    });
    // The spot check ran outside the timed window (and warmed one cache
    // entry — the lock baseline got the same warm-up via the identity
    // probe's locked evaluation).
    let engine_qps = total as f64 / engine_wall;

    let speedup_vs_lock = engine_qps / lock_qps;
    let nocache_speedup_vs_lock = nocache_qps / lock_qps;
    let fairness = jain(&client_secs);
    let m = engine.metrics();
    let cs = engine.cache_stats();
    let ss = engine.scheduler_stats();
    let cal = engine.calibration();
    let quantum = engine.shared().pool().policy().pass_quantum;

    // --- 4. Subplan sharing: identical all-distinct-roots job list,
    //        sharing off vs on. ---
    let data = match &work.queries[0] {
        Query::SelectPoints { data, .. } => data.clone(),
        _ => unreachable!("workload starts with the selection"),
    };
    let jobs = build_subplan_jobs(smoke, &data);
    let mk_subplan_engine = |share: bool| {
        QueryEngine::with_config(EngineConfig {
            threads: WORKERS,
            max_concurrent: CLIENTS,
            max_queue: 64,
            cache_budget_bytes: 256 << 20,
            calibrate: false,
            share_subplans: share,
            ..EngineConfig::default()
        })
    };
    // ABBA ordering with a fresh engine per run and best-of per arm:
    // on a quota-throttled container, whichever arm runs later in a
    // hot process can be penalized 2-3x regardless of configuration; a
    // single ordered pair would misattribute that to one arm.
    let mut on_wall = f64::INFINITY;
    let mut off_wall = f64::INFINITY;
    let mut engine_on = None;
    for order in [[true, false], [false, true]] {
        for share in order {
            let engine = mk_subplan_engine(share);
            let wall = run_jobs(&engine, &jobs);
            if share {
                on_wall = on_wall.min(wall);
                engine_on = Some(engine);
            } else {
                off_wall = off_wall.min(wall);
                assert_eq!(
                    engine.metrics().subplan_hits,
                    0,
                    "sharing-off engine must not touch the subplan path"
                );
            }
        }
    }
    let engine_on = engine_on.expect("the ABBA loop ran a sharing arm");
    let subplan_qps_on = jobs.len() as f64 / on_wall;
    let subplan_qps_off = jobs.len() as f64 / off_wall;
    let subplan_speedup = subplan_qps_on / subplan_qps_off;
    // Shared-intermediate results must be bit-identical to Device::cpu:
    // re-ask the first selection+heatmap pair (now served from the
    // sharing cache) against fresh sequential evaluation.
    for (q, vp) in &jobs[..2] {
        let resp = engine_on.execute(q, *vp).expect("served");
        let mut dev = Device::cpu();
        let want = q.prepare().execute(&mut dev, *vp);
        assert_eq!(
            resp.canvas().texels(),
            want.canvas().texels(),
            "shared-intermediate result must be bit-identical to Device::cpu"
        );
        assert_eq!(resp.canvas().cover(), want.canvas().cover());
    }
    let sm = engine_on.metrics();
    let sc = engine_on.cache_stats();

    // --- 5. Promoted query classes: the six non-canvas descriptors as
    //        a mixed workload through one engine, with per-class
    //        latency percentiles and a cache-hit identity check. ---
    let promoted = build_promoted_jobs(smoke);
    const PROMOTED_REPS: usize = 3;
    let promoted_engine = QueryEngine::with_config(EngineConfig {
        threads: WORKERS,
        max_concurrent: CLIENTS,
        max_queue: 64,
        cache_budget_bytes: 256 << 20,
        calibrate: false,
        share_subplans: true,
        ..EngineConfig::default()
    });
    let promoted_jobs: Vec<(Query, Viewport)> = (0..PROMOTED_REPS)
        .flat_map(|_| promoted.iter().map(|(_, q, vp)| (q.clone(), *vp)))
        .collect();
    let promoted_wall = run_jobs(&promoted_engine, &promoted_jobs);
    let promoted_qps = promoted_jobs.len() as f64 / promoted_wall;
    // Cache-hit identity per class: the warm re-ask must return the
    // *identical* shared allocation, not an equal copy.
    for (label, q, vp) in &promoted {
        let a = promoted_engine.execute(q, *vp).expect("served");
        let b = promoted_engine.execute(q, *vp).expect("served");
        assert_eq!(b.served, Served::CacheHit, "{label}: warm re-ask must hit");
        assert!(
            a.result.ptr_eq(&b.result),
            "{label}: cache hit must return the identical allocation"
        );
    }
    let pm = promoted_engine.metrics();
    let pcs = promoted_engine.cache_stats();

    // --- 6. Streaming ingest: a versioned table fed append batches
    //        from the deterministic trip feed, served two ways per
    //        generation — full re-render (cache-off engine: the refresh
    //        probe always misses) vs incremental refresh (the cached
    //        predecessor canvas is patched with the delta's dirty
    //        tiles). Bit-identity is asserted per generation. ---
    // A large standing table and small feed ticks — the live-ingest
    // shape where maintenance pays: each delta is a fraction of a
    // percent of the data a full render would re-draw.
    let ingest_points = if smoke { 40_000 } else { 160_000 };
    let ingest_feed_points = if smoke { 2_000 } else { 5_000 };
    const INGEST_APPENDS: usize = 6;
    let ingest_resolution = if smoke { 128 } else { 256 };
    let ingest_vp = Viewport::square_pixels(city_extent(), ingest_resolution);
    let feed = datagen::trip_feed(
        &city_extent(),
        ingest_feed_points,
        INGEST_APPENDS as u16,
        91,
    );
    let table = VersionedTable::new(
        "bench-live",
        city_extent(),
        PointBatch::from_points(datagen::taxi_pickups(&city_extent(), ingest_points, 91)),
    );
    let mk_ingest_engine = |budget: usize| {
        QueryEngine::with_config(EngineConfig {
            threads: WORKERS,
            max_concurrent: CLIENTS,
            max_queue: 64,
            cache_budget_bytes: budget,
            calibrate: false,
            share_subplans: true,
            ..EngineConfig::default()
        })
    };
    let ingest_engine = mk_ingest_engine(256 << 20);
    let ingest_engine_full = mk_ingest_engine(0);
    // Warm generation 0 into the incremental arm's cache; every later
    // generation must then be served by patching its predecessor.
    let warm = ingest_engine
        .execute(
            &Query::LiveHeatmap {
                snapshot: table.snapshot(),
            },
            ingest_vp,
        )
        .expect("served");
    assert_eq!(warm.served, Served::Computed);
    let mut ingest_full_wall = 0.0;
    let mut ingest_incr_wall = 0.0;
    for g in 1..=INGEST_APPENDS {
        ingest_engine.ingest_append(&table, &feed.batch(g - 1));
        let snapshot = table.snapshot();
        let t0 = Instant::now();
        let full = ingest_engine_full
            .execute(
                &Query::LiveHeatmap {
                    snapshot: snapshot.clone(),
                },
                ingest_vp,
            )
            .expect("served");
        ingest_full_wall += t0.elapsed().as_secs_f64();
        assert_eq!(full.served, Served::Computed);
        let t0 = Instant::now();
        let incr = ingest_engine
            .execute(&Query::LiveHeatmap { snapshot }, ingest_vp)
            .expect("served");
        ingest_incr_wall += t0.elapsed().as_secs_f64();
        assert_eq!(
            incr.served,
            Served::Incremental,
            "generation {g} must be served by patching the cached predecessor"
        );
        assert_eq!(
            incr.canvas().texels(),
            full.canvas().texels(),
            "patched generation {g} must be bit-identical to the full render"
        );
        assert_eq!(incr.canvas().cover(), full.canvas().cover());
    }
    let ingest_speedup = ingest_full_wall / ingest_incr_wall;
    let im = ingest_engine.metrics();

    // --- 7. Observability cost: disabled-span price, always-on flight
    //        ring price, spans per query, and (optionally) a Perfetto
    //        trace of a replayed slice. Runs after every timed arm so
    //        tracing never touches them. ---
    // Both-off baseline: the flight recorder defaults on, so it must be
    // switched off to price the truly inert span guard.
    obs::set_flight_recording(false);
    let obs_disabled_span_ns = measure_span_cost_ns();
    obs::set_flight_recording(true);
    // Always-on price: what every span site pays in production, where
    // the flight rings record and tracing stays off.
    let flight_span_ns = measure_span_cost_ns();
    let traced_queries = run_traced_slice(&work, &promoted);
    let sink = obs::sink();
    let obs_spans_total = sink.len() as u64 + sink.dropped();
    let obs_spans_per_query = obs_spans_total as f64 / traced_queries as f64;
    // What the instrumentation costs a production (tracing-off) query:
    // every span site still pays the disabled-span check, and the
    // flight recorder additionally pays the ring append.
    let service_mean_ns = m.service.mean_secs() * 1e9;
    let obs_overhead_pct = if service_mean_ns > 0.0 {
        obs_spans_per_query * obs_disabled_span_ns / service_mean_ns * 100.0
    } else {
        0.0
    };
    let flight_overhead_pct = if service_mean_ns > 0.0 {
        obs_spans_per_query * (flight_span_ns - obs_disabled_span_ns).max(0.0) / service_mean_ns
            * 100.0
    } else {
        0.0
    };
    if let Some(path) = &trace_out {
        sink.write_chrome_trace(path).expect("write trace JSON");
        eprintln!(
            "wrote {path}: {} span events over {traced_queries} queries",
            sink.len()
        );
    }
    obs::sink().clear();

    // --- 8. Tail-sampled capture: a tiny-threshold engine promotes
    //        every submission into its slow-query log, proving the
    //        capture path end to end in this process and giving
    //        `--report-out` a measured EXPLAIN ANALYZE report. ---
    let capture_engine = QueryEngine::with_config(EngineConfig {
        threads: WORKERS,
        max_concurrent: CLIENTS,
        max_queue: 64,
        cache_budget_bytes: 64 << 20,
        calibrate: false,
        share_subplans: true,
        slow_query_threshold: std::time::Duration::from_nanos(1),
    });
    for step in 0..2 {
        let (q, vp) = work.pick(0, step);
        let resp = capture_engine.execute(q, vp).expect("served");
        std::hint::black_box(resp.canvas().non_null_count());
    }
    for (_, q, vp) in promoted.iter().take(2) {
        let resp = capture_engine.execute(q, *vp).expect("served");
        std::hint::black_box(resp.result.size_bytes());
    }
    let slow = capture_engine.slow_queries();
    let slow_captured = slow.len() as u64;
    let flight_recycled = obs::flight::recycled();
    let flight_dropped = obs::flight::dropped();
    if let Some(path) = &report_out {
        let entry = slow.first().expect("tiny threshold captured a query");
        std::fs::write(path, entry.report.to_json()).expect("write report JSON");
        eprintln!(
            "wrote {path}: EXPLAIN ANALYZE report for {} ({})",
            entry.label,
            entry.reason.as_str()
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"worker_threads\": {WORKERS},");
    let _ = writeln!(json, "  \"queries_total\": {total},");
    let _ = writeln!(json, "  \"global_lock_qps\": {lock_qps:.2},");
    let _ = writeln!(json, "  \"engine_nocache_qps\": {nocache_qps:.2},");
    let _ = writeln!(json, "  \"engine_qps\": {engine_qps:.2},");
    let _ = writeln!(json, "  \"engine_speedup_vs_lock\": {speedup_vs_lock:.3},");
    let _ = writeln!(
        json,
        "  \"engine_nocache_speedup_vs_lock\": {nocache_speedup_vs_lock:.3},"
    );
    let _ = writeln!(json, "  \"cache_hit_rate\": {:.4},", cs.hit_rate());
    let _ = writeln!(json, "  \"cache_hits\": {},", cs.hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", cs.misses);
    let _ = writeln!(json, "  \"cache_evictions\": {},", cs.evictions);
    let _ = writeln!(json, "  \"cache_resident_bytes\": {},", cs.bytes);
    let _ = writeln!(json, "  \"cache_peak_bytes\": {},", cs.peak_bytes);
    let _ = writeln!(json, "  \"served_computed\": {},", m.computed);
    let _ = writeln!(json, "  \"served_cache_hits\": {},", m.cache_hits);
    let _ = writeln!(json, "  \"served_coalesced\": {},", m.coalesced);
    let _ = writeln!(json, "  \"reuse_rate\": {:.4},", m.reuse_rate());
    let _ = writeln!(json, "  \"subplan_jobs\": {},", jobs.len());
    let _ = writeln!(json, "  \"subplan_qps_sharing_off\": {subplan_qps_off:.2},");
    let _ = writeln!(json, "  \"subplan_qps_sharing_on\": {subplan_qps_on:.2},");
    let _ = writeln!(json, "  \"subplan_sharing_speedup\": {subplan_speedup:.3},");
    let _ = writeln!(json, "  \"subplan_hits\": {},", sm.subplan_hits);
    let _ = writeln!(
        json,
        "  \"subplan_shared_renders_avoided\": {},",
        sm.shared_renders_avoided
    );
    let _ = writeln!(json, "  \"subplan_published\": {},", sm.subplan_published);
    let _ = writeln!(json, "  \"subplan_fallbacks\": {},", sm.subplan_fallbacks);
    let _ = writeln!(
        json,
        "  \"subplan_shared_cache_hit_rate\": {:.4},",
        sc.shared_hit_rate()
    );
    let _ = writeln!(json, "  \"subplan_shared_bytes\": {},", sc.shared_bytes);
    let _ = writeln!(json, "  \"promoted_classes\": {},", promoted.len());
    let _ = writeln!(
        json,
        "  \"promoted_queries_total\": {},",
        promoted_jobs.len()
    );
    let _ = writeln!(json, "  \"promoted_qps\": {promoted_qps:.2},");
    let _ = writeln!(json, "  \"promoted_cache_hits\": {},", pm.cache_hits);
    let _ = writeln!(
        json,
        "  \"promoted_result_entries\": {},",
        pcs.result_entries
    );
    let _ = writeln!(json, "  \"promoted_result_bytes\": {},", pcs.result_bytes);
    for (label, _, _) in &promoted {
        let stats = promoted_engine.class_latency(label);
        let _ = writeln!(json, "  \"class_{label}_count\": {},", stats.count());
        let _ = writeln!(
            json,
            "  \"class_{label}_p50_secs\": {:.6},",
            stats.p50_secs()
        );
        let _ = writeln!(
            json,
            "  \"class_{label}_p95_secs\": {:.6},",
            stats.p95_secs()
        );
        let _ = writeln!(
            json,
            "  \"class_{label}_p99_secs\": {:.6},",
            stats.p99_secs()
        );
    }
    let _ = writeln!(json, "  \"ingest_appends\": {},", im.ingest_appends);
    let _ = writeln!(json, "  \"ingest_full_wall_secs\": {ingest_full_wall:.4},");
    let _ = writeln!(
        json,
        "  \"ingest_incremental_wall_secs\": {ingest_incr_wall:.4},"
    );
    let _ = writeln!(
        json,
        "  \"ingest_incremental_speedup\": {ingest_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"incremental_refreshes\": {},",
        im.incremental_refreshes
    );
    let _ = writeln!(
        json,
        "  \"dirty_tiles_redrawn\": {},",
        im.dirty_tiles_redrawn
    );
    let _ = writeln!(
        json,
        "  \"full_renders_avoided\": {},",
        im.full_renders_avoided
    );
    let _ = writeln!(
        json,
        "  \"scheduler_fairness_jain_clients\": {fairness:.4},"
    );
    let _ = writeln!(json, "  \"scheduler_grants\": {},", ss.grants);
    let _ = writeln!(json, "  \"scheduler_handovers\": {},", ss.handovers);
    let _ = writeln!(
        json,
        "  \"scheduler_contended_grants\": {},",
        ss.contended_grants
    );
    let _ = writeln!(
        json,
        "  \"scheduler_quantum_preemptions\": {},",
        ss.quantum_preemptions
    );
    let _ = writeln!(json, "  \"scheduler_pass_quantum\": {quantum},");
    let _ = writeln!(
        json,
        "  \"calibration_applied\": {},",
        cal.map(|c| c.applied).unwrap_or(false)
    );
    let _ = writeln!(
        json,
        "  \"calibrated_min_parallel_items\": {},",
        cal.map(|c| c.derived_min_parallel_items).unwrap_or(0)
    );
    let _ = writeln!(
        json,
        "  \"calibration_dispatch_ns_per_pass\": {:.0},",
        cal.map(|c| c.dispatch_ns_per_pass).unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "  \"calibration_per_item_ns\": {:.3},",
        cal.map(|c| c.per_item_ns).unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "  \"latency_mean_secs\": {:.6},",
        m.service.mean_secs()
    );
    let _ = writeln!(json, "  \"latency_p50_secs\": {:.6},", m.service.p50_secs());
    let _ = writeln!(json, "  \"latency_p95_secs\": {:.6},", m.service.p95_secs());
    let _ = writeln!(json, "  \"latency_p99_secs\": {:.6},", m.service.p99_secs());
    let _ = writeln!(json, "  \"latency_max_secs\": {:.6},", m.service.max_secs());
    let _ = writeln!(json, "  \"exec_mean_secs\": {:.6},", m.exec.mean_secs());
    let _ = writeln!(json, "  \"exec_p95_secs\": {:.6},", m.exec.p95_secs());
    let _ = writeln!(
        json,
        "  \"queue_wait_mean_secs\": {:.6},",
        m.queue_wait.mean_secs()
    );
    let _ = writeln!(
        json,
        "  \"queue_wait_p95_secs\": {:.6},",
        m.queue_wait.p95_secs()
    );
    let _ = writeln!(
        json,
        "  \"obs_disabled_span_ns\": {obs_disabled_span_ns:.2},"
    );
    let _ = writeln!(json, "  \"obs_spans_per_query\": {obs_spans_per_query:.1},");
    let _ = writeln!(json, "  \"obs_overhead_pct\": {obs_overhead_pct:.4},");
    let _ = writeln!(json, "  \"flight_span_ns\": {flight_span_ns:.2},");
    let _ = writeln!(json, "  \"flight_overhead_pct\": {flight_overhead_pct:.4},");
    let _ = writeln!(json, "  \"slow_captured\": {slow_captured},");
    let _ = writeln!(json, "  \"flight_recycled\": {flight_recycled},");
    let _ = writeln!(json, "  \"flight_dropped\": {flight_dropped}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // --- Gates (recorded everywhere, asserted per the acceptance bar). ---
    assert_eq!(
        m.computed + m.cache_hits + m.coalesced,
        total as u64 + 1, // + the spot check
        "every submission must be served"
    );
    // The pan/zoom walk revisits keys: the cache must carry real load
    // on every host.
    assert!(
        cs.hits > 0 && cs.hit_rate() > 0.2,
        "cache hit rate {:.3} too low for the reuse workload",
        cs.hit_rate()
    );
    // Concurrent clients must actually interleave passes on the pool.
    assert!(
        ss.handovers > 0,
        "fair gate never changed hands under {CLIENTS} concurrent clients"
    );
    // The traced slice must have produced span trees, and the cost of
    // the instrumentation on an untraced query must stay negligible.
    assert!(
        obs_spans_total > 0,
        "the traced replay slice recorded no spans"
    );
    assert!(
        obs_overhead_pct <= 3.0,
        "disabled-tracing span overhead {obs_overhead_pct:.3}% of mean service \
         time exceeds the 3% budget ({obs_spans_per_query:.0} spans/query x \
         {obs_disabled_span_ns:.1} ns)"
    );
    // The always-on flight recorder must stay within the same budget:
    // its marginal cost over the inert guard, per span, per query.
    assert!(
        flight_overhead_pct <= 3.0,
        "flight-recorder overhead {flight_overhead_pct:.3}% of mean service \
         time exceeds the 3% budget ({obs_spans_per_query:.0} spans/query x \
         ({flight_span_ns:.1} - {obs_disabled_span_ns:.1}) ns)"
    );
    // The tiny-threshold engine must have promoted every submission.
    assert!(
        slow_captured >= 4,
        "tail sampling captured only {slow_captured} of the tiny-threshold \
         submissions"
    );
    // Every root in the subplan workload is distinct, so any reuse is
    // subplan-granular: the sharing engine must have seen it.
    assert!(
        sm.subplan_hits > 0,
        "subplan sharing saw no hits on the selection+heatmap mix: {sm:?}"
    );
    // Promoted classes: every submission served, repeats carried by the
    // cache, per-class histograms populated, and the non-canvas slice
    // of the cache byte-accounted.
    assert_eq!(
        pm.computed + pm.cache_hits + pm.coalesced,
        (promoted_jobs.len() + 2 * promoted.len()) as u64,
        "every promoted submission must be served"
    );
    assert!(
        pm.cache_hits >= (promoted.len() * (PROMOTED_REPS - 1)) as u64,
        "promoted repeats must ride the cache: {pm:?}"
    );
    for (label, _, _) in &promoted {
        assert!(
            promoted_engine.class_latency(label).count() >= (PROMOTED_REPS + 2) as u64,
            "class histogram for {label} missing submissions"
        );
    }
    assert!(
        pcs.result_entries >= 6 && pcs.result_bytes > 0,
        "non-canvas results must be resident and byte-accounted: {pcs:?}"
    );
    // Streaming ingest: every append bumped a generation, every bumped
    // generation was served incrementally, and the counters agree.
    assert_eq!(im.ingest_appends, INGEST_APPENDS as u64);
    assert_eq!(im.incremental_refreshes, INGEST_APPENDS as u64);
    assert_eq!(
        im.full_renders_avoided, INGEST_APPENDS as u64,
        "only successful patches may count as avoided renders"
    );
    assert!(
        im.dirty_tiles_redrawn >= 1,
        "in-viewport appends must have dirtied tiles: {im:?}"
    );
    if host_cores >= 8 {
        assert!(
            ingest_speedup >= 2.0,
            "incremental refresh {ingest_incr_wall:.4}s not >= 2x faster than \
             full re-render {ingest_full_wall:.4}s on a {host_cores}-core host"
        );
    } else {
        eprintln!(
            "note: ingest incremental speedup {ingest_speedup:.2}x recorded, \
             gate applies on hosts with >= 8 cores"
        );
    }
    if host_cores >= 4 {
        assert!(
            speedup_vs_lock >= 1.5,
            "engine {engine_qps:.1} qps not >= 1.5x the global lock {lock_qps:.1} qps \
             on a {host_cores}-core host"
        );
        assert!(
            fairness >= 0.5,
            "client fairness (Jain) {fairness:.3} below 0.5 on a {host_cores}-core host"
        );
    } else {
        eprintln!(
            "note: host has {host_cores} core(s); engine speedup {speedup_vs_lock:.2}x and \
             fairness {fairness:.2} recorded, gates apply on hosts with >= 4 cores"
        );
    }
}
