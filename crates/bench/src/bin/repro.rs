//! `repro` — regenerates every figure of the paper's evaluation
//! (Section 6) plus the DESIGN.md ablations, printing paper-style tables
//! and writing CSVs under `results/`.
//!
//! ```text
//! cargo run -p canvas-bench --bin repro --release              # everything
//! cargo run -p canvas-bench --bin repro --release -- fig9a     # one figure
//! cargo run -p canvas-bench --bin repro --release -- --scale 0.2 fig9a
//! ```
//!
//! Input sizes are scaled down ~1000x from the paper's 50M–571M taxi
//! pickups to fit this container; the reported *ratios* (who wins, by
//! how much, how the margin moves) are the reproduction target. Modeled
//! times come from the device cost model (see canvas-raster docs);
//! wall-clock of the software pipeline is printed alongside.

use canvas_bench::*;
use std::collections::BTreeSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a number");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scale F] [fig9a fig9b fig9c fig9d fig10 agg reuse knn od resolution blend]"
                );
                return;
            }
            other => {
                wanted.insert(other.to_string());
            }
        }
        i += 1;
    }
    let run_all = wanted.is_empty();
    let want = |name: &str| run_all || wanted.contains(name);
    std::fs::create_dir_all("results").ok();

    let sizes: Vec<usize> = [50_000usize, 100_000, 200_000, 400_000, 800_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(1_000))
        .collect();
    let seed = 20200407; // the paper's arXiv date

    if want("fig9a") || want("fig9b") {
        banner("Figure 9(a,b): selection scaling, 1 polygonal constraint");
        let rows = figure9(&sizes, 1, DEFAULT_RESOLUTION, seed);
        print_rows(&rows);
        write_rows_csv("results/fig9ab.csv", &rows).expect("write results/fig9ab.csv");
    }

    if want("fig9c") || want("fig9d") {
        banner("Figure 9(c,d): selection scaling, 2-polygon disjunction");
        let rows = figure9(&sizes, 2, DEFAULT_RESOLUTION, seed + 1);
        print_rows(&rows);
        write_rows_csv("results/fig9cd.csv", &rows).expect("write results/fig9cd.csv");
    }

    if want("fig10") {
        banner("Figure 10: varying polygonal constraint (selectivity 3%..83%)");
        let n = ((150_000f64 * scale) as usize).max(1_000);
        let rows = figure10(n, DEFAULT_RESOLUTION, seed + 2);
        print_rows(&rows);
        write_rows_csv("results/fig10.csv", &rows).expect("write results/fig10.csv");
    }

    if want("agg") {
        banner("E6: spatial aggregation — RasterJoin plan vs join+aggregate (Sec 5.2)");
        let agg_sizes: Vec<usize> = sizes.iter().map(|&n| n / 2).collect();
        let rows = aggregation_experiment(&agg_sizes, 40, DEFAULT_RESOLUTION, seed + 3);
        print_rows(&rows);
        write_rows_csv("results/aggregation.csv", &rows).expect("write results/aggregation.csv");
    }

    if want("reuse") {
        banner("E7: operator reuse — identical plan for point and polygon data (Sec 4.1)");
        reuse_demo(seed + 4);
    }

    if want("knn") {
        banner("E8: kNN via circle ladder (Sec 4.4)");
        knn_demo(((50_000f64 * scale) as usize).max(1_000), seed + 5);
    }

    if want("od") {
        banner("E10: origin-destination selection (Sec 4.6)");
        od_demo(((100_000f64 * scale) as usize).max(1_000), seed + 6);
    }

    if want("resolution") {
        banner("A2: resolution ablation — approximate mode error vs time (Sec 5.1)");
        let rows = resolution_ablation(((100_000f64 * scale) as usize).max(1_000), seed + 7);
        println!(
            "{:>10} {:>12} {:>12}",
            "resolution", "wall (s)", "rel. error"
        );
        let mut csv = String::from("resolution,wall_secs,rel_error\n");
        for (res, wall, err) in &rows {
            println!("{res:>10} {wall:>12.4} {err:>12.5}");
            csv.push_str(&format!("{res},{wall:.6},{err:.6}\n"));
        }
        std::fs::write("results/resolution.csv", csv).expect("write results/resolution.csv");
    }

    if want("blend") {
        banner("A3: blend-plan ablation — unfused B* vs fused instanced draw (Sec 3.2/7)");
        let rows = blend_ablation(
            ((50_000f64 * scale) as usize).max(1_000),
            &[1, 2, 4, 8, 16],
            DEFAULT_RESOLUTION,
            seed + 8,
        );
        println!(
            "{:>12} {:>16} {:>16} {:>8}",
            "constraints", "unfused (model)", "fused (model)", "gain"
        );
        let mut csv = String::from("constraints,unfused_modeled,fused_modeled,gain\n");
        for (k, unfused, fused) in &rows {
            println!(
                "{k:>12} {unfused:>16.6} {fused:>16.6} {:>7.2}x",
                unfused / fused
            );
            csv.push_str(&format!(
                "{k},{unfused:.6},{fused:.6},{:.3}\n",
                unfused / fused
            ));
        }
        std::fs::write("results/blend_ablation.csv", csv)
            .expect("write results/blend_ablation.csv");
    }

    println!("\nCSV output written to results/.");
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn print_rows(rows: &[Row]) {
    for row in rows {
        println!("\n-- {} --", row.label);
        println!(
            "{:>18} {:>12} {:>14} {:>12}",
            "approach", "wall (s)", "modeled (s)", "speedup/CPU"
        );
        for (m, (_, sp)) in row.measurements.iter().zip(row.speedups()) {
            println!(
                "{:>18} {:>12.4} {:>14.6} {:>11.1}x",
                m.approach, m.wall_secs, m.modeled_secs, sp
            );
        }
    }
}

fn reuse_demo(seed: u64) {
    use canvas_core::prelude::*;
    use canvas_geom::{BBox, Point};
    use std::sync::Arc;

    let extent = city_extent();
    let vp = Viewport::square_pixels(extent, DEFAULT_RESOLUTION);
    let mbr = BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0));
    let q = canvas_datagen::star_polygon(&mbr, 64, 0.5, seed);

    // Same constraint, point data:
    let pts = canvas_datagen::taxi_pickups(&extent, 20_000, seed);
    let mut dev = Device::nvidia();
    let psel = canvas_core::queries::selection::select_points_in_polygon(
        &mut dev,
        vp,
        &PointBatch::from_points(pts),
        &q,
    );
    // Same constraint, polygon data — the same blend+mask operators:
    let zones: AreaSource = Arc::new(canvas_datagen::neighborhoods(&extent, 30, seed + 1));
    let ysel =
        canvas_core::queries::selection::select_polygons_intersecting(&mut dev, vp, &zones, &q);
    println!(
        "point data   : {} of 20000 records selected (plan: B[⊙] → M[Mp'])",
        psel.records.len()
    );
    println!(
        "polygon data : {} of 30 records selected   (plan: B[⊕] → M[My]) — same operators",
        ysel.records.len()
    );
}

fn knn_demo(n: usize, seed: u64) {
    use canvas_core::prelude::*;
    use canvas_geom::Point;
    let extent = city_extent();
    let vp = Viewport::square_pixels(extent, DEFAULT_RESOLUTION);
    let pts = canvas_datagen::taxi_pickups(&extent, n, seed);
    let batch = PointBatch::from_points(pts);
    let mut dev = Device::nvidia();
    let x = Point::new(45.0, 55.0);
    for k in [1usize, 10, 100] {
        let t0 = std::time::Instant::now();
        let ids = canvas_core::queries::knn::knn(&mut dev, vp, &batch, x, k);
        println!(
            "k = {k:>4}: {} neighbors in {:.3}s wall (nearest id {})",
            ids.len(),
            t0.elapsed().as_secs_f64(),
            ids.first().copied().unwrap_or(0)
        );
    }
}

fn od_demo(n: usize, seed: u64) {
    use canvas_geom::{BBox, Point};
    let extent = city_extent();
    let vp = canvas_raster::Viewport::square_pixels(extent, DEFAULT_RESOLUTION);
    let trips = canvas_datagen::generate_trips(&extent, n, 16, seed);
    let q1 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(15.0, 15.0), Point::new(55.0, 55.0)),
        48,
        0.4,
        seed,
    );
    let q2 = canvas_datagen::star_polygon(
        &BBox::new(Point::new(45.0, 45.0), Point::new(90.0, 90.0)),
        48,
        0.4,
        seed + 1,
    );
    let mut dev = canvas_core::Device::nvidia();
    let t0 = std::time::Instant::now();
    let ids = canvas_core::queries::od::select_od(&mut dev, vp, &trips.od_batch(), &q1, &q2);
    println!(
        "{} of {n} trips start in Q1 and end in Q2 ({:.3}s wall, {:.6}s modeled)",
        ids.len(),
        t0.elapsed().as_secs_f64(),
        dev.modeled_time()
    );
}
