//! Emits `BENCH_baseline.json`: the perf trajectory anchor for future
//! PRs. Runs the 1M-point polygonal selection and the 1M-point grid
//! join, sequential (`Device::cpu`) vs tiled-parallel
//! (`Device::cpu_parallel(8)`), and records wall-clock plus modeled
//! times. Run with:
//!
//! ```text
//! cargo run --release -p canvas-bench --bin bench_baseline [-- output.json]
//! ```
//!
//! Wall-clock speedups only materialize on multi-core hosts; the file
//! records `host_cores` so readers can interpret the numbers (on a
//! single-core container the parallel wall time is thread overhead, and
//! the modeled times carry the multi-core trajectory).

use std::fmt::Write as _;
use std::time::Instant;

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::selection::select_points_in_polygon;
use canvas_datagen as datagen;
use canvas_geom::{BBox, Point};

const N_POINTS: usize = 1_000_000;
const RESOLUTION: u32 = 512;
const PAR_THREADS: usize = 8;

struct Sample {
    name: &'static str,
    wall_secs: f64,
    modeled_secs: f64,
    result_count: usize,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let extent = city_extent();
    let points = datagen::taxi_pickups(&extent, N_POINTS, 42);
    let batch = PointBatch::from_points(points.clone());
    let mbr = BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0));
    let poly = datagen::star_polygon(&mbr, 128, 0.5, 7);
    let vp = Viewport::square_pixels(extent, RESOLUTION);

    let mut samples: Vec<Sample> = Vec::new();

    // --- Selection: sequential tiled pipeline. ---
    let mut dev = Device::cpu();
    let (sel_seq, wall) = time(|| select_points_in_polygon(&mut dev, vp, &batch, &poly));
    samples.push(Sample {
        name: "selection_1m_seq",
        wall_secs: wall,
        modeled_secs: dev.modeled_time(),
        result_count: sel_seq.records.len(),
    });

    // --- Selection: 8-thread tiled pipeline. ---
    let mut dev = Device::cpu_parallel(PAR_THREADS);
    let (sel_par, wall) = time(|| select_points_in_polygon(&mut dev, vp, &batch, &poly));
    samples.push(Sample {
        name: "selection_1m_par8",
        wall_secs: wall,
        modeled_secs: dev.modeled_time(),
        result_count: sel_par.records.len(),
    });
    assert_eq!(
        sel_seq.records, sel_par.records,
        "sequential and parallel selections must agree"
    );

    // --- Join: 1M points × 32 zones through the CSR grid filter. ---
    let zones = datagen::neighborhoods(&extent, 32, 11);
    let (join_grid, wall) = time(|| canvas_baseline::join_grid(&points, &zones, extent));
    samples.push(Sample {
        name: "join_grid_1m_x32",
        wall_secs: wall,
        modeled_secs: 0.0,
        result_count: join_grid.pairs.len(),
    });
    let (join_pts, wall) =
        time(|| canvas_baseline::join_grid_points_indexed(&points, &zones, extent));
    samples.push(Sample {
        name: "join_grid_points_indexed_1m_x32",
        wall_secs: wall,
        modeled_secs: 0.0,
        result_count: join_pts.pairs.len(),
    });
    assert_eq!(
        join_grid.pairs, join_pts.pairs,
        "grid join formulations must agree"
    );

    // --- Fused operator chain: draw → blend → mask at 2048². ---
    // The fused-memory acceptance gate: streaming a 3-op chain through
    // the multi-stage hand-off must never materialize an intermediate
    // canvas — peak live tile buffers stay within the policy window
    // (vs 1024 tiles for a materialized 2048² intermediate).
    const CHAIN_RES: u32 = 2048;
    let chain_vp = canvas_raster::Viewport::square_pixels(extent, CHAIN_RES);
    let chain_pts = &points[..500_000.min(points.len())];
    let mut chain_pl = canvas_raster::Pipeline::new();
    chain_pl.set_threads(PAR_THREADS);
    let mut operand: canvas_raster::Texture<u32> =
        canvas_raster::Texture::new(CHAIN_RES, CHAIN_RES);
    chain_pl.par_map_texels(&mut operand, |x, y, _| x ^ (y << 1));
    let chain = canvas_raster::OpChain::new()
        .blend(&operand, |d: u32, s: u32| d.wrapping_add(s))
        .mask(|x, y, &t: &u32| (t ^ x ^ y) & 3 != 3);
    let mut fused_fb: canvas_raster::Texture<u32> =
        canvas_raster::Texture::new(CHAIN_RES, CHAIN_RES);
    let t0 = Instant::now();
    let chain_report = chain_pl.run_chain_points(
        &chain_vp,
        &mut fused_fb,
        None,
        chain_pts,
        |i, _| i.wrapping_add(1),
        |d, s| d.wrapping_add(s),
        &chain,
    );
    let chain_fused_wall = t0.elapsed().as_secs_f64();
    let chain_window = chain_pl
        .pool()
        .policy()
        .stream_window(chain_pl.pool().worker_count());

    // Materialized comparison: draw, then one full-screen pass per op
    // (allocates and rewrites the full framebuffer between operators).
    let mut mat_fb: canvas_raster::Texture<u32> = canvas_raster::Texture::new(CHAIN_RES, CHAIN_RES);
    let t0 = Instant::now();
    chain_pl.draw_points_tiled(
        &chain_vp,
        &mut mat_fb,
        chain_pts,
        |i, _| i.wrapping_add(1),
        |d, s| d.wrapping_add(s),
    );
    chain_pl.blend_into(&mut mat_fb, &operand, |d, s| d.wrapping_add(s));
    chain_pl.par_map_texels(
        &mut mat_fb,
        |x, y, t| if (t ^ x ^ y) & 3 != 3 { t } else { 0 },
    );
    let chain_materialized_wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        fused_fb.texels(),
        mat_fb.texels(),
        "fused chain must be bit-identical to the materialized passes"
    );

    // --- Executor fork/join latency: persistent pool vs scoped spawn. ---
    // The reason the pool exists: every canvas operator is a short
    // data-parallel pass, so per-pass dispatch overhead is on the
    // critical path of operator chains. Measure an empty pass (the
    // pure fork/join cost) both ways.
    const DISPATCH_PASSES: usize = 300;
    let pool = canvas_raster::WorkerPool::new(PAR_THREADS);
    for _ in 0..20 {
        let _ = pool.run_indexed(PAR_THREADS, |i| i); // warm-up: park/wake paths
    }
    let t0 = Instant::now();
    for _ in 0..DISPATCH_PASSES {
        let _ = pool.run_indexed(PAR_THREADS, |i| i);
    }
    let pool_dispatch_ns = t0.elapsed().as_nanos() as f64 / DISPATCH_PASSES as f64;
    drop(pool);

    let t0 = Instant::now();
    for _ in 0..DISPATCH_PASSES {
        // What raster::par did before the executor: fresh scoped OS
        // threads per pass, same worker count, same trivial work.
        let counter = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..PAR_THREADS - 1 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
    }
    let scoped_spawn_ns = t0.elapsed().as_nanos() as f64 / DISPATCH_PASSES as f64;
    let dispatch_speedup = scoped_spawn_ns / pool_dispatch_ns;

    // --- SIMD kernel ablation: scalar reference vs dispatched rows. ---
    // Per-kernel microbenchmark on L2-resident 2048-texel rows iterated
    // 2048× (2048² texels of work per arm, compute-bound): random mixed
    // presence makes the branchy scalar reference mispredict exactly
    // where the branchless vector select wins. The blend rows are the
    // gated pointwise kernels; the value row is ln-dominated and
    // deliberately scalar on every backend, recorded ungated as the
    // ablation's control.
    let simd_be = canvas_raster::simd::active_backend();
    let scalar_be = canvas_raster::Backend::Scalar;
    const SIMD_ROW: usize = 2048;
    const SIMD_REPS: usize = 2048;

    let mut seed = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed
    };
    let mk_texel = |r: u64| -> Texel {
        let mut t = Texel::null();
        for d in 0..3usize {
            if (r >> (8 * d)) & 1 == 1 {
                t.set(
                    d,
                    DimInfo::new(
                        (r >> 16) as u32 & 0xFFFF,
                        d as f32 + 1.5,
                        0.25 * (r & 0xFF) as f32,
                    ),
                );
            }
        }
        t
    };
    let row_a: Vec<Texel> = (0..SIMD_ROW).map(|_| mk_texel(next())).collect();
    let row_b: Vec<Texel> = (0..SIMD_ROW).map(|_| mk_texel(next())).collect();

    // The per-rep restore is a fixed cost both arms pay equally; it is
    // measured alone (same loop shape) and subtracted so the blend
    // speedups compare pure kernel time. Gross per-texel numbers and
    // the restore baseline are all recorded in the JSON.
    fn bench_restore(proto: &[Texel]) -> f64 {
        let mut dst = proto.to_vec();
        let pass = |dst: &mut Vec<Texel>| {
            dst.copy_from_slice(proto);
        };
        for _ in 0..16 {
            pass(&mut dst);
        }
        let t0 = Instant::now();
        for _ in 0..SIMD_REPS {
            pass(&mut dst);
            std::hint::black_box(&mut dst);
        }
        t0.elapsed().as_nanos() as f64 / (SIMD_REPS * proto.len()) as f64
    }

    fn bench_blend(
        be: canvas_raster::Backend,
        tag: canvas_raster::BlendTag,
        proto: &[Texel],
        src: &[Texel],
    ) -> f64 {
        // Each rep restores `dst` from the prototype so every pass
        // blends fresh random-presence data — without the restore the
        // blend reaches its fixed point and the scalar arm's branches
        // become a learnable repeating pattern, flattering the
        // reference. The restore memcpy is paid equally by both arms.
        let mut dst = proto.to_vec();
        let pass = |dst: &mut Vec<Texel>| {
            dst.copy_from_slice(proto);
            canvas_raster::simd::blend_rows_with(be, tag, dst, src);
        };
        for _ in 0..16 {
            pass(&mut dst);
        }
        let t0 = Instant::now();
        for _ in 0..SIMD_REPS {
            pass(&mut dst);
        }
        std::hint::black_box(&mut dst);
        t0.elapsed().as_nanos() as f64 / (SIMD_REPS * proto.len()) as f64
    }

    fn bench_value(
        be: canvas_raster::Backend,
        tag: canvas_raster::ValueTag,
        proto: &[Texel],
    ) -> f64 {
        let mut row = proto.to_vec();
        let pass = |row: &mut Vec<Texel>| {
            row.copy_from_slice(proto);
            canvas_raster::simd::value_rows_with(be, tag, row);
        };
        for _ in 0..16 {
            pass(&mut row);
        }
        let t0 = Instant::now();
        for _ in 0..SIMD_REPS {
            pass(&mut row);
        }
        std::hint::black_box(&mut row);
        t0.elapsed().as_nanos() as f64 / (SIMD_REPS * proto.len()) as f64
    }

    fn bench_mask(be: canvas_raster::Backend, tag: canvas_raster::MaskTag, proto: &[Texel]) -> f64 {
        let mut row = proto.to_vec();
        let mut cov = vec![1u16; proto.len()];
        let mut bits = vec![0u64; proto.len().div_ceil(64)];
        let pass = |row: &mut Vec<Texel>, cov: &mut Vec<u16>, bits: &mut Vec<u64>| {
            row.copy_from_slice(proto);
            cov.fill(1);
            bits.fill(0);
            canvas_raster::simd::mask_rows_with(be, tag, row, Some(cov), bits);
        };
        for _ in 0..16 {
            pass(&mut row, &mut cov, &mut bits);
        }
        let t0 = Instant::now();
        for _ in 0..SIMD_REPS {
            pass(&mut row, &mut cov, &mut bits);
        }
        std::hint::black_box((&mut row, &mut bits));
        t0.elapsed().as_nanos() as f64 / (SIMD_REPS * proto.len()) as f64
    }

    fn bench_cover(be: canvas_raster::Backend, n: usize) -> f64 {
        let proto: Vec<u16> = (0..n).map(|i| (i % 7) as u16).collect();
        let src: Vec<u16> = (0..n).map(|i| (i % 5) as u16 + 1).collect();
        let mut dst = proto.clone();
        let pass = |dst: &mut Vec<u16>| {
            dst.copy_from_slice(&proto);
            canvas_raster::simd::cover_add_rows_with(be, dst, &src);
        };
        for _ in 0..16 {
            pass(&mut dst);
        }
        let t0 = Instant::now();
        for _ in 0..SIMD_REPS {
            pass(&mut dst);
        }
        std::hint::black_box(&mut dst);
        t0.elapsed().as_nanos() as f64 / (SIMD_REPS * n) as f64
    }

    // Best-of-3 per measurement (same guard bench_serve uses): on a
    // shared host a single timed window can land on a scheduling blip
    // or throttled interval, and the minimum is the least-interfered
    // estimate of the kernel's true cost.
    fn best3(mut f: impl FnMut() -> f64) -> f64 {
        (0..3).map(|_| f()).fold(f64::INFINITY, f64::min)
    }

    let blend_restore = best3(|| bench_restore(&row_a));
    let blend_over_scalar =
        best3(|| bench_blend(scalar_be, canvas_raster::BlendTag::Over, &row_a, &row_b));
    let blend_over_simd =
        best3(|| bench_blend(simd_be, canvas_raster::BlendTag::Over, &row_a, &row_b));
    let blend_poa_scalar = best3(|| {
        bench_blend(
            scalar_be,
            canvas_raster::BlendTag::PointOverArea,
            &row_a,
            &row_b,
        )
    });
    let blend_poa_simd = best3(|| {
        bench_blend(
            simd_be,
            canvas_raster::BlendTag::PointOverArea,
            &row_a,
            &row_b,
        )
    });
    let value_scalar = best3(|| bench_value(scalar_be, canvas_raster::ValueTag::HeatLog, &row_a));
    let value_simd = best3(|| bench_value(simd_be, canvas_raster::ValueTag::HeatLog, &row_a));
    let mask_scalar = best3(|| bench_mask(scalar_be, canvas_raster::MaskTag::PointAndArea, &row_a));
    let mask_simd = best3(|| bench_mask(simd_be, canvas_raster::MaskTag::PointAndArea, &row_a));
    let cover_scalar = best3(|| bench_cover(scalar_be, SIMD_ROW));
    let cover_simd = best3(|| bench_cover(simd_be, SIMD_ROW));

    // Blend speedups are net of the per-rep restore both arms pay;
    // the floor keeps a noisy restore estimate from driving a
    // denominator to zero or negative.
    let net = |gross: f64| (gross - blend_restore).max(gross * 0.1);
    let blend_over_speedup = net(blend_over_scalar) / net(blend_over_simd);
    let blend_poa_speedup = net(blend_poa_scalar) / net(blend_poa_simd);
    let value_speedup = value_scalar / value_simd;
    let mask_speedup = mask_scalar / mask_simd;
    let cover_speedup = cover_scalar / cover_simd;

    let seq = &samples[0];
    let par = &samples[1];
    let wall_speedup = seq.wall_secs / par.wall_secs;
    let modeled_speedup = seq.modeled_secs / par.modeled_secs;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"n_points\": {N_POINTS},");
    let _ = writeln!(json, "  \"resolution\": {RESOLUTION},");
    let _ = writeln!(json, "  \"parallel_threads\": {PAR_THREADS},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        json,
        "  \"selection_modeled_speedup_8t\": {modeled_speedup:.3},"
    );
    let _ = writeln!(json, "  \"selection_wall_speedup_8t\": {wall_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"pool_dispatch_ns_per_pass\": {pool_dispatch_ns:.0},"
    );
    let _ = writeln!(
        json,
        "  \"scoped_spawn_ns_per_pass\": {scoped_spawn_ns:.0},"
    );
    let _ = writeln!(json, "  \"dispatch_speedup\": {dispatch_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"chain_peak_tiles_in_flight\": {},",
        chain_report.peak_tiles_in_flight
    );
    let _ = writeln!(json, "  \"chain_stream_window\": {chain_window},");
    let _ = writeln!(json, "  \"chain_tiles_total\": {},", chain_report.tiles);
    let _ = writeln!(json, "  \"chain_fused_wall_secs\": {chain_fused_wall:.6},");
    let _ = writeln!(
        json,
        "  \"chain_materialized_wall_secs\": {chain_materialized_wall:.6},"
    );
    let _ = writeln!(json, "  \"simd_backend\": \"{}\",", simd_be.name());
    let _ = writeln!(json, "  \"simd_width\": {},", simd_be.width());
    let _ = writeln!(
        json,
        "  \"simd_blend_restore_ns_per_texel\": {blend_restore:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_blend_over_scalar_ns_per_texel\": {blend_over_scalar:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_blend_over_ns_per_texel\": {blend_over_simd:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_blend_over_speedup\": {blend_over_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"simd_blend_point_over_area_scalar_ns_per_texel\": {blend_poa_scalar:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_blend_point_over_area_ns_per_texel\": {blend_poa_simd:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_blend_point_over_area_speedup\": {blend_poa_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"simd_value_heat_log_scalar_ns_per_texel\": {value_scalar:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_value_heat_log_ns_per_texel\": {value_simd:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_value_heat_log_speedup\": {value_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"simd_mask_point_and_area_scalar_ns_per_texel\": {mask_scalar:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_mask_point_and_area_ns_per_texel\": {mask_simd:.3},"
    );
    let _ = writeln!(
        json,
        "  \"simd_mask_point_and_area_speedup\": {mask_speedup:.2},"
    );
    let _ = writeln!(
        json,
        "  \"simd_cover_add_scalar_ns_per_texel\": {cover_scalar:.3},"
    );
    let _ = writeln!(json, "  \"simd_cover_add_ns_per_texel\": {cover_simd:.3},");
    let _ = writeln!(json, "  \"simd_cover_add_speedup\": {cover_speedup:.2},");
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_secs\": {:.6}, \"modeled_secs\": {:.6}, \"result_count\": {}}}{}",
            s.name,
            s.wall_secs,
            s.modeled_secs,
            s.result_count,
            if i + 1 < samples.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_baseline.json");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // The acceptance bar for the parallel pipeline: ≥ 3× at 8 threads.
    // The modeled ratio is a property of the device cost model (seq and
    // par count identical work — that equality is proptest-enforced),
    // so it sanity-checks the model, not the executor; the executor is
    // gated on *wall clock*, which only means something with enough
    // physical cores to run 8 workers. On smaller hosts the wall
    // numbers are recorded for the trajectory but not asserted.
    assert!(
        modeled_speedup >= 3.0,
        "modeled 8-thread speedup {modeled_speedup:.2}x below 3x"
    );
    // The fused-chain memory gate: a 3-op chain (draw → blend → mask)
    // at 2048² holds at most the policy window of live tile buffers —
    // intermediate canvases are never materialized.
    assert!(
        chain_report.peak_tiles_in_flight <= chain_window,
        "fused chain held {} live tiles, window is {chain_window}",
        chain_report.peak_tiles_in_flight
    );
    assert!(
        chain_report.tiles > chain_window,
        "chain benchmark must stream more tiles ({}) than the window ({chain_window}) \
         for the bound to mean anything",
        chain_report.tiles
    );
    // The persistent pool must beat per-pass scoped spawns on pure
    // fork/join latency — that is its entire reason to exist.
    assert!(
        pool_dispatch_ns < scoped_spawn_ns,
        "pool dispatch {pool_dispatch_ns:.0}ns/pass not below scoped spawn \
         {scoped_spawn_ns:.0}ns/pass"
    );
    // The pointwise-kernel gate: when a vector backend was detected,
    // the dispatched blend rows must beat the scalar reference ≥ 1.5×,
    // comparing pure kernel time (gross minus the measured per-rep
    // restore, which both arms pay equally). The ln-bound value kernel
    // and the gather-bound mask kernel are recorded for the trajectory
    // but not gated.
    if simd_be.is_vector() {
        assert!(
            blend_over_speedup >= 1.5,
            "SIMD Over blend {blend_over_speedup:.2}x below 1.5x over scalar on {}",
            simd_be.name()
        );
        assert!(
            blend_poa_speedup >= 1.5,
            "SIMD PointOverArea blend {blend_poa_speedup:.2}x below 1.5x over scalar on {}",
            simd_be.name()
        );
    } else {
        eprintln!(
            "note: no vector backend detected (backend {}); SIMD kernel numbers recorded, \
             1.5x pointwise gate applies when width >= 4",
            simd_be.name()
        );
    }
    if host_cores >= 8 {
        assert!(
            wall_speedup >= 3.0,
            "wall 8-thread speedup {wall_speedup:.2}x below 3x on a {host_cores}-core host"
        );
    } else {
        eprintln!(
            "note: host has {host_cores} core(s); wall speedup {wall_speedup:.2}x recorded, \
             3x gate applies on hosts with >= 8 cores"
        );
    }
}
