//! Emits `BENCH_baseline.json`: the perf trajectory anchor for future
//! PRs. Runs the 1M-point polygonal selection and the 1M-point grid
//! join, sequential (`Device::cpu`) vs tiled-parallel
//! (`Device::cpu_parallel(8)`), and records wall-clock plus modeled
//! times. Run with:
//!
//! ```text
//! cargo run --release -p canvas-bench --bin bench_baseline [-- output.json]
//! ```
//!
//! Wall-clock speedups only materialize on multi-core hosts; the file
//! records `host_cores` so readers can interpret the numbers (on a
//! single-core container the parallel wall time is thread overhead, and
//! the modeled times carry the multi-core trajectory).

use std::fmt::Write as _;
use std::time::Instant;

use canvas_bench::city_extent;
use canvas_core::prelude::*;
use canvas_core::queries::selection::select_points_in_polygon;
use canvas_datagen as datagen;
use canvas_geom::{BBox, Point};

const N_POINTS: usize = 1_000_000;
const RESOLUTION: u32 = 512;
const PAR_THREADS: usize = 8;

struct Sample {
    name: &'static str,
    wall_secs: f64,
    modeled_secs: f64,
    result_count: usize,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let extent = city_extent();
    let points = datagen::taxi_pickups(&extent, N_POINTS, 42);
    let batch = PointBatch::from_points(points.clone());
    let mbr = BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0));
    let poly = datagen::star_polygon(&mbr, 128, 0.5, 7);
    let vp = Viewport::square_pixels(extent, RESOLUTION);

    let mut samples: Vec<Sample> = Vec::new();

    // --- Selection: sequential tiled pipeline. ---
    let mut dev = Device::cpu();
    let (sel_seq, wall) = time(|| select_points_in_polygon(&mut dev, vp, &batch, &poly));
    samples.push(Sample {
        name: "selection_1m_seq",
        wall_secs: wall,
        modeled_secs: dev.modeled_time(),
        result_count: sel_seq.records.len(),
    });

    // --- Selection: 8-thread tiled pipeline. ---
    let mut dev = Device::cpu_parallel(PAR_THREADS);
    let (sel_par, wall) = time(|| select_points_in_polygon(&mut dev, vp, &batch, &poly));
    samples.push(Sample {
        name: "selection_1m_par8",
        wall_secs: wall,
        modeled_secs: dev.modeled_time(),
        result_count: sel_par.records.len(),
    });
    assert_eq!(
        sel_seq.records, sel_par.records,
        "sequential and parallel selections must agree"
    );

    // --- Join: 1M points × 32 zones through the CSR grid filter. ---
    let zones = datagen::neighborhoods(&extent, 32, 11);
    let (join_grid, wall) = time(|| canvas_baseline::join_grid(&points, &zones, extent));
    samples.push(Sample {
        name: "join_grid_1m_x32",
        wall_secs: wall,
        modeled_secs: 0.0,
        result_count: join_grid.pairs.len(),
    });
    let (join_pts, wall) =
        time(|| canvas_baseline::join_grid_points_indexed(&points, &zones, extent));
    samples.push(Sample {
        name: "join_grid_points_indexed_1m_x32",
        wall_secs: wall,
        modeled_secs: 0.0,
        result_count: join_pts.pairs.len(),
    });
    assert_eq!(
        join_grid.pairs, join_pts.pairs,
        "grid join formulations must agree"
    );

    // --- Fused operator chain: draw → blend → mask at 2048². ---
    // The fused-memory acceptance gate: streaming a 3-op chain through
    // the multi-stage hand-off must never materialize an intermediate
    // canvas — peak live tile buffers stay within the policy window
    // (vs 1024 tiles for a materialized 2048² intermediate).
    const CHAIN_RES: u32 = 2048;
    let chain_vp = canvas_raster::Viewport::square_pixels(extent, CHAIN_RES);
    let chain_pts = &points[..500_000.min(points.len())];
    let mut chain_pl = canvas_raster::Pipeline::new();
    chain_pl.set_threads(PAR_THREADS);
    let mut operand: canvas_raster::Texture<u32> =
        canvas_raster::Texture::new(CHAIN_RES, CHAIN_RES);
    chain_pl.par_map_texels(&mut operand, |x, y, _| x ^ (y << 1));
    let chain = canvas_raster::OpChain::new()
        .blend(&operand, |d: u32, s: u32| d.wrapping_add(s))
        .mask(|x, y, &t: &u32| (t ^ x ^ y) & 3 != 3);
    let mut fused_fb: canvas_raster::Texture<u32> =
        canvas_raster::Texture::new(CHAIN_RES, CHAIN_RES);
    let t0 = Instant::now();
    let chain_report = chain_pl.run_chain_points(
        &chain_vp,
        &mut fused_fb,
        None,
        chain_pts,
        |i, _| i.wrapping_add(1),
        |d, s| d.wrapping_add(s),
        &chain,
    );
    let chain_fused_wall = t0.elapsed().as_secs_f64();
    let chain_window = chain_pl
        .pool()
        .policy()
        .stream_window(chain_pl.pool().worker_count());

    // Materialized comparison: draw, then one full-screen pass per op
    // (allocates and rewrites the full framebuffer between operators).
    let mut mat_fb: canvas_raster::Texture<u32> = canvas_raster::Texture::new(CHAIN_RES, CHAIN_RES);
    let t0 = Instant::now();
    chain_pl.draw_points_tiled(
        &chain_vp,
        &mut mat_fb,
        chain_pts,
        |i, _| i.wrapping_add(1),
        |d, s| d.wrapping_add(s),
    );
    chain_pl.blend_into(&mut mat_fb, &operand, |d, s| d.wrapping_add(s));
    chain_pl.par_map_texels(
        &mut mat_fb,
        |x, y, t| if (t ^ x ^ y) & 3 != 3 { t } else { 0 },
    );
    let chain_materialized_wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        fused_fb.texels(),
        mat_fb.texels(),
        "fused chain must be bit-identical to the materialized passes"
    );

    // --- Executor fork/join latency: persistent pool vs scoped spawn. ---
    // The reason the pool exists: every canvas operator is a short
    // data-parallel pass, so per-pass dispatch overhead is on the
    // critical path of operator chains. Measure an empty pass (the
    // pure fork/join cost) both ways.
    const DISPATCH_PASSES: usize = 300;
    let pool = canvas_raster::WorkerPool::new(PAR_THREADS);
    for _ in 0..20 {
        let _ = pool.run_indexed(PAR_THREADS, |i| i); // warm-up: park/wake paths
    }
    let t0 = Instant::now();
    for _ in 0..DISPATCH_PASSES {
        let _ = pool.run_indexed(PAR_THREADS, |i| i);
    }
    let pool_dispatch_ns = t0.elapsed().as_nanos() as f64 / DISPATCH_PASSES as f64;
    drop(pool);

    let t0 = Instant::now();
    for _ in 0..DISPATCH_PASSES {
        // What raster::par did before the executor: fresh scoped OS
        // threads per pass, same worker count, same trivial work.
        let counter = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..PAR_THREADS - 1 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
    }
    let scoped_spawn_ns = t0.elapsed().as_nanos() as f64 / DISPATCH_PASSES as f64;
    let dispatch_speedup = scoped_spawn_ns / pool_dispatch_ns;

    let seq = &samples[0];
    let par = &samples[1];
    let wall_speedup = seq.wall_secs / par.wall_secs;
    let modeled_speedup = seq.modeled_secs / par.modeled_secs;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"n_points\": {N_POINTS},");
    let _ = writeln!(json, "  \"resolution\": {RESOLUTION},");
    let _ = writeln!(json, "  \"parallel_threads\": {PAR_THREADS},");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        json,
        "  \"selection_modeled_speedup_8t\": {modeled_speedup:.3},"
    );
    let _ = writeln!(json, "  \"selection_wall_speedup_8t\": {wall_speedup:.3},");
    let _ = writeln!(
        json,
        "  \"pool_dispatch_ns_per_pass\": {pool_dispatch_ns:.0},"
    );
    let _ = writeln!(
        json,
        "  \"scoped_spawn_ns_per_pass\": {scoped_spawn_ns:.0},"
    );
    let _ = writeln!(json, "  \"dispatch_speedup\": {dispatch_speedup:.2},");
    let _ = writeln!(
        json,
        "  \"chain_peak_tiles_in_flight\": {},",
        chain_report.peak_tiles_in_flight
    );
    let _ = writeln!(json, "  \"chain_stream_window\": {chain_window},");
    let _ = writeln!(json, "  \"chain_tiles_total\": {},", chain_report.tiles);
    let _ = writeln!(json, "  \"chain_fused_wall_secs\": {chain_fused_wall:.6},");
    let _ = writeln!(
        json,
        "  \"chain_materialized_wall_secs\": {chain_materialized_wall:.6},"
    );
    json.push_str("  \"samples\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_secs\": {:.6}, \"modeled_secs\": {:.6}, \"result_count\": {}}}{}",
            s.name,
            s.wall_secs,
            s.modeled_secs,
            s.result_count,
            if i + 1 < samples.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_baseline.json");
    print!("{json}");
    eprintln!("wrote {out_path}");

    // The acceptance bar for the parallel pipeline: ≥ 3× at 8 threads.
    // The modeled ratio is a property of the device cost model (seq and
    // par count identical work — that equality is proptest-enforced),
    // so it sanity-checks the model, not the executor; the executor is
    // gated on *wall clock*, which only means something with enough
    // physical cores to run 8 workers. On smaller hosts the wall
    // numbers are recorded for the trajectory but not asserted.
    assert!(
        modeled_speedup >= 3.0,
        "modeled 8-thread speedup {modeled_speedup:.2}x below 3x"
    );
    // The fused-chain memory gate: a 3-op chain (draw → blend → mask)
    // at 2048² holds at most the policy window of live tile buffers —
    // intermediate canvases are never materialized.
    assert!(
        chain_report.peak_tiles_in_flight <= chain_window,
        "fused chain held {} live tiles, window is {chain_window}",
        chain_report.peak_tiles_in_flight
    );
    assert!(
        chain_report.tiles > chain_window,
        "chain benchmark must stream more tiles ({}) than the window ({chain_window}) \
         for the bound to mean anything",
        chain_report.tiles
    );
    // The persistent pool must beat per-pass scoped spawns on pure
    // fork/join latency — that is its entire reason to exist.
    assert!(
        pool_dispatch_ns < scoped_spawn_ns,
        "pool dispatch {pool_dispatch_ns:.0}ns/pass not below scoped spawn \
         {scoped_spawn_ns:.0}ns/pass"
    );
    if host_cores >= 8 {
        assert!(
            wall_speedup >= 3.0,
            "wall 8-thread speedup {wall_speedup:.2}x below 3x on a {host_cores}-core host"
        );
    } else {
        eprintln!(
            "note: host has {host_cores} core(s); wall speedup {wall_speedup:.2}x recorded, \
             3x gate applies on hosts with >= 8 cores"
        );
    }
}
