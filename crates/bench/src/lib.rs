//! # canvas-bench
//!
//! Experiment harness regenerating every figure of the paper's
//! evaluation (Section 6) plus the ablations listed in DESIGN.md §4.
//!
//! Each experiment returns structured [`Measurement`]s with **two**
//! timings per approach:
//!
//! * `wall_secs` — real wall-clock of this reproduction's software
//!   implementation on the current host,
//! * `modeled_secs` — the device-cost-model estimate for the hardware
//!   the paper used (see `canvas_raster::device` for the substitution
//!   rationale: this container has no GPU and one CPU core, so modeled
//!   time is what carries the paper's hardware ratios).
//!
//! The `repro` binary formats these as the paper's figures and writes
//! CSVs under `results/`.

use std::sync::Arc;
use std::time::Instant;

use canvas_baseline as baseline;
use canvas_core::prelude::*;
use canvas_core::queries::selection::{self, MultiPolygon};
use canvas_datagen as datagen;
use canvas_geom::polygon::Polygon;
use canvas_geom::{BBox, Point};
use canvas_raster::{DeviceProfile, PipelineStats};

/// The synthetic city extent (stands in for the taxi-query MBR).
pub fn city_extent() -> BBox {
    BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

/// Canvas resolution used by the experiments (the prototype's texture).
pub const DEFAULT_RESOLUTION: u32 = 512;

/// One approach's result on one configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub approach: &'static str,
    pub wall_secs: f64,
    pub modeled_secs: f64,
    /// Result cardinality (sanity: all approaches must agree).
    pub result_count: usize,
}

/// A labeled row: the x-axis value (input size / polygon id) plus the
/// per-approach measurements.
#[derive(Clone, Debug)]
pub struct Row {
    pub label: String,
    pub x: f64,
    pub measurements: Vec<Measurement>,
}

impl Row {
    /// Speedup of each approach over the scalar-CPU measurement in the
    /// same row (the paper's y-axis in Figures 9(a,c) and 10(a)),
    /// computed on modeled time.
    pub fn speedups(&self) -> Vec<(&'static str, f64)> {
        let cpu = self
            .measurements
            .iter()
            .find(|m| m.approach == CPU_SCALAR)
            .map(|m| m.modeled_secs)
            .unwrap_or(f64::NAN);
        self.measurements
            .iter()
            .map(|m| (m.approach, cpu / m.modeled_secs))
            .collect()
    }
}

pub const CPU_SCALAR: &str = "CPU (1 thread)";
pub const CPU_PARALLEL: &str = "CPU (OpenMP)";
pub const GPU_BASELINE: &str = "GPU baseline";
pub const CANVAS_NVIDIA: &str = "Canvas (Nvidia)";
pub const CANVAS_INTEL: &str = "Canvas (Intel)";

/// Models CPU time for a pure PIP workload of `edge_tests` edges.
fn model_cpu(profile: &DeviceProfile, edge_tests: u64) -> f64 {
    profile.estimate(&PipelineStats {
        compute_edge_tests: edge_tests,
        ..Default::default()
    })
}

/// Runs the five approaches of Figure 9 on one selection configuration.
///
/// `constraints` is the disjunction of query polygons (1 for Fig 9(a,b),
/// 2 for Fig 9(c,d), varying shapes for Fig 10).
pub fn run_selection(
    points: &[Point],
    constraints: &[Polygon],
    resolution: u32,
) -> Vec<Measurement> {
    let vp = Viewport::square_pixels(city_extent(), resolution);
    let batch = PointBatch::from_points(points.to_vec());
    let mut out = Vec::with_capacity(5);

    // --- CPU scalar (the speedup denominator). ---
    let t0 = Instant::now();
    let cpu = baseline::select_scalar(points, constraints);
    let wall = t0.elapsed().as_secs_f64();
    out.push(Measurement {
        approach: CPU_SCALAR,
        wall_secs: wall,
        modeled_secs: model_cpu(&DeviceProfile::cpu_scalar(), cpu.edge_tests),
        result_count: cpu.records.len(),
    });

    // --- CPU parallel (OpenMP-style; on a 1-core container the wall
    // time degenerates to scalar, the model shows the 6-core host). ---
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t0 = Instant::now();
    let par = baseline::select_parallel(points, constraints, threads);
    let wall = t0.elapsed().as_secs_f64();
    out.push(Measurement {
        approach: CPU_PARALLEL,
        wall_secs: wall,
        modeled_secs: model_cpu(&DeviceProfile::cpu_parallel(), par.edge_tests),
        result_count: par.records.len(),
    });

    // --- Traditional GPU baseline. ---
    let mut dev = Device::nvidia();
    let t0 = Instant::now();
    let gpu = baseline::select_gpu_baseline(&mut dev, points, constraints);
    let wall = t0.elapsed().as_secs_f64();
    out.push(Measurement {
        approach: GPU_BASELINE,
        wall_secs: wall,
        modeled_secs: dev.modeled_time(),
        result_count: gpu.records.len(),
    });

    // --- Canvas algebra on the discrete GPU profile. ---
    let mut dev = Device::nvidia();
    let t0 = Instant::now();
    let sel = if constraints.len() == 1 {
        selection::select_points_in_polygon(&mut dev, vp, &batch, &constraints[0])
    } else {
        selection::select_points_multi(&mut dev, vp, &batch, constraints, MultiPolygon::Disjunction)
    };
    let wall = t0.elapsed().as_secs_f64();
    out.push(Measurement {
        approach: CANVAS_NVIDIA,
        wall_secs: wall,
        modeled_secs: dev.modeled_time(),
        result_count: sel.records.len(),
    });

    // --- Canvas algebra on the integrated GPU profile (same work,
    // different device model; wall time identical by construction). ---
    let mut dev = Device::intel();
    let sel2 = if constraints.len() == 1 {
        selection::select_points_in_polygon(&mut dev, vp, &batch, &constraints[0])
    } else {
        selection::select_points_multi(&mut dev, vp, &batch, constraints, MultiPolygon::Disjunction)
    };
    out.push(Measurement {
        approach: CANVAS_INTEL,
        wall_secs: wall,
        modeled_secs: dev.modeled_time(),
        result_count: sel2.records.len(),
    });

    // Sanity: every approach must return the same answer.
    let counts: Vec<usize> = out.iter().map(|m| m.result_count).collect();
    assert!(
        counts.iter().all(|&c| c == counts[0]),
        "approaches disagree: {counts:?}"
    );
    out
}

/// Points clipped to the constraint MBR — the paper's setup: "we use as
/// input only taxi trips that have their pickup location within this
/// MBR", which makes the *refinement* step (not MBR filtering) the
/// bottleneck being measured.
fn points_in_mbr(extent: &BBox, mbr: &BBox, n: usize, seed: u64) -> Vec<Point> {
    let mut out = Vec::with_capacity(n);
    let mut round = 0u64;
    while out.len() < n && round < 64 {
        let batch = datagen::taxi_pickups(extent, n * 2, seed.wrapping_add(round * 7919));
        out.extend(batch.into_iter().filter(|p| mbr.contains(*p)));
        round += 1;
    }
    out.truncate(n);
    out
}

/// Figure 9(a,b): scaling input size with one polygonal constraint.
/// Figure 9(c,d): the same sweep with `num_constraints = 2`.
pub fn figure9(sizes: &[usize], num_constraints: usize, resolution: u32, seed: u64) -> Vec<Row> {
    let extent = city_extent();
    let max_n = sizes.iter().copied().max().unwrap_or(0);
    // Hand-drawn-style constraint polygons with a common MBR (the
    // paper's setup); ~128 vertices like digitized hand-drawn shapes.
    let mbr = BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0));
    let constraints: Vec<Polygon> = (0..num_constraints)
        .map(|i| {
            datagen::fit_to_bbox(
                &datagen::star_polygon(&mbr, 128, 0.5, seed + 100 + i as u64),
                &mbr,
            )
        })
        .collect();
    let all_points = points_in_mbr(&extent, &mbr, max_n, seed);
    sizes
        .iter()
        .map(|&n| Row {
            label: format!("{n} points"),
            x: n as f64,
            measurements: run_selection(
                &all_points[..n.min(all_points.len())],
                &constraints,
                resolution,
            ),
        })
        .collect()
}

/// Figure 10: varying the polygonal constraint (shape, complexity,
/// selectivity ≈3%–83%) at a fixed input size.
pub fn figure10(n: usize, resolution: u32, seed: u64) -> Vec<Row> {
    let extent = city_extent();
    let mbr = BBox::new(Point::new(10.0, 10.0), Point::new(90.0, 90.0));
    let points = points_in_mbr(&extent, &mbr, n, seed);
    // Eight polygons spanning the paper's selectivity range with varying
    // vertex counts (complexity).
    let configs: [(f64, usize); 8] = [
        (0.03, 32),
        (0.10, 48),
        (0.20, 64),
        (0.35, 96),
        (0.50, 128),
        (0.65, 192),
        (0.75, 256),
        (0.83, 384),
    ];
    configs
        .iter()
        .enumerate()
        .map(|(i, &(target, verts))| {
            let poly = datagen::calibrated_polygon(&mbr, &points, target, verts, seed + i as u64);
            let sel = datagen::selectivity(&poly, &points);
            Row {
                label: format!("P{} ({verts}v, {:.0}% sel)", i + 1, sel * 100.0),
                x: sel,
                measurements: run_selection(&points, std::slice::from_ref(&poly), resolution),
            }
        })
        .collect()
}

/// E6: spatial aggregation plans (Section 5.2). Compares the canvas
/// RasterJoin-style plan against the traditional join-then-aggregate
/// baseline, for a growing number of points.
pub fn aggregation_experiment(
    sizes: &[usize],
    num_zones: usize,
    resolution: u32,
    seed: u64,
) -> Vec<Row> {
    let extent = city_extent();
    let vp = Viewport::square_pixels(extent, resolution);
    let max_n = sizes.iter().copied().max().unwrap_or(0);
    let trips = datagen::generate_trips(&extent, max_n, 16, seed);
    // Real administrative boundaries carry hundreds of vertices; PIP
    // baselines pay per vertex, the canvas does not (paper Section 6).
    let zones: AreaSource = Arc::new(datagen::neighborhoods_detailed(
        &extent,
        num_zones,
        150,
        seed + 1,
    ));

    sizes
        .iter()
        .map(|&n| {
            let pickups = &trips.pickups[..n];
            let fares = &trips.fares[..n];
            let batch = PointBatch::with_weights(pickups.to_vec(), fares.to_vec());
            let mut measurements = Vec::new();

            // Traditional plan on CPU: index join + aggregate.
            let t0 = Instant::now();
            let (counts, _, edges) = baseline::aggregate_join_baseline(pickups, fares, &zones);
            let wall = t0.elapsed().as_secs_f64();
            let total: u64 = counts.iter().sum();
            measurements.push(Measurement {
                approach: CPU_SCALAR,
                wall_secs: wall,
                modeled_secs: model_cpu(&DeviceProfile::cpu_scalar(), edges),
                result_count: total as usize,
            });

            // Traditional plan charged to the GPU (join on GPU, then
            // aggregate) — the pre-RasterJoin GPU strategy.
            let mut dev = Device::nvidia();
            dev.pipeline().note_upload((n * 16) as u64);
            dev.pipeline().note_compute_edge_tests(edges);
            measurements.push(Measurement {
                approach: GPU_BASELINE,
                wall_secs: wall,
                modeled_secs: dev.modeled_time(),
                result_count: total as usize,
            });

            // Canvas RasterJoin plan.
            let mut dev = Device::nvidia();
            let t0 = Instant::now();
            let agg = canvas_core::queries::aggregate::aggregate_join_rasterjoin(
                &mut dev, vp, &batch, &zones,
            );
            let wall = t0.elapsed().as_secs_f64();
            let canvas_total: u64 = agg.counts.iter().sum();
            measurements.push(Measurement {
                approach: CANVAS_NVIDIA,
                wall_secs: wall,
                modeled_secs: dev.modeled_time(),
                result_count: canvas_total as usize,
            });

            assert_eq!(total, canvas_total, "plans disagree at n = {n}");
            Row {
                label: format!("{n} points x {num_zones} zones"),
                x: n as f64,
                measurements,
            }
        })
        .collect()
}

/// A2: resolution ablation — the approximate mode of Section 5.1.
/// Returns `(resolution, wall_secs, relative_error)` rows where error is
/// measured against the exact answer (which our conservative+refined
/// pipeline reproduces at any resolution; the *approximate* mode skips
/// refinement).
pub fn resolution_ablation(n: usize, seed: u64) -> Vec<(u32, f64, f64)> {
    let extent = city_extent();
    let points = datagen::taxi_pickups(&extent, n, seed);
    let mbr = BBox::new(Point::new(20.0, 20.0), Point::new(80.0, 80.0));
    let poly = datagen::star_polygon(&mbr, 64, 0.5, seed);
    let exact = baseline::select_scalar(&points, std::slice::from_ref(&poly))
        .records
        .len() as f64;

    [64u32, 128, 256, 512, 1024]
        .iter()
        .map(|&res| {
            let vp = Viewport::square_pixels(extent, res);
            let mut dev = Device::nvidia();
            // Approximate mode: center-sampled polygon, no boundary
            // refinement — count points in covered pixels only.
            let t0 = Instant::now();
            let batch = PointBatch::from_points(points.clone());
            let cp = render_points(&mut dev, vp, &batch);
            let table: AreaSource = Arc::new(vec![poly.clone()]);
            let cy = canvas_core::source::render_polygon_with(
                &mut dev,
                vp,
                &table,
                0,
                Texel::area(1, 1.0, 0.0),
                false, // no conservative boundary tracking
            );
            let merged = blend(&mut dev, &cp, &cy, BlendFn::PointOverArea);
            let approx: f64 = merged
                .non_null()
                .filter(|(_, _, t)| t.has(0) && t.has(2))
                .map(|(_, _, t)| t.get(0).map(|p| p.v1 as f64).unwrap_or(0.0))
                .sum();
            let wall = t0.elapsed().as_secs_f64();
            let err = if exact > 0.0 {
                (approx - exact).abs() / exact
            } else {
                0.0
            };
            (res, wall, err)
        })
        .collect()
}

/// A3: blend-plan ablation — per-record multiway blend (unfused) vs the
/// fused instanced draw the optimizer produces, for a disjunction of
/// `k` constraint polygons. Returns (k, unfused_modeled, fused_modeled).
pub fn blend_ablation(
    n: usize,
    ks: &[usize],
    resolution: u32,
    seed: u64,
) -> Vec<(usize, f64, f64)> {
    let extent = city_extent();
    let points = Arc::new(PointBatch::from_points(datagen::taxi_pickups(
        &extent, n, seed,
    )));
    let vp = Viewport::square_pixels(extent, resolution);
    ks.iter()
        .map(|&k| {
            let mbr = BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0));
            let polys: Vec<Polygon> = (0..k)
                .map(|i| datagen::star_polygon(&mbr, 48, 0.5, seed + i as u64))
                .collect();
            let plan = selection::points_in_polygons_plan(
                points.clone(),
                &polys,
                MultiPolygon::Disjunction,
            );
            // Unfused: evaluate as written (n-1 full-canvas blends).
            let mut dev = Device::nvidia();
            let unfused = plan.clone().eval(&mut dev, vp);
            let unfused_t = dev.modeled_time();
            // Fused: the optimizer's plan.
            let mut dev = Device::nvidia();
            let fused = canvas_core::algebra::optimize(plan).eval(&mut dev, vp);
            let fused_t = dev.modeled_time();
            assert_eq!(unfused.point_records(), fused.point_records());
            (k, unfused_t, fused_t)
        })
        .collect()
}

/// Writes rows as CSV (label, x, then per-approach wall/modeled/speedup).
pub fn write_rows_csv(path: &str, rows: &[Row]) -> std::io::Result<()> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(
        w,
        "label,x,approach,wall_secs,modeled_secs,speedup_over_cpu,result_count"
    )?;
    for row in rows {
        let speedups = row.speedups();
        for (m, (_, sp)) in row.measurements.iter().zip(speedups) {
            writeln!(
                w,
                "{},{},{},{:.6},{:.6},{:.2},{}",
                row.label, row.x, m.approach, m.wall_secs, m.modeled_secs, sp, m.result_count
            )?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_experiment_shapes_hold() {
        // Paper-regime config: enough points and polygon complexity that
        // per-point work (not fixed pass overheads) dominates — that is
        // the regime Figures 9–10 are drawn in.
        let extent = city_extent();
        let points = datagen::taxi_pickups(&extent, 100_000, 11);
        let mbr = BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0));
        let poly = datagen::star_polygon(&mbr, 256, 0.5, 13);
        let ms = run_selection(&points, std::slice::from_ref(&poly), 128);
        let get = |name: &str| ms.iter().find(|m| m.approach == name).unwrap();
        let cpu = get(CPU_SCALAR).modeled_secs;
        let nv = get(CANVAS_NVIDIA).modeled_secs;
        let intel = get(CANVAS_INTEL).modeled_secs;
        let gpub = get(GPU_BASELINE).modeled_secs;
        // Canvas beats the GPU baseline; both GPUs beat CPU by a lot.
        assert!(nv < gpub, "canvas {nv} must beat GPU baseline {gpub}");
        assert!(cpu / nv > 100.0, "nvidia speedup {} too small", cpu / nv);
        assert!(cpu / intel > 10.0, "intel speedup {}", cpu / intel);
        assert!(nv < intel);
    }

    #[test]
    fn figure9_monotone_input_sizes() {
        let rows = figure9(&[2_000, 8_000], 1, 128, 5);
        assert_eq!(rows.len(), 2);
        // Larger inputs cost the CPU more.
        let c0 = rows[0].measurements[0].modeled_secs;
        let c1 = rows[1].measurements[0].modeled_secs;
        assert!(c1 > c0);
    }

    #[test]
    fn multi_constraint_widens_canvas_margin() {
        // Figure 9(c)'s claim: the canvas advantage over the GPU
        // baseline grows with the number of constraints.
        let extent = city_extent();
        let points = datagen::taxi_pickups(&extent, 20_000, 3);
        let mbr = BBox::new(Point::new(15.0, 15.0), Point::new(85.0, 85.0));
        let polys: Vec<Polygon> = (0..2)
            .map(|i| datagen::star_polygon(&mbr, 64, 0.5, 50 + i))
            .collect();
        let one = run_selection(&points, &polys[..1], 128);
        let two = run_selection(&points, &polys, 128);
        let ratio = |ms: &[Measurement]| {
            let gpub = ms
                .iter()
                .find(|m| m.approach == GPU_BASELINE)
                .unwrap()
                .modeled_secs;
            let nv = ms
                .iter()
                .find(|m| m.approach == CANVAS_NVIDIA)
                .unwrap()
                .modeled_secs;
            gpub / nv
        };
        assert!(
            ratio(&two) > ratio(&one),
            "margin must grow: 1-poly {} vs 2-poly {}",
            ratio(&one),
            ratio(&two)
        );
    }

    #[test]
    fn aggregation_plans_agree_and_canvas_wins_modeled() {
        let rows = aggregation_experiment(&[60_000], 24, 128, 7);
        let row = &rows[0];
        let gpub = row
            .measurements
            .iter()
            .find(|m| m.approach == GPU_BASELINE)
            .unwrap()
            .modeled_secs;
        let canvas = row
            .measurements
            .iter()
            .find(|m| m.approach == CANVAS_NVIDIA)
            .unwrap()
            .modeled_secs;
        let cpu = row
            .measurements
            .iter()
            .find(|m| m.approach == CPU_SCALAR)
            .unwrap()
            .modeled_secs;
        // RasterJoin-style plan beats join-then-aggregate on the GPU,
        // and both demolish the CPU plan (paper Section 5.2 / [47]).
        assert!(
            canvas < gpub,
            "canvas {canvas} must beat GPU join+aggregate {gpub}"
        );
        assert!(cpu / canvas > 50.0, "speedup {}", cpu / canvas);
    }

    #[test]
    fn resolution_ablation_error_shrinks() {
        let rows = resolution_ablation(5_000, 9);
        assert_eq!(rows.len(), 5);
        let first_err = rows[0].2;
        let last_err = rows[rows.len() - 1].2;
        assert!(
            last_err <= first_err,
            "error must not grow with resolution: {rows:?}"
        );
        assert!(last_err < 0.05, "high-res error {last_err} too large");
    }

    #[test]
    fn blend_ablation_fusion_wins() {
        let rows = blend_ablation(2_000, &[4], 128, 3);
        let (_, unfused, fused) = rows[0];
        assert!(fused < unfused, "fused {fused} vs unfused {unfused}");
    }
}
