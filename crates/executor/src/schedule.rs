//! Cooperative pass scheduling — the fair gate between concurrent
//! queries sharing one [`WorkerPool`](crate::WorkerPool).
//!
//! Before this module the pool serialized passes behind a plain
//! `Mutex<()>`: whichever thread won the lock ran its pass, and a query
//! issuing many back-to-back passes could starve every other submitter
//! for its whole plan (whole-query head-of-line blocking — precisely
//! what a serving engine cannot afford). The `FairGate` replaces that
//! mutex with an explicit FIFO of waiters tagged by **ticket** (one
//! ticket per in-flight query, see `WorkerPool::register_ticket`) and a
//! bounded **quantum**: a ticket that has been granted
//! [`Policy::pass_quantum`](crate::Policy::pass_quantum) consecutive
//! passes while others wait is skipped in favor of the
//! longest-waiting *different* ticket. Queries therefore interleave at
//! pass granularity — query B's blend pass can run between query A's
//! draw and mask passes — instead of queueing whole-query.
//!
//! The gate only schedules; it never changes what a pass computes, so
//! the executor's determinism contract (results bit-identical at any
//! thread count, any interleaving) is untouched. Grant accounting is
//! exported as [`SchedulerStats`] for the serving bench's fairness
//! fields.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Identifies one logical submitter (usually: one in-flight query) at
/// the pass gate. Ticket 0 is the anonymous default for callers that
/// never registered (single-query use keeps its exact old behavior).
pub type TicketId = u64;

/// A waiter parked at the gate: arrival sequence number + ticket.
#[derive(Clone, Copy, Debug)]
struct Waiter {
    seq: u64,
    ticket: TicketId,
}

/// Grant accounting of a `FairGate` since pool construction.
#[derive(Clone, Debug, Default)]
pub struct SchedulerStats {
    /// Total passes granted through the gate.
    pub grants: u64,
    /// Grants where the ticket differed from the previous grant's —
    /// the pass-interleaving the fair gate exists to produce.
    pub handovers: u64,
    /// Grants issued while at least one other waiter was parked.
    pub contended_grants: u64,
    /// Grants where the quantum forced skipping ahead of an
    /// over-served front waiter.
    pub quantum_preemptions: u64,
    /// High-water mark of simultaneously parked waiters.
    pub max_waiters: usize,
    /// Per-ticket grant counts `(ticket, grants)`, ascending by ticket.
    /// Bounded to the [`MAX_TRACKED_TICKETS`] most recent tickets that
    /// reached the gate (a serving engine registers one ticket per
    /// query forever; the aggregate counters above stay exact while
    /// this table ages out old tickets instead of growing without
    /// bound).
    pub per_ticket: Vec<(TicketId, u64)>,
}

/// Capacity of [`SchedulerStats::per_ticket`]: enough to cover every
/// concurrently-live query with a wide margin, small enough that the
/// sorted-insert bookkeeping under the gate lock stays O(capacity).
pub const MAX_TRACKED_TICKETS: usize = 256;

impl SchedulerStats {
    /// Jain's fairness index over the per-ticket grant counts
    /// (`(Σx)² / (n·Σx²)`; 1.0 = perfectly even). `None` with fewer
    /// than two tickets — fairness of one submitter is meaningless.
    pub fn jain_index(&self) -> Option<f64> {
        if self.per_ticket.len() < 2 {
            return None;
        }
        let sum: f64 = self.per_ticket.iter().map(|&(_, g)| g as f64).sum();
        let sq: f64 = self
            .per_ticket
            .iter()
            .map(|&(_, g)| (g as f64).powi(2))
            .sum();
        if sq == 0.0 {
            return None;
        }
        Some(sum * sum / (self.per_ticket.len() as f64 * sq))
    }
}

struct GateState {
    /// A pass currently holds the gate.
    busy: bool,
    /// Arrival stamper for FIFO order.
    seq_counter: u64,
    /// Parked waiters in arrival order.
    queue: VecDeque<Waiter>,
    /// The waiter (by seq) designated to take the gate next. Set on
    /// release (or on arrival at an idle gate); cleared when taken.
    granted: Option<u64>,
    /// Ticket of the most recent grant, and how many consecutive
    /// grants it has received.
    last_ticket: TicketId,
    consecutive: u64,
    grants: u64,
    handovers: u64,
    contended_grants: u64,
    quantum_preemptions: u64,
    max_waiters: usize,
    /// Sparse per-ticket grant counts (sorted by ticket).
    per_ticket: Vec<(TicketId, u64)>,
}

/// The fair pass gate (see module docs). One per [`WorkerPool`].
pub(crate) struct FairGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

/// Picks the next waiter to grant: FIFO, except a front waiter whose
/// ticket has already been granted `quantum` consecutive passes yields
/// to the longest-waiting *different* ticket (if any). Pure so the
/// policy is unit-testable.
fn pick_next(
    queue: &VecDeque<Waiter>,
    last_ticket: TicketId,
    consecutive: u64,
    quantum: u64,
) -> Option<(u64, bool)> {
    let front = queue.front()?;
    if front.ticket != last_ticket || consecutive < quantum.max(1) {
        return Some((front.seq, false));
    }
    match queue.iter().find(|w| w.ticket != last_ticket) {
        Some(other) => Some((other.seq, true)),
        None => Some((front.seq, false)),
    }
}

impl FairGate {
    pub(crate) fn new() -> Self {
        FairGate {
            state: Mutex::new(GateState {
                busy: false,
                seq_counter: 0,
                queue: VecDeque::new(),
                granted: None,
                last_ticket: 0,
                consecutive: 0,
                grants: 0,
                handovers: 0,
                contended_grants: 0,
                quantum_preemptions: 0,
                max_waiters: 0,
                per_ticket: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until this caller may run a pass; the returned guard
    /// releases the gate (and designates the next grantee) on drop —
    /// including on unwind, so a panicking pass never wedges the gate.
    pub(crate) fn acquire(&self, ticket: TicketId, quantum: u64) -> GateGuard<'_> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = st.seq_counter;
        st.seq_counter += 1;
        st.queue.push_back(Waiter { seq, ticket });
        st.max_waiters = st.max_waiters.max(st.queue.len());
        if !st.busy && st.granted.is_none() {
            // Gate idle: designate immediately (may be an earlier
            // waiter that raced us to the queue).
            if let Some((next, skipped)) =
                pick_next(&st.queue, st.last_ticket, st.consecutive, quantum)
            {
                st.granted = Some(next);
                if skipped {
                    st.quantum_preemptions += 1;
                }
            }
        }
        while st.granted != Some(seq) {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Taken: leave the queue and run.
        if let Some(pos) = st.queue.iter().position(|w| w.seq == seq) {
            st.queue.remove(pos);
        }
        st.granted = None;
        st.busy = true;
        st.grants += 1;
        if !st.queue.is_empty() {
            st.contended_grants += 1;
        }
        if st.grants > 1 && ticket != st.last_ticket {
            st.handovers += 1;
        }
        if ticket == st.last_ticket {
            st.consecutive += 1;
        } else {
            st.last_ticket = ticket;
            st.consecutive = 1;
        }
        match st.per_ticket.binary_search_by_key(&ticket, |&(t, _)| t) {
            Ok(i) => st.per_ticket[i].1 += 1,
            Err(i) => {
                if st.per_ticket.len() >= MAX_TRACKED_TICKETS {
                    // Ticket ids ascend, so index 0 is the oldest
                    // tracked ticket; age it out (the aggregate
                    // counters above remain exact).
                    st.per_ticket.remove(0);
                    let i = st
                        .per_ticket
                        .binary_search_by_key(&ticket, |&(t, _)| t)
                        .unwrap_err();
                    st.per_ticket.insert(i, (ticket, 1));
                } else {
                    st.per_ticket.insert(i, (ticket, 1));
                }
            }
        }
        GateGuard {
            gate: self,
            quantum,
        }
    }

    fn release(&self, quantum: u64) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.busy = false;
        if let Some((next, skipped)) = pick_next(&st.queue, st.last_ticket, st.consecutive, quantum)
        {
            st.granted = Some(next);
            if skipped {
                st.quantum_preemptions += 1;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    pub(crate) fn stats(&self) -> SchedulerStats {
        let st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        SchedulerStats {
            grants: st.grants,
            handovers: st.handovers,
            contended_grants: st.contended_grants,
            quantum_preemptions: st.quantum_preemptions,
            max_waiters: st.max_waiters,
            per_ticket: st.per_ticket.clone(),
        }
    }
}

/// RAII pass permit from [`FairGate::acquire`].
pub(crate) struct GateGuard<'a> {
    gate: &'a FairGate,
    quantum: u64,
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        self.gate.release(self.quantum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(entries: &[(u64, TicketId)]) -> VecDeque<Waiter> {
        entries
            .iter()
            .map(|&(seq, ticket)| Waiter { seq, ticket })
            .collect()
    }

    #[test]
    fn pick_next_is_fifo_within_quantum() {
        let queue = q(&[(10, 1), (11, 2)]);
        // Ticket 1 has used 2 of 4 quantum passes: FIFO front wins.
        assert_eq!(pick_next(&queue, 1, 2, 4), Some((10, false)));
        // A different ticket at the front always wins immediately.
        assert_eq!(pick_next(&queue, 2, 100, 4), Some((10, false)));
    }

    #[test]
    fn pick_next_preempts_exhausted_quantum() {
        let queue = q(&[(10, 1), (11, 1), (12, 2), (13, 1)]);
        // Ticket 1 exhausted its quantum and ticket 2 waits: skip to 2.
        assert_eq!(pick_next(&queue, 1, 4, 4), Some((12, true)));
        // No other ticket waiting: front proceeds anyway (work must
        // never stall just because one submitter is alone).
        let solo = q(&[(10, 1), (11, 1)]);
        assert_eq!(pick_next(&solo, 1, 4, 4), Some((10, false)));
        // Empty queue: nothing to grant.
        assert_eq!(pick_next(&q(&[]), 1, 4, 4), None);
        // A quantum of 0 is treated as 1 (every pass re-arbitrates,
        // never "grant nobody").
        assert_eq!(pick_next(&queue, 1, 1, 0), Some((12, true)));
    }

    #[test]
    fn gate_serializes_and_counts() {
        let gate = FairGate::new();
        {
            let _g = gate.acquire(7, 4);
        }
        {
            let _g = gate.acquire(9, 4);
        }
        let s = gate.stats();
        assert_eq!(s.grants, 2);
        assert_eq!(s.handovers, 1);
        assert_eq!(s.per_ticket, vec![(7, 1), (9, 1)]);
        assert_eq!(s.jain_index(), Some(1.0));
    }

    #[test]
    fn per_ticket_table_ages_out_oldest() {
        let gate = FairGate::new();
        for ticket in 0..(MAX_TRACKED_TICKETS as u64 + 10) {
            let _g = gate.acquire(ticket, 4);
        }
        let s = gate.stats();
        assert_eq!(s.grants, MAX_TRACKED_TICKETS as u64 + 10);
        assert_eq!(s.per_ticket.len(), MAX_TRACKED_TICKETS);
        // The oldest tickets were aged out; the newest remain.
        assert_eq!(s.per_ticket.first().unwrap().0, 10);
        assert_eq!(
            s.per_ticket.last().unwrap().0,
            MAX_TRACKED_TICKETS as u64 + 9
        );
    }

    #[test]
    fn gate_interleaves_two_tickets_under_contention() {
        let gate = std::sync::Arc::new(FairGate::new());
        let mut handles = Vec::new();
        for ticket in [1u64, 2] {
            let gate = std::sync::Arc::clone(&gate);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _g = gate.acquire(ticket, 2);
                    std::hint::black_box(ticket);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = gate.stats();
        assert_eq!(s.grants, 100);
        let grants: Vec<u64> = s.per_ticket.iter().map(|&(_, g)| g).collect();
        assert_eq!(grants.iter().sum::<u64>(), 100);
        assert_eq!(s.per_ticket.len(), 2);
        // Both tickets made progress to completion; the index is defined.
        assert!(s.jain_index().unwrap() > 0.9);
    }
}
