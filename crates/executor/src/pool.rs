//! The persistent worker pool.
//!
//! A [`WorkerPool`] spawns its OS threads **once** (at
//! `Device::cpu_parallel(n)` construction) and keeps them parked on a
//! condvar between passes, so a pipeline of chained canvas operators
//! pays a few microseconds of wake/park latency per pass instead of the
//! tens of microseconds of thread spawn/join that `std::thread::scope`
//! cost at every one of the four fork sites the raster crate used to
//! have. Workers are joined on drop — no detached threads outlive the
//! owning `Device` (asserted by the pool-shutdown leak check, which
//! reads [`live_worker_count`]).
//!
//! ## Execution & determinism contract
//!
//! Every entry point hands workers *indexed* work items through an
//! atomic claim counter and merges outputs **in item order**, so the
//! result of a parallel pass is bit-identical to the sequential run no
//! matter how the scheduler interleaves workers. The calling thread
//! always participates as one of the executors (a pool built with
//! `threads = n` spawns `n - 1` background workers), which is why
//! `WorkerPool::new(1)` spawns nothing and runs everything inline.
//!
//! ## Safety model
//!
//! A pass shares one type-erased `&closure` with the workers and does
//! not return until every worker has finished running it (even when the
//! closure panics), which is the same borrow-validity argument scoped
//! threads make: non-`'static` captures stay alive for the whole pass.

use crate::policy::Policy;
use crate::schedule::{FairGate, SchedulerStats, TicketId};
use canvas_obs as obs;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

std::thread_local! {
    /// The pass ticket the current thread dispatches under (see
    /// [`WorkerPool::with_ticket`]). 0 = the anonymous default ticket.
    static CURRENT_TICKET: std::cell::Cell<TicketId> = const { std::cell::Cell::new(0) };
}

/// Process-wide count of live pool workers (incremented when a worker
/// thread starts, decremented as its last action). The CI leak check
/// asserts this returns to its baseline once a `Device` is dropped.
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Number of pool worker threads currently alive in the process.
pub fn live_worker_count() -> usize {
    LIVE_WORKERS.load(Ordering::SeqCst)
}

/// A type-erased pass closure: `call(ctx)` invokes the caller's
/// `&F where F: Fn() + Sync` once on the worker's thread.
#[derive(Clone, Copy)]
struct Job {
    call: unsafe fn(*const ()),
    ctx: *const (),
    /// Trace context captured at dispatch, so worker-side spans
    /// attribute to the query that submitted the pass (the same
    /// hand-off that carries the fair-gate ticket). The flight
    /// recorder's rings ride this too: a worker's spans land in the
    /// worker thread's own ring stamped with the submitting query's
    /// id, and `obs::flight::collect` reassembles the cross-thread
    /// tree at tail-sampling time.
    obs: obs::Ctx,
}

// SAFETY: `ctx` points at a `F: Fn() + Sync` that outlives the pass
// (the dispatching thread blocks until all workers are done with it),
// and `&F` may be shared across threads because `F: Sync`.
unsafe impl Send for Job {}

struct State {
    /// Bumped once per dispatched pass; workers run the job exactly
    /// once per epoch they observe.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current epoch's job.
    remaining: usize,
    /// Set when any worker's job invocation panicked this epoch.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

/// A persistent fork-join worker pool (see module docs).
///
/// # Examples
///
/// An indexed pass returns its results in item order, bit-identical to
/// the sequential run at any thread count:
///
/// ```
/// use canvas_executor::WorkerPool;
///
/// let pool = WorkerPool::new(4); // this thread + 3 parked workers
/// let squares = pool.run_indexed(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// // Workers are joined when `pool` drops — nothing outlives it.
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes passes — one pass at a time even if many threads
    /// share the handle — but *fairly*: concurrent submitters are
    /// interleaved pass-by-pass under a bounded quantum instead of
    /// whoever wins a mutex (see [`crate::schedule`]).
    pass_gate: FairGate,
    /// Ticket allocator for [`register_ticket`](Self::register_ticket)
    /// (0 is reserved for the anonymous default).
    next_ticket: AtomicU64,
    threads: usize,
    policy: Policy,
    /// Lock-free override of `policy.min_parallel_items` installed by
    /// load-aware recalibration (0 = no override). Lives outside
    /// [`Policy`] so a refresh needs only `&self` and can run
    /// mid-workload without touching the policy the caller configured.
    min_work_override: AtomicUsize,
    /// Passes dispatched since construction — the cadence clock for
    /// periodic recalibration.
    passes: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("policy", &self.policy)
            .finish()
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut my_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if st.shutdown {
                    drop(st);
                    LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                if st.epoch > my_epoch {
                    my_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: the dispatcher keeps the closure alive until
        // `remaining` hits zero, which happens strictly after this call
        // returns (or unwinds into the catch below).
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            obs::trace::with_ctx(job.obs, || {
                let _span = obs::span("pass_worker", "executor");
                unsafe { (job.call)(job.ctx) }
            })
        }));
        let mut st = shared
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if outcome.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

impl WorkerPool {
    /// Builds a pool that executes passes on `threads` concurrent
    /// executors: the calling thread plus `threads - 1` background
    /// workers spawned here, parked between passes, and joined on drop.
    /// `threads <= 1` spawns no threads at all.
    pub fn new(threads: usize) -> Self {
        Self::with_policy(threads, Policy::default())
    }

    /// [`new`](Self::new) with an explicit scheduling policy.
    pub fn with_policy(threads: usize, policy: Policy) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                LIVE_WORKERS.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("canvas-executor-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            pass_gate: FairGate::new(),
            next_ticket: AtomicU64::new(1),
            threads,
            policy,
            min_work_override: AtomicUsize::new(0),
            passes: AtomicU64::new(0),
        }
    }

    /// Allocates a fresh pass-scheduling ticket (one per in-flight
    /// query, typically). Pass it to [`with_ticket`](Self::with_ticket)
    /// around the work that should be fair-shared against other
    /// submitters. Tickets are never reused.
    pub fn register_ticket(&self) -> TicketId {
        self.next_ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Runs `f` with every pass the current thread dispatches to this
    /// (or any) pool attributed to `ticket` at the fair gate. Restores
    /// the previous ticket afterwards (nesting-safe), including on
    /// unwind.
    pub fn with_ticket<R>(&self, ticket: TicketId, f: impl FnOnce() -> R) -> R {
        struct Restore(TicketId);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_TICKET.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_TICKET.with(|c| c.replace(ticket)));
        f()
    }

    /// Grant accounting of the fair pass gate since construction.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.pass_gate.stats()
    }

    /// Concurrent executors of a pass (caller + background workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Background worker threads owned by this pool.
    pub fn worker_count(&self) -> usize {
        self.handles.len()
    }

    /// The scheduling policy every helper consults.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Replaces the policy and drops any recalibration override: an
    /// explicitly configured policy wins until the next recalibration.
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
        self.min_work_override.store(0, Ordering::Relaxed);
    }

    /// True when a pass over `items` work units should fan out (the
    /// centralized minimum-work threshold — see [`Policy`]).
    pub fn should_parallelize(&self, items: usize) -> bool {
        self.worker_count() > 0 && items >= self.effective_min_parallel_items()
    }

    /// The live minimum-work threshold: the recalibration override when
    /// one is installed, the policy value otherwise.
    pub fn effective_min_parallel_items(&self) -> usize {
        match self.min_work_override.load(Ordering::Relaxed) {
            0 => self.policy.min_parallel_items,
            n => n,
        }
    }

    /// Installs a minimum-work override (`&self` — safe to call from a
    /// recalibration probe while queries are in flight). Callers are
    /// expected to pass a value already clamped to the calibration band;
    /// see [`WorkerPool::recalibrate`](crate::calibrate).
    pub fn set_min_work_override(&self, items: usize) {
        self.min_work_override.store(items, Ordering::Relaxed);
    }

    /// Passes dispatched through this pool since construction (counts
    /// inline single-thread passes too).
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Runs `f()` once on the calling thread and once on every
    /// background worker, returning after **all** invocations complete.
    /// `f` typically loops over an atomic claim counter. Panics from any
    /// invocation are re-raised here after the pass has fully quiesced.
    fn run_pass<F: Fn() + Sync>(&self, f: &F) {
        self.passes.fetch_add(1, Ordering::Relaxed);
        if self.handles.is_empty() {
            let _span = obs::span("pass", "executor");
            f();
            return;
        }
        let ticket = CURRENT_TICKET.with(|c| c.get());
        let _gate = {
            let mut wait = obs::span("gate_wait", "executor");
            wait.arg_u64("ticket", ticket);
            self.pass_gate.acquire(ticket, self.policy.pass_quantum)
        };
        let mut pass_span = obs::span("pass", "executor");
        pass_span.arg_u64("ticket", ticket);
        unsafe fn call_erased<F: Fn()>(ctx: *const ()) {
            (*(ctx as *const F))()
        }
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.job = Some(Job {
                call: call_erased::<F>,
                ctx: f as *const F as *const (),
                obs: obs::trace::current_ctx(),
            });
            st.epoch += 1;
            st.remaining = self.handles.len();
            self.shared.work_ready.notify_all();
        }
        // The caller participates; its panic (if any) is deferred until
        // the workers have quiesced so the borrow of `f` stays valid.
        let caller_outcome = catch_unwind(AssertUnwindSafe(f));
        let worker_panicked = {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while st.remaining > 0 {
                st = self
                    .shared
                    .work_done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.job = None;
            std::mem::replace(&mut st.panicked, false)
        };
        if let Err(payload) = caller_outcome {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("executor pool worker panicked");
        }
    }

    /// Like [`run_pass`](Self::run_pass) but the calling thread runs
    /// `caller` (e.g. a streaming merge loop) instead of participating
    /// in `worker_f`. `caller` must do its own panic catching and
    /// return the outcome so the pass can quiesce before unwinding.
    /// Requires at least one background worker.
    pub(crate) fn run_split_pass<F: Fn() + Sync>(
        &self,
        worker_f: &F,
        caller: impl FnOnce() -> std::thread::Result<()>,
    ) {
        assert!(
            !self.handles.is_empty(),
            "split pass needs background workers"
        );
        let ticket = CURRENT_TICKET.with(|c| c.get());
        let _gate = {
            let mut wait = obs::span("gate_wait", "executor");
            wait.arg_u64("ticket", ticket);
            self.pass_gate.acquire(ticket, self.policy.pass_quantum)
        };
        let mut pass_span = obs::span("split_pass", "executor");
        pass_span.arg_u64("ticket", ticket);
        unsafe fn call_erased<F: Fn()>(ctx: *const ()) {
            (*(ctx as *const F))()
        }
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.job = Some(Job {
                call: call_erased::<F>,
                ctx: worker_f as *const F as *const (),
                obs: obs::trace::current_ctx(),
            });
            st.epoch += 1;
            st.remaining = self.handles.len();
            self.shared.work_ready.notify_all();
        }
        let caller_outcome = caller();
        let worker_panicked = {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while st.remaining > 0 {
                st = self
                    .shared
                    .work_done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.job = None;
            std::mem::replace(&mut st.panicked, false)
        };
        if let Err(payload) = caller_outcome {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("executor pool worker panicked");
        }
    }

    /// Runs `f(0..n)` across the pool and returns the results **in item
    /// order**. Items are claimed dynamically (atomic counter), results
    /// are written straight into their slot — no post-pass sort.
    ///
    /// `threads <= 1` (or a single item) runs inline with zero
    /// overhead; the sequential and parallel paths execute the exact
    /// same per-item closure, which is what makes them bit-identical.
    pub fn run_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.handles.is_empty() || n <= 1 {
            return (0..n).map(f).collect();
        }
        let slots = SlotVec::new(n);
        let counter = AtomicUsize::new(0);
        self.run_pass(&|| loop {
            let i = counter.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let value = f(i);
            // SAFETY: `i` was claimed by exactly one executor.
            unsafe { slots.write(i, value) };
        });
        // The pass returned without panicking, so all n slots are
        // initialized.
        slots.into_vec()
    }

    /// Chunk-claiming iteration: the range `0..n` is cut into
    /// `chunk_size`-long chunks which executors claim dynamically. `f`
    /// receives each chunk exactly once; chunks are disjoint and cover
    /// `0..n`. Chunk boundaries are identical at every thread count, so
    /// callers whose per-chunk work is independent get deterministic
    /// results for free.
    pub fn for_each_chunk<F>(&self, n: usize, chunk_size: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let chunk = chunk_size.max(1);
        if self.handles.is_empty() || n <= chunk {
            let mut start = 0;
            while start < n {
                f(start..(start + chunk).min(n));
                start += chunk;
            }
            return;
        }
        let counter = AtomicUsize::new(0);
        self.run_pass(&|| loop {
            let start = counter.fetch_add(1, Ordering::Relaxed) * chunk;
            if start >= n {
                break;
            }
            f(start..(start + chunk).min(n));
        });
    }

    /// Row count per band when splitting `rows` across the executors.
    fn band_rows(&self, rows: usize) -> usize {
        rows.div_ceil(self.threads).max(1)
    }

    /// Splits one plane (`width` texels per row) into horizontal bands
    /// and runs `f(first_row, band)` on each, in parallel. Single-plane
    /// sibling of [`for_each_band2`](Self::for_each_band2).
    pub fn for_each_band1<A, F>(&self, width: usize, a: &mut [A], f: F)
    where
        A: Send,
        F: Fn(usize, &mut [A]) + Sync,
    {
        if width == 0 || a.is_empty() {
            return;
        }
        let rows = a.len() / width;
        let band = self.band_rows(rows) * width;
        if rows <= 1 || !self.should_parallelize(a.len()) {
            for (bi, ba) in a.chunks_mut(band).enumerate() {
                f(bi * band / width, ba);
            }
            return;
        }
        let n = a.len();
        let base = SendPtr(a.as_mut_ptr());
        self.for_each_chunk(n.div_ceil(band), 1, |r| {
            let start = r.start * band;
            let end = (start + band).min(n);
            // SAFETY: band index claimed exactly once ⇒ disjoint &mut
            // sub-slices of `a`, all within bounds.
            let ba = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(start / width, ba);
        });
    }

    /// Splits two parallel planes (equal length, `width` texels per
    /// row) into horizontal bands and runs `f(first_row, band_a,
    /// band_b)` on each band, returning the per-band outputs in
    /// top-to-bottom order. Used by the Mask operator: per-pixel tests
    /// over the texel + cover planes with band-local collection of
    /// refined boundary entries.
    pub fn for_each_band2<A, C, T, F>(&self, width: usize, a: &mut [A], c: &mut [C], f: F) -> Vec<T>
    where
        A: Send,
        C: Send,
        T: Send,
        F: Fn(usize, &mut [A], &mut [C]) -> T + Sync,
    {
        assert_eq!(a.len(), c.len(), "planes must have equal texel counts");
        if width == 0 || a.is_empty() {
            return Vec::new();
        }
        let rows = a.len() / width;
        let band = self.band_rows(rows) * width;
        if rows <= 1 || !self.should_parallelize(a.len()) {
            return a
                .chunks_mut(band)
                .zip(c.chunks_mut(band))
                .enumerate()
                .map(|(bi, (ba, bc))| f(bi * band / width, ba, bc))
                .collect();
        }
        let n = a.len();
        let n_bands = n.div_ceil(band);
        let pa = SendPtr(a.as_mut_ptr());
        let pc = SendPtr(c.as_mut_ptr());
        let slots = SlotVec::new(n_bands);
        let counter = AtomicUsize::new(0);
        self.run_pass(&|| loop {
            let bi = counter.fetch_add(1, Ordering::Relaxed);
            if bi >= n_bands {
                break;
            }
            let start = bi * band;
            let end = (start + band).min(n);
            // SAFETY: band index claimed exactly once ⇒ disjoint &mut
            // sub-slices; slot `bi` written exactly once.
            let (ba, bc) = unsafe {
                (
                    std::slice::from_raw_parts_mut(pa.get().add(start), end - start),
                    std::slice::from_raw_parts_mut(pc.get().add(start), end - start),
                )
            };
            let out = f(start / width, ba, bc);
            unsafe { slots.write(bi, out) };
        });
        slots.into_vec()
    }

    /// Band-parallel in-place combine of `dst` with a same-length
    /// read-only `src` (the full-screen Blend pass). `f` receives
    /// aligned chunks of `band_len` items (last chunk may be shorter).
    pub fn for_each_band_pair<D, S, F>(&self, band_len: usize, dst: &mut [D], src: &[S], f: F)
    where
        D: Send,
        S: Sync,
        F: Fn(&mut [D], &[S]) + Sync,
    {
        assert_eq!(dst.len(), src.len(), "planes must have equal texel counts");
        let band = band_len.max(1);
        if dst.len() <= band || !self.should_parallelize(dst.len()) {
            for (d, s) in dst.chunks_mut(band).zip(src.chunks(band)) {
                f(d, s);
            }
            return;
        }
        let n = dst.len();
        let pd = SendPtr(dst.as_mut_ptr());
        self.for_each_chunk(n.div_ceil(band), 1, |r| {
            let start = r.start * band;
            let end = (start + band).min(n);
            // SAFETY: chunk index claimed exactly once ⇒ disjoint &mut
            // sub-slices of `dst`; `src` is only read.
            let d = unsafe { std::slice::from_raw_parts_mut(pd.get().add(start), end - start) };
            f(d, &src[start..end]);
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker only panics outside a job if the pool's own state
            // handling is broken; surface that loudly.
            h.join().expect("pool worker exited abnormally");
        }
    }
}

/// Raw pointer wrapper so disjoint `&mut` sub-slices can be carved out
/// on worker threads. Soundness is the caller's obligation: every index
/// region must be claimed by exactly one executor.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the raw pointer inside it — edition-2021
    /// disjoint capture would otherwise pull out the bare `*mut T`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Write-once result slots indexed by work item — the deterministic
/// merge primitive (each executor writes the slots it claimed; the
/// dispatcher reads them all afterwards, in order).
struct SlotVec<T> {
    /// `Option` rather than `MaybeUninit` so the ordinary `Drop` frees
    /// whatever was produced when a pass panics mid-way — the pool
    /// survives panicked passes and is reused, so results from the
    /// non-panicking executors must not leak.
    slots: Vec<std::cell::UnsafeCell<Option<T>>>,
}

// SAFETY: slots are only written through `write` with unique indices
// (caller contract) and only read after the pass quiesces.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T> SlotVec<T> {
    fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || std::cell::UnsafeCell::new(None));
        SlotVec { slots }
    }

    /// SAFETY: each index must be written at most once, with no
    /// concurrent reads.
    unsafe fn write(&self, i: usize, value: T) {
        *self.slots[i].get() = Some(value);
    }

    /// Consumes the slots in index order. Panics on an unfilled slot —
    /// only reachable if a pass was miscounted, since every claimed
    /// index writes exactly once and the pass quiesces first.
    fn into_vec(self) -> Vec<T> {
        self.slots
            .into_iter()
            .map(|c| c.into_inner().expect("pass left a result slot unfilled"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_order_is_deterministic() {
        let pool = WorkerPool::new(4);
        let seq: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(pool.run_indexed(100, |i| i * i), seq);
        assert_eq!(pool.run_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run_indexed(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn single_thread_pool_spawns_no_workers() {
        let before = live_worker_count();
        let pool = WorkerPool::new(1);
        assert_eq!(pool.worker_count(), 0);
        assert_eq!(live_worker_count(), before);
        assert_eq!(pool.run_indexed(10, |i| i), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_reusable_across_many_passes() {
        let pool = WorkerPool::new(3);
        for pass in 0..50usize {
            let out = pool.run_indexed(17, |i| i + pass);
            assert_eq!(out, (pass..pass + 17).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunks_cover_range_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_chunk(103, 10, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn band_helpers_match_inline_reference() {
        // Use a zero threshold so small planes exercise the threaded
        // path too.
        let policy = Policy {
            min_parallel_items: 0,
            ..Policy::default()
        };
        let pool = WorkerPool::with_policy(4, policy);
        let width = 8;
        let rows = 13;
        let mut a = vec![0u32; width * rows];
        let mut c = vec![0u16; width * rows];
        let starts = pool.for_each_band2(width, &mut a, &mut c, |row0, ba, bc| {
            for v in ba.iter_mut() {
                *v += 1;
            }
            for v in bc.iter_mut() {
                *v += 1;
            }
            (row0, ba.len())
        });
        assert!(a.iter().all(|&v| v == 1));
        assert!(c.iter().all(|&v| v == 1));
        let mut expect_row = 0;
        for (row0, len) in starts {
            assert_eq!(row0, expect_row);
            expect_row += len / width;
        }
        assert_eq!(expect_row, rows);

        let mut b1 = vec![0u64; width * rows];
        pool.for_each_band1(width, &mut b1, |_, band| {
            for v in band.iter_mut() {
                *v += 1;
            }
        });
        assert!(b1.iter().all(|&v| v == 1));

        let src: Vec<u32> = (0..100).collect();
        let mut dst = vec![1u32; 100];
        pool.for_each_band_pair(17, &mut dst, &src, |d, s| {
            for (dv, sv) in d.iter_mut().zip(s) {
                *dv += *sv;
            }
        });
        let want: Vec<u32> = (0..100).map(|i| i + 1).collect();
        assert_eq!(dst, want);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool is still usable after a panicked pass.
        assert_eq!(pool.run_indexed(4, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn drop_joins_all_workers() {
        let before = live_worker_count();
        {
            let pool = WorkerPool::new(5);
            assert_eq!(pool.worker_count(), 4);
            assert_eq!(live_worker_count(), before + 4);
            let _ = pool.run_indexed(10, |i| i);
        }
        assert_eq!(live_worker_count(), before, "workers leaked after drop");
    }

    #[test]
    fn concurrent_tickets_interleave_passes_fairly() {
        let pool = Arc::new(WorkerPool::new(4));
        let mut clients = Vec::new();
        for _ in 0..3 {
            let pool = Arc::clone(&pool);
            clients.push(std::thread::spawn(move || {
                let ticket = pool.register_ticket();
                pool.with_ticket(ticket, || {
                    for pass in 0..40usize {
                        let out = pool.run_indexed(8, |i| i + pass);
                        assert_eq!(out, (pass..pass + 8).collect::<Vec<_>>());
                    }
                });
                ticket
            }));
        }
        let tickets: Vec<u64> = clients.into_iter().map(|h| h.join().unwrap()).collect();
        let stats = pool.scheduler_stats();
        assert_eq!(stats.grants, 120);
        for t in &tickets {
            let granted = stats
                .per_ticket
                .iter()
                .find(|&&(id, _)| id == *t)
                .map(|&(_, g)| g)
                .unwrap_or(0);
            assert_eq!(granted, 40, "every client's passes reach the gate");
        }
        // Three clients all finished: grants are perfectly even, so the
        // fairness index is 1 by construction; the interesting signal
        // is that the gate changed hands at all (no whole-query
        // head-of-line blocking).
        assert_eq!(stats.jain_index(), Some(1.0));
        assert!(stats.handovers >= 2, "tickets never interleaved");
    }

    #[test]
    fn with_ticket_restores_previous_ticket() {
        let pool = WorkerPool::new(2);
        let a = pool.register_ticket();
        let b = pool.register_ticket();
        assert_ne!(a, b);
        pool.with_ticket(a, || {
            pool.with_ticket(b, || {
                let _ = pool.run_indexed(4, |i| i);
            });
            // Nested scope restored the outer ticket.
            let _ = pool.run_indexed(4, |i| i);
        });
        let stats = pool.scheduler_stats();
        let get = |t: u64| {
            stats
                .per_ticket
                .iter()
                .find(|&&(id, _)| id == t)
                .map(|&(_, g)| g)
                .unwrap_or(0)
        };
        assert_eq!(get(a), 1);
        assert_eq!(get(b), 1);
    }

    #[test]
    fn min_work_threshold_runs_inline() {
        let pool = WorkerPool::new(4);
        assert!(!pool.should_parallelize(100));
        assert!(pool.should_parallelize(1 << 16));
        // Below the threshold the bands still cover everything.
        let mut a = vec![0u8; 64];
        pool.for_each_band1(8, &mut a, |_, band| {
            for v in band.iter_mut() {
                *v += 1;
            }
        });
        assert!(a.iter().all(|&v| v == 1));
    }
}
