//! # canvas-executor
//!
//! The **persistent execution substrate** of the canvas-algebra
//! workspace: a std-only worker pool that is spawned once per `Device`,
//! kept hot across operator chains, and joined on drop.
//!
//! The paper's algebra is fast because every operator decomposes into
//! uniform data-parallel passes over canvases; resident engines like
//! SPADE show that the win survives only if per-pass launch latency is
//! tiny. Before this crate, every parallel pass forked and joined fresh
//! OS threads (`std::thread::scope`); now passes are dispatched to
//! parked workers through a condvar — microseconds instead of tens of
//! microseconds, measured by `bench_baseline`'s
//! `pool_dispatch_ns_per_pass` vs `scoped_spawn_ns_per_pass`.
//!
//! Three execution shapes, all with the same determinism contract
//! (outputs merged in item order ⇒ parallel runs are bit-identical to
//! sequential at any thread count):
//!
//! * [`WorkerPool::run_indexed`] — indexed fork-join with in-order
//!   results (tile binning, tile rasterization),
//! * [`WorkerPool::for_each_chunk`] / `for_each_band*` — chunk-claiming
//!   in-place passes over planes (Blend, Mask, Value Transform),
//! * [`WorkerPool::run_streaming`] — bounded-window produce/merge
//!   pipelining (the streaming tile merge; peak memory capped by
//!   [`Policy::stream_window`]).
//!
//! All scheduling tunables live in one [`Policy`] so every operator
//! shares a single knob set.

pub mod policy;
pub mod pool;
pub mod stream;

pub use policy::{Policy, MIN_PARALLEL_ITEMS};
pub use pool::{live_worker_count, WorkerPool};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn streaming_merges_in_order_and_matches_sequential() {
        let pool = WorkerPool::new(4);
        let mut merged = Vec::new();
        pool.run_streaming(100, |i| i * 3, |i, v| merged.push((i, v)));
        let want: Vec<(usize, usize)> = (0..100).map(|i| (i, i * 3)).collect();
        assert_eq!(merged, want);
    }

    #[test]
    fn streaming_sequential_fallback() {
        let pool = WorkerPool::new(1);
        let mut merged = Vec::new();
        pool.run_streaming(10, |i| i, |i, v| merged.push((i, v)));
        assert_eq!(merged.len(), 10);
        assert!(merged
            .iter()
            .enumerate()
            .all(|(k, &(i, v))| k == i && v == i));
    }

    #[test]
    fn streaming_bounds_in_flight_items() {
        // Track the high-water mark of produced-but-unmerged items; it
        // must respect the policy window (+1 for the item being merged).
        let policy = Policy {
            stream_window_per_worker: 1,
            ..Policy::default()
        };
        let pool = WorkerPool::with_policy(4, policy);
        let window = pool.policy().stream_window(pool.worker_count());
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run_streaming(
            200,
            |i| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                i
            },
            |_, _| {
                live.fetch_sub(1, Ordering::SeqCst);
            },
        );
        let peak = peak.load(Ordering::SeqCst);
        assert!(
            peak <= window + 1,
            "peak in-flight {peak} exceeds window {window}+1"
        );
    }

    #[test]
    fn streaming_producer_panic_propagates() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_streaming(
                50,
                |i| {
                    if i == 20 {
                        panic!("producer boom");
                    }
                    i
                },
                |_, _| {},
            );
        }));
        assert!(result.is_err());
        // Pool still healthy afterwards.
        let mut n = 0;
        pool.run_streaming(5, |i| i, |_, _| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn streaming_merge_panic_propagates() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_streaming(
                50,
                |i| i,
                |i, _| {
                    if i == 10 {
                        panic!("merge boom");
                    }
                },
            );
        }));
        assert!(result.is_err());
        let mut n = 0;
        pool.run_streaming(5, |i| i, |_, _| n += 1);
        assert_eq!(n, 5);
    }
}
