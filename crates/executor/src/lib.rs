//! # canvas-executor
//!
//! The **persistent execution substrate** of the canvas-algebra
//! workspace: a std-only worker pool that is spawned once per `Device`,
//! kept hot across operator chains, and joined on drop.
//!
//! The paper's algebra is fast because every operator decomposes into
//! uniform data-parallel passes over canvases; resident engines like
//! SPADE show that the win survives only if per-pass launch latency is
//! tiny. Before this crate, every parallel pass forked and joined fresh
//! OS threads (`std::thread::scope`); now passes are dispatched to
//! parked workers through a condvar — microseconds instead of tens of
//! microseconds, measured by `bench_baseline`'s
//! `pool_dispatch_ns_per_pass` vs `scoped_spawn_ns_per_pass`.
//!
//! Four execution shapes, all with the same determinism contract
//! (outputs merged in item order ⇒ parallel runs are bit-identical to
//! sequential at any thread count):
//!
//! * [`WorkerPool::run_indexed`] — indexed fork-join with in-order
//!   results (tile binning, tile rasterization),
//! * [`WorkerPool::for_each_chunk`] / `for_each_band*` — chunk-claiming
//!   in-place passes over planes (Blend, Mask, Value Transform),
//! * [`WorkerPool::run_streaming`] — bounded-window produce/merge
//!   pipelining (the streaming tile merge; peak memory capped by
//!   [`Policy::stream_window`]),
//! * [`WorkerPool::run_streaming_chain`] — the multi-stage
//!   generalization: every produced item flows through a sequence of
//!   per-item transform stages (fused operator chains — a tile rendered
//!   by one worker can be blended/masked by another while later tiles
//!   are still rasterizing), still claim-gated and merged in order.
//!
//! All scheduling tunables live in one [`Policy`] so every operator
//! shares a single knob set.
//!
//! Passes from **concurrent submitters** (a serving engine's queries)
//! serialize on a *fair* gate rather than a plain mutex: callers tag
//! their work with a ticket ([`WorkerPool::register_ticket`] /
//! [`WorkerPool::with_ticket`]) and the gate interleaves tickets
//! pass-by-pass under a bounded quantum
//! ([`Policy::pass_quantum`](policy::Policy::pass_quantum)) — no
//! whole-query head-of-line blocking; accounting in [`SchedulerStats`].
//! The minimum-work threshold can be **calibrated** per host from the
//! measured dispatch latency ([`WorkerPool::calibrate`]).

pub mod calibrate;
pub mod policy;
pub mod pool;
pub mod schedule;
pub mod stream;

pub use calibrate::{calibrate_min_work, Calibration};
pub use policy::{Policy, MIN_PARALLEL_ITEMS, PASS_QUANTUM};
pub use pool::{live_worker_count, WorkerPool};
pub use schedule::{SchedulerStats, TicketId};
pub use stream::{ChainStage, StreamReport};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn streaming_merges_in_order_and_matches_sequential() {
        let pool = WorkerPool::new(4);
        let mut merged = Vec::new();
        pool.run_streaming(100, |i| i * 3, |i, v| merged.push((i, v)));
        let want: Vec<(usize, usize)> = (0..100).map(|i| (i, i * 3)).collect();
        assert_eq!(merged, want);
    }

    #[test]
    fn streaming_sequential_fallback() {
        let pool = WorkerPool::new(1);
        let mut merged = Vec::new();
        pool.run_streaming(10, |i| i, |i, v| merged.push((i, v)));
        assert_eq!(merged.len(), 10);
        assert!(merged
            .iter()
            .enumerate()
            .all(|(k, &(i, v))| k == i && v == i));
    }

    #[test]
    fn streaming_bounds_in_flight_items() {
        // Track the high-water mark of produced-but-unmerged items; it
        // must respect the policy window (+1 for the item being merged).
        let policy = Policy {
            stream_window_per_worker: 1,
            ..Policy::default()
        };
        let pool = WorkerPool::with_policy(4, policy);
        let window = pool.policy().stream_window(pool.worker_count());
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run_streaming(
            200,
            |i| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                i
            },
            |_, _| {
                live.fetch_sub(1, Ordering::SeqCst);
            },
        );
        let peak = peak.load(Ordering::SeqCst);
        assert!(
            peak <= window + 1,
            "peak in-flight {peak} exceeds window {window}+1"
        );
    }

    #[test]
    fn streaming_producer_panic_propagates() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_streaming(
                50,
                |i| {
                    if i == 20 {
                        panic!("producer boom");
                    }
                    i
                },
                |_, _| {},
            );
        }));
        assert!(result.is_err());
        // Pool still healthy afterwards.
        let mut n = 0;
        pool.run_streaming(5, |i| i, |_, _| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn streaming_window_one_completes() {
        // A clamped window of 1 (per-worker factor 0) fully serializes
        // produce→merge but must never deadlock the claim gate.
        let policy = Policy {
            stream_window_per_worker: 0,
            ..Policy::default()
        };
        for threads in [2usize, 4, 8] {
            let pool = WorkerPool::with_policy(threads, policy);
            assert_eq!(pool.policy().stream_window(pool.worker_count()), 1);
            let mut merged = Vec::new();
            let report = pool.run_streaming_chain(
                64,
                |i| i + 1,
                &[&|_i: usize, v: &mut usize| *v *= 2],
                |i, v| merged.push((i, v)),
            );
            let want: Vec<(usize, usize)> = (0..64).map(|i| (i, (i + 1) * 2)).collect();
            assert_eq!(merged, want, "at {threads} threads");
            assert_eq!(
                report.peak_in_flight, 1,
                "window-1 run exceeded one live item"
            );
        }
    }

    #[test]
    fn streaming_window_larger_than_item_count() {
        // Window ≥ n: every item may be claimed immediately; merge
        // order must still be ascending.
        let policy = Policy {
            stream_window_per_worker: 64,
            ..Policy::default()
        };
        let pool = WorkerPool::with_policy(4, policy);
        let window = pool.policy().stream_window(pool.worker_count());
        assert!(window >= 10);
        let mut merged = Vec::new();
        let report = pool.run_streaming_chain(10, |i| i, &[], |i, v| merged.push((i, v)));
        assert_eq!(merged, (0..10).map(|i| (i, i)).collect::<Vec<_>>());
        assert!(report.peak_in_flight <= 10);
    }

    #[test]
    fn streaming_zero_and_single_item_passes() {
        // n = 0 and n = 1 take the inline path at every thread count.
        for threads in [1usize, 3] {
            let pool = WorkerPool::new(threads);
            let mut merged = Vec::new();
            let report = pool.run_streaming_chain(
                0,
                |i| i,
                &[&|_i: usize, v: &mut usize| *v += 1],
                |i, v| merged.push((i, v)),
            );
            assert!(merged.is_empty());
            assert_eq!(report.peak_in_flight, 0);
            let report = pool.run_streaming_chain(
                1,
                |i| i + 7,
                &[&|_i: usize, v: &mut usize| *v += 1],
                |i, v| merged.push((i, v)),
            );
            assert_eq!(merged, vec![(0, 8)]);
            assert_eq!(report.peak_in_flight, 1);
        }
    }

    #[test]
    fn chain_matches_sequential_composition() {
        // Multi-stage hand-off: any thread count, any stage depth, the
        // result equals the inline produce→stages→merge loop.
        let stage_a = |i: usize, v: &mut u64| *v = *v * 3 + i as u64;
        let stage_b = |_i: usize, v: &mut u64| *v ^= 0x5DEECE66D;
        let stage_c = |i: usize, v: &mut u64| *v = v.rotate_left((i % 7) as u32);
        let stages: Vec<ChainStage<u64>> = vec![&stage_a, &stage_b, &stage_c];
        let mut want = Vec::new();
        for i in 0..200usize {
            let mut v = (i as u64).wrapping_mul(0x9E3779B9);
            for s in &stages {
                s(i, &mut v);
            }
            want.push((i, v));
        }
        for threads in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let mut merged = Vec::new();
            let report = pool.run_streaming_chain(
                200,
                |i| (i as u64).wrapping_mul(0x9E3779B9),
                &stages,
                |i, v| merged.push((i, v)),
            );
            assert_eq!(merged, want, "at {threads} threads");
            assert_eq!(report.items, 200);
            let window = pool.policy().stream_window(pool.worker_count());
            assert!(
                report.peak_in_flight <= window.max(1),
                "peak {} exceeds window {} at {threads} threads",
                report.peak_in_flight,
                window
            );
        }
    }

    #[test]
    fn chain_bounds_live_items_under_skew() {
        // Claimed-but-unmerged items must respect the claim window even
        // when stage work piles up behind a slow merge frontier.
        let policy = Policy {
            stream_window_per_worker: 1,
            ..Policy::default()
        };
        let pool = WorkerPool::with_policy(4, policy);
        let window = pool.policy().stream_window(pool.worker_count());
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let stage = |_i: usize, _v: &mut usize| {
            // Let other executors race ahead while an item sits in a
            // stage, maximizing pressure on the gate.
            std::thread::yield_now();
        };
        let stages: Vec<ChainStage<usize>> = vec![&stage, &stage];
        let report = pool.run_streaming_chain(
            300,
            |i| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                i
            },
            &stages,
            |_, _| {
                live.fetch_sub(1, Ordering::SeqCst);
            },
        );
        let observed = peak.load(Ordering::SeqCst);
        assert!(
            observed <= window,
            "observed peak {observed} exceeds window {window}"
        );
        // The gate samples claimed-but-unmerged at claim time, which
        // dominates the produce-side live count.
        assert!(observed <= report.peak_in_flight);
        assert!(report.peak_in_flight <= window);
    }

    #[test]
    fn chain_stage_panic_propagates() {
        let pool = WorkerPool::new(3);
        let stage = |i: usize, _v: &mut usize| {
            if i == 17 {
                panic!("stage boom");
            }
        };
        let stages: Vec<ChainStage<usize>> = vec![&stage];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_streaming_chain(50, |i| i, &stages, |_, _| {});
        }));
        assert!(result.is_err());
        // Pool still healthy afterwards.
        let mut n = 0;
        pool.run_streaming(5, |i| i, |_, _| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn streaming_merge_panic_propagates() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_streaming(
                50,
                |i| i,
                |i, _| {
                    if i == 10 {
                        panic!("merge boom");
                    }
                },
            );
        }));
        assert!(result.is_err());
        let mut n = 0;
        pool.run_streaming(5, |i| i, |_, _| n += 1);
        assert_eq!(n, 5);
    }
}
