//! The pool's scheduling policy — every tunable in one place.
//!
//! Before the executor existed, each band helper in `raster::par`
//! carried its own copy of the minimum-work threshold; centralizing the
//! knobs here means every canvas operator (Blend, Mask, Value
//! Transform, scatter, the tiled draws) shares one tuning surface.

/// Default for [`Policy::min_parallel_items`]. Below this many texels a
/// full-screen pass runs inline: waking pool workers (a few
/// microseconds per pass — far cheaper than OS-thread spawn, but not
/// free) would exceed the work itself on small planes such as 64×64
/// group viewports. The decomposition is deterministic either way, so
/// the threshold can never affect results, only wall clock.
pub const MIN_PARALLEL_ITEMS: usize = 1 << 16;

/// Default for [`Policy::stream_window_per_worker`].
pub const STREAM_WINDOW_PER_WORKER: usize = 2;

/// Default for [`Policy::pass_quantum`]: how many consecutive passes
/// one ticket may be granted at the fair gate while other tickets
/// wait, before the scheduler hands the gate to the longest-waiting
/// different ticket. Small enough that a concurrent query never sits
/// behind more than a few operator passes of another plan; large
/// enough that a query's tightly-coupled pass bursts (bin → draw →
/// blit) usually stay together.
pub const PASS_QUANTUM: u64 = 4;

/// Tunables consulted by every [`WorkerPool`](crate::WorkerPool)
/// scheduling decision.
///
/// # Examples
///
/// Override one knob and keep the rest at their defaults:
///
/// ```
/// use canvas_executor::{Policy, WorkerPool};
///
/// let policy = Policy {
///     min_parallel_items: 1 << 12, // parallelize smaller passes
///     ..Policy::default()
/// };
/// // Streaming passes bound their in-flight items per worker.
/// assert_eq!(policy.stream_window(4), 4 * policy.stream_window_per_worker);
/// let pool = WorkerPool::with_policy(2, policy);
/// assert!(pool.should_parallelize(1 << 12));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Policy {
    /// Full-screen passes over fewer items than this run inline on the
    /// calling thread (see [`MIN_PARALLEL_ITEMS`]). Consulted via
    /// `WorkerPool::should_parallelize` by the band helpers, whose
    /// items are texels; the coarse-item passes (`run_indexed`,
    /// `for_each_chunk`, `run_streaming`) gate only on `n <= 1` and
    /// leave granularity to their callers.
    pub min_parallel_items: usize,
    /// Streaming passes allow at most `window_per_worker × workers`
    /// produced-but-unmerged items in flight (claim-gated), which is
    /// what caps peak memory of the streaming tile merge.
    pub stream_window_per_worker: usize,
    /// Fair-gate quantum: consecutive passes one ticket may hold the
    /// gate for while other tickets wait (see
    /// [`SchedulerStats`](crate::SchedulerStats) and [`PASS_QUANTUM`]).
    /// 0 is treated as 1 — every pass re-arbitrates.
    pub pass_quantum: u64,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            min_parallel_items: MIN_PARALLEL_ITEMS,
            stream_window_per_worker: STREAM_WINDOW_PER_WORKER,
            pass_quantum: PASS_QUANTUM,
        }
    }
}

impl Policy {
    /// In-flight window (in items) for a streaming pass on `workers`
    /// concurrent producers. Never below 1: a window of 0 would
    /// deadlock the claim gate (no item could ever be claimed past the
    /// merge frontier), so a misconfigured
    /// [`stream_window_per_worker`](Self::stream_window_per_worker) of
    /// 0 is clamped to a window of 1 — fully serialized produce→merge,
    /// slow but correct — instead of hanging. With the default
    /// per-worker factor the window is at least 2, so a producer can
    /// always run one item ahead of the merger.
    pub fn stream_window(&self, workers: usize) -> usize {
        (self.stream_window_per_worker * workers.max(1)).max(1)
    }

    /// Per-stage in-flight window for a fused operator chain
    /// (`WorkerPool::run_streaming_chain`): the most items any one
    /// stage hand-off queue may hold. The total claim gate already
    /// bounds live items to [`stream_window`](Self::stream_window), and
    /// executors drain deeper stages first, so each stage queue stays
    /// within the same bound; the chain gate takes this value and
    /// debug-asserts it at every stage hand-off.
    pub fn chain_stage_window(&self, workers: usize) -> usize {
        self.stream_window(workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_constants() {
        let p = Policy::default();
        assert_eq!(p.min_parallel_items, MIN_PARALLEL_ITEMS);
        assert_eq!(p.pass_quantum, PASS_QUANTUM);
        assert_eq!(p.stream_window(4), 8);
        assert_eq!(p.stream_window(0), 2);
        assert_eq!(p.chain_stage_window(4), p.stream_window(4));
    }

    #[test]
    fn zero_window_clamped_not_deadlocking() {
        // A per-worker window factor of 0 would make the claim gate
        // admit nothing; it must clamp to 1 (serialized but correct),
        // never to 0.
        let p = Policy {
            stream_window_per_worker: 0,
            ..Policy::default()
        };
        assert_eq!(p.stream_window(1), 1);
        assert_eq!(p.stream_window(8), 1);
        assert_eq!(p.chain_stage_window(8), 1);
    }
}
