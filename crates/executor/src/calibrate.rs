//! Startup calibration of the minimum-work threshold.
//!
//! [`Policy::min_parallel_items`](crate::Policy::min_parallel_items) answers "how many texels must a
//! full-screen pass touch before waking the pool pays off?". The static
//! default ([`crate::MIN_PARALLEL_ITEMS`]) bakes in one assumed
//! dispatch latency, but real wake/park cost varies an order of
//! magnitude across hosts (core count, condvar implementation, CPU
//! frequency scaling). [`calibrate_min_work`] measures both sides of
//! the trade on the live pool — the fork/join latency of an empty pass
//! and the per-texel cost of a representative full-screen rewrite —
//! and derives the break-even item count:
//!
//! ```text
//! fan-out wins when  items · per_item · (1 − 1/threads)  >  dispatch
//! ⇒  min_items ≈ dispatch_ns / (per_item_ns · (1 − 1/threads))
//! ```
//!
//! The derived value is clamped to a sane band and the static default
//! is kept as the fallback whenever measurement is impossible (no
//! workers) or degenerate (zero timings on coarse clocks). Calibration
//! only moves a wall-clock knob; the decomposition is deterministic
//! either way, so results can never depend on it.

use crate::pool::WorkerPool;
use std::time::Instant;

/// Derived values never leave this band: below 4Ki texels even an
/// optimistic dispatch estimate is noise-dominated; above 1Mi the pool
/// would practically never engage on interactive canvases.
pub const MIN_WORK_FLOOR: usize = 1 << 12;
pub const MIN_WORK_CEIL: usize = 1 << 20;

/// Outcome of [`calibrate_min_work`].
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Measured empty-pass fork/join latency (pool wake → quiesce).
    pub dispatch_ns_per_pass: f64,
    /// Measured per-item cost of the reference full-screen rewrite.
    pub per_item_ns: f64,
    /// The break-even threshold derived from the two (clamped).
    pub derived_min_parallel_items: usize,
    /// False when measurement was impossible/degenerate and the static
    /// default should stand.
    pub applied: bool,
}

/// Measures dispatch latency and per-item cost on `pool` and returns
/// the derived [`Policy::min_parallel_items`](crate::Policy::min_parallel_items) (see module docs). Does
/// **not** mutate the pool — use [`WorkerPool::calibrate`] for the
/// measure-and-apply form.
pub fn calibrate_min_work(pool: &WorkerPool) -> Calibration {
    let fallback = |dispatch, per_item| Calibration {
        dispatch_ns_per_pass: dispatch,
        per_item_ns: per_item,
        derived_min_parallel_items: pool.policy().min_parallel_items,
        applied: false,
    };
    let threads = pool.threads();
    if pool.worker_count() == 0 {
        // Nothing ever fans out on a 1-thread pool; the threshold is moot.
        return fallback(0.0, 0.0);
    }

    // Empty-pass fork/join latency (warm the park/wake paths first).
    const WARMUP: usize = 20;
    const PASSES: usize = 200;
    for _ in 0..WARMUP {
        let _ = pool.run_indexed(threads, |i| i);
    }
    let t0 = Instant::now();
    for _ in 0..PASSES {
        let _ = pool.run_indexed(threads, |i| i);
    }
    let dispatch_ns = t0.elapsed().as_nanos() as f64 / PASSES as f64;

    // Per-item cost of a representative full-screen rewrite (a cheap
    // read-modify-write per texel), measured inline on this thread.
    const ITEMS: usize = 1 << 16;
    const REPS: usize = 4;
    let mut plane = vec![1u64; ITEMS];
    let t0 = Instant::now();
    for r in 0..REPS {
        for (i, t) in plane.iter_mut().enumerate() {
            *t = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64 + r as u64);
        }
        std::hint::black_box(&mut plane);
    }
    let per_item_ns = t0.elapsed().as_nanos() as f64 / (ITEMS * REPS) as f64;

    if dispatch_ns <= 0.0 || per_item_ns <= 0.0 {
        return fallback(dispatch_ns, per_item_ns);
    }
    let saved_fraction = 1.0 - 1.0 / threads as f64;
    let derived = (dispatch_ns / (per_item_ns * saved_fraction)).ceil() as usize;
    Calibration {
        dispatch_ns_per_pass: dispatch_ns,
        per_item_ns,
        derived_min_parallel_items: derived.clamp(MIN_WORK_FLOOR, MIN_WORK_CEIL),
        applied: true,
    }
}

impl WorkerPool {
    /// Measures this host once and replaces
    /// [`Policy::min_parallel_items`](crate::Policy::min_parallel_items) with the derived break-even value
    /// (static default kept when measurement is degenerate). Returns
    /// the measurement either way so callers can record it.
    pub fn calibrate(&mut self) -> Calibration {
        let c = calibrate_min_work(self);
        if c.applied {
            let mut p = *self.policy();
            p.min_parallel_items = c.derived_min_parallel_items;
            self.set_policy(p);
        }
        c
    }

    /// Load-aware refresh of the minimum-work threshold: re-derives the
    /// break-even item count from a *fresh* per-item measurement (the
    /// caller typically times a representative SIMD kernel row, so the
    /// threshold tracks the active vector width) against a dispatch
    /// latency measured earlier — no empty-pass storm, so this is cheap
    /// enough to run every N passes or on engine idle. Applies through
    /// the lock-free override consulted by
    /// [`should_parallelize`](WorkerPool::should_parallelize) (needs
    /// only `&self`), clamped to the same
    /// [`MIN_WORK_FLOOR`]`..=`[`MIN_WORK_CEIL`] band as startup
    /// calibration. Returns the installed threshold, or `None` when the
    /// pool has no workers or a timing is degenerate (the previous
    /// threshold then stands).
    pub fn recalibrate(&self, dispatch_ns_per_pass: f64, per_item_ns: f64) -> Option<usize> {
        if self.worker_count() == 0 || dispatch_ns_per_pass <= 0.0 || per_item_ns <= 0.0 {
            return None;
        }
        let saved_fraction = 1.0 - 1.0 / self.threads() as f64;
        let derived = (dispatch_ns_per_pass / (per_item_ns * saved_fraction)).ceil() as usize;
        let clamped = derived.clamp(MIN_WORK_FLOOR, MIN_WORK_CEIL);
        self.set_min_work_override(clamped);
        Some(clamped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    #[test]
    fn single_thread_pool_keeps_static_default() {
        let mut pool = WorkerPool::new(1);
        let before = pool.policy().min_parallel_items;
        let c = pool.calibrate();
        assert!(!c.applied);
        assert_eq!(pool.policy().min_parallel_items, before);
    }

    #[test]
    fn recalibrate_installs_clamped_override() {
        let pool = WorkerPool::new(3);
        let before = pool.policy().min_parallel_items;
        // Huge dispatch cost vs cheap items → ceiling.
        assert_eq!(pool.recalibrate(1e12, 1.0), Some(MIN_WORK_CEIL));
        assert_eq!(pool.effective_min_parallel_items(), MIN_WORK_CEIL);
        assert!(pool.should_parallelize(MIN_WORK_CEIL));
        assert!(!pool.should_parallelize(MIN_WORK_CEIL - 1));
        // Cheap dispatch vs slow items → floor.
        assert_eq!(pool.recalibrate(1.0, 1e6), Some(MIN_WORK_FLOOR));
        assert_eq!(pool.effective_min_parallel_items(), MIN_WORK_FLOOR);
        // The configured policy itself is untouched by the override.
        assert_eq!(pool.policy().min_parallel_items, before);
        // Degenerate timings leave the previous threshold standing.
        assert_eq!(pool.recalibrate(0.0, 1.0), None);
        assert_eq!(pool.recalibrate(1.0, -3.0), None);
        assert_eq!(pool.effective_min_parallel_items(), MIN_WORK_FLOOR);
    }

    #[test]
    fn recalibrate_noop_without_workers_and_cleared_by_set_policy() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.recalibrate(100.0, 1.0), None);
        let mut pool = WorkerPool::new(2);
        pool.recalibrate(1e12, 1.0).unwrap();
        assert_eq!(pool.effective_min_parallel_items(), MIN_WORK_CEIL);
        // An explicit policy wins until the next recalibration.
        let p = *pool.policy();
        pool.set_policy(p);
        assert_eq!(
            pool.effective_min_parallel_items(),
            p.min_parallel_items,
            "set_policy drops the override"
        );
    }

    #[test]
    fn pass_counter_counts_dispatches() {
        let pool = WorkerPool::new(2);
        let before = pool.passes();
        let _ = pool.run_indexed(4, |i| i);
        let _ = pool.run_indexed(4, |i| i);
        assert_eq!(pool.passes(), before + 2);
    }

    #[test]
    fn calibration_applies_within_band() {
        let mut pool = WorkerPool::new(3);
        let c = pool.calibrate();
        if c.applied {
            assert!(c.dispatch_ns_per_pass > 0.0);
            assert!(c.per_item_ns > 0.0);
            assert!((MIN_WORK_FLOOR..=MIN_WORK_CEIL).contains(&c.derived_min_parallel_items));
            assert_eq!(
                pool.policy().min_parallel_items,
                c.derived_min_parallel_items
            );
        }
        // Other knobs are untouched.
        assert_eq!(
            pool.policy().stream_window_per_worker,
            Policy::default().stream_window_per_worker
        );
    }
}
