//! Streaming produce/transform/merge passes with bounded in-flight
//! memory.
//!
//! The tiled draw paths used to materialize **every** tile buffer
//! before a sequential blit; at huge resolutions that peaks at the full
//! framebuffer again, defeating the point of tiling. A streaming pass
//! instead lets workers publish finished items through a claim-gated
//! channel while the calling thread merges them **in item order** —
//! the merge order (and therefore the result) is identical to the
//! sequential run, but at most `Policy::stream_window(workers)` items
//! exist unmerged at any instant.
//!
//! The gate is on *claims*, not just queue capacity: a producer may not
//! start item `i` until `i < merged + window`, so even pathological
//! skew (one huge tile stalling the merge frontier while tiny tiles
//! race ahead) cannot accumulate more than `window` finished items.
//!
//! [`WorkerPool::run_streaming_chain`] generalizes the hand-off to a
//! **multi-stage pipeline**: every claimed item is produced once and
//! then flows through a caller-supplied sequence of per-item transform
//! stages before reaching the in-order merge. Each stage hand-off is a
//! queue any executor may drain, so an item rendered by worker A can be
//! transformed by worker B while A is already producing the next item —
//! the cross-operator tile pipelining 3DPipe argues for. Executors pick
//! work **deepest stage first**, which keeps every stage queue within
//! the per-stage window ([`Policy::chain_stage_window`](crate::Policy::chain_stage_window)) and drains
//! items toward the merge frontier before admitting new ones.

use crate::pool::WorkerPool;
use canvas_obs as obs;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// A per-item transform stage of a streaming chain: mutates item `i`'s
/// value in place. Stages are applied exactly once per item, in chain
/// order, by whichever executor picks the item up.
pub type ChainStage<'a, T> = &'a (dyn Fn(usize, &mut T) + Sync);

/// Outcome of a streaming pass: how deep the in-flight window actually
/// got. `peak_in_flight` counts claimed-but-unmerged items (the live
/// tile buffers of a chain run) and is the number the fused-chain
/// memory gate asserts against `Policy::stream_window`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamReport {
    /// Items that flowed through the pass.
    pub items: usize,
    /// High-water mark of claimed-but-unmerged items.
    pub peak_in_flight: usize,
}

/// A unit of pipeline work an executor can pick up.
enum Work<T> {
    /// Produce item `i` (stage 0 of the chain).
    Produce(usize),
    /// Run transform stage `stage` on item `i`'s value.
    Advance { stage: usize, i: usize, value: T },
}

struct ChainState<T> {
    next_claim: usize,
    merged: usize,
    peak_live: usize,
    /// `queued[s]` holds items that finished everything before stage
    /// `s` and await `stages[s]`. Bounded by the claim gate: at most
    /// `window` items exist past the merge frontier in total, so no
    /// queue can exceed the per-stage window.
    queued: Vec<BTreeMap<usize, T>>,
    /// Items that finished the whole chain, awaiting the in-order merge.
    final_ready: BTreeMap<usize, T>,
    poisoned: bool,
}

/// Claim-gated multi-stage reorder channel between producers, stage
/// executors, and the merging caller (see module docs).
struct ChainGate<T> {
    state: Mutex<ChainState<T>>,
    /// Executors wait here for claims or staged work (and for the merge
    /// frontier to advance, which is what frees new claims).
    has_work: Condvar,
    /// The merger waits here for final-stage items.
    has_final: Condvar,
    n: usize,
    stages: usize,
    window: usize,
    /// Per-stage queue bound ([`Policy::chain_stage_window`](crate::Policy::chain_stage_window)): implied
    /// by the claim gate plus deepest-first draining, debug-asserted at
    /// every hand-off.
    stage_window: usize,
}

impl<T> ChainGate<T> {
    fn new(n: usize, stages: usize, window: usize, stage_window: usize) -> Self {
        ChainGate {
            state: Mutex::new(ChainState {
                next_claim: 0,
                merged: 0,
                peak_live: 0,
                queued: (0..stages).map(|_| BTreeMap::new()).collect(),
                final_ready: BTreeMap::new(),
                poisoned: false,
            }),
            has_work: Condvar::new(),
            has_final: Condvar::new(),
            n,
            stages,
            // A window of 0 would deadlock the claim gate (no item
            // could ever be claimed); clamp rather than hang. See
            // `Policy::stream_window`, which applies the same floor.
            window: window.max(1),
            stage_window: stage_window.max(1),
        }
    }

    /// Picks the next unit of work under the lock: deepest staged item
    /// first, then a fresh claim if the window allows. Draining deep
    /// stages before claiming keeps every stage queue within the
    /// per-stage window and moves items toward the merge frontier.
    fn try_pick(&self, st: &mut ChainState<T>) -> Option<Work<T>> {
        for s in (0..self.stages).rev() {
            if let Some((&i, _)) = st.queued[s].iter().next() {
                let value = st.queued[s].remove(&i).expect("key just observed");
                return Some(Work::Advance { stage: s, i, value });
            }
        }
        if st.next_claim < self.n && st.next_claim < st.merged + self.window {
            let i = st.next_claim;
            st.next_claim += 1;
            st.peak_live = st.peak_live.max(st.next_claim - st.merged);
            return Some(Work::Produce(i));
        }
        None
    }

    /// Blocking work pickup for background executors. `None` when the
    /// pass is finished (everything merged) or poisoned.
    fn next_work(&self) -> Option<Work<T>> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if st.poisoned || st.merged >= self.n {
                return None;
            }
            if let Some(w) = self.try_pick(&mut st) {
                return Some(w);
            }
            st = self
                .has_work
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Publishes item `i`'s value for its next pipeline step.
    /// `next_stage` is the index of the stage the item now needs:
    /// producers publish with `next_stage = 0`, stage `s` publishes
    /// with `next_stage = s + 1`, and `next_stage == stages` routes the
    /// item to the in-order merge.
    fn publish(&self, i: usize, value: T, next_stage: usize) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if next_stage < self.stages {
            debug_assert!(
                st.queued[next_stage].len() < self.stage_window,
                "stage {next_stage} queue exceeded its window {}",
                self.stage_window
            );
            st.queued[next_stage].insert(i, value);
            self.has_work.notify_all();
            // The merger waits on `has_final` but helps with stage work
            // whenever it wakes — wake it for stage publishes too, or
            // it would idle while the frontier item sits in a queue.
            self.has_final.notify_all();
        } else {
            st.final_ready.insert(i, value);
            self.has_final.notify_all();
        }
    }

    /// Marks item `i` merged, advancing the frontier and freeing a
    /// claim slot.
    fn note_merged(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.merged += 1;
        // Frees a claim slot, and — on the last item — releases workers
        // blocked in `next_work`.
        self.has_work.notify_all();
    }

    /// Aborts the pass: executors stop picking work, the merger stops
    /// waiting. Used on either-side panic so nobody deadlocks.
    fn poison(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.poisoned = true;
        self.has_work.notify_all();
        self.has_final.notify_all();
    }

    fn peak_live(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .peak_live
    }
}

impl WorkerPool {
    /// Streaming pass: background workers run `produce(i)` for
    /// `i ∈ 0..n` (dynamically claimed) while the calling thread runs
    /// `merge(i, item)` **strictly in ascending `i` order** — the same
    /// order, and therefore the same result, as the sequential
    /// `for i { merge(i, produce(i)) }` loop. At most
    /// `policy.stream_window(workers)` produced-but-unmerged items are
    /// in flight, which caps peak memory when items are large (tile
    /// framebuffers).
    ///
    /// With no background workers the sequential loop runs verbatim —
    /// one item lives at a time, the tightest possible memory bound.
    pub fn run_streaming<T, F, M>(&self, n: usize, produce: F, merge: M)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        M: FnMut(usize, T),
    {
        self.run_streaming_chain(n, produce, &[], merge);
    }

    /// Multi-stage streaming pass — the generalized claim-gated
    /// hand-off behind fused operator chains. Every item is produced
    /// once (`produce(i)`), then flows through each transform in
    /// `stages` (in order, each applied exactly once, by whichever
    /// executor picks it up), and finally reaches `merge(i, item)` on
    /// the calling thread **strictly in ascending `i` order**.
    ///
    /// Results are bit-identical to the sequential
    /// `for i { let mut v = produce(i); for s in stages { s(i, &mut v) }
    /// merge(i, v) }` loop at any thread count: stages are per-item
    /// transforms and the merge order is fixed, so scheduling cannot
    /// change the outcome.
    ///
    /// The claim gate bounds claimed-but-unmerged items to
    /// `policy.stream_window(workers)` — the *total* number of live
    /// items across all stages — and executors drain deeper stages
    /// first, so each stage queue stays within
    /// [`Policy::chain_stage_window`](crate::Policy::chain_stage_window).
    /// The returned [`StreamReport`] carries the observed high-water
    /// mark for the fused-chain memory gate.
    pub fn run_streaming_chain<T, F, M>(
        &self,
        n: usize,
        produce: F,
        stages: &[ChainStage<'_, T>],
        mut merge: M,
    ) -> StreamReport
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        M: FnMut(usize, T),
    {
        let mut chain_span = obs::span("stream_chain", "executor");
        chain_span.arg_u64("items", n as u64);
        chain_span.arg_u64("stages", stages.len() as u64);
        if self.worker_count() == 0 || n <= 1 {
            for i in 0..n {
                let mut v = {
                    let mut s = obs::span("tile_produce", "executor");
                    s.arg_u64("item", i as u64);
                    produce(i)
                };
                for (si, stage) in stages.iter().enumerate() {
                    let mut s = obs::span("tile_stage", "executor");
                    s.arg_u64("item", i as u64);
                    s.arg_u64("stage", si as u64);
                    stage(i, &mut v);
                }
                merge(i, v);
            }
            return StreamReport {
                items: n,
                peak_in_flight: n.min(1),
            };
        }
        let gate = ChainGate::new(
            n,
            stages.len(),
            self.policy().stream_window(self.worker_count()),
            self.policy().chain_stage_window(self.worker_count()),
        );
        let run_work = |work: Work<T>| match work {
            Work::Produce(i) => {
                let mut s = obs::span("tile_produce", "executor");
                s.arg_u64("item", i as u64);
                let v = produce(i);
                drop(s);
                gate.publish(i, v, 0);
            }
            Work::Advance {
                stage,
                i,
                mut value,
            } => {
                let mut s = obs::span("tile_stage", "executor");
                s.arg_u64("item", i as u64);
                s.arg_u64("stage", stage as u64);
                stages[stage](i, &mut value);
                drop(s);
                gate.publish(i, value, stage + 1);
            }
        };
        let executor = || {
            while let Some(work) = gate.next_work() {
                match catch_unwind(AssertUnwindSafe(|| run_work(work))) {
                    Ok(()) => {}
                    Err(payload) => {
                        gate.poison();
                        resume_unwind(payload);
                    }
                }
            }
        };
        // The caller primarily merges, but picks up produce/stage work
        // itself whenever the next in-order item is not ready — so all
        // `threads` executors keep busy when the merge frontier is
        // ahead, and no work is stranded at small thread counts. The
        // dispatch is done by hand: publish the executor job to the
        // workers, run the merge/help loop here, then quiesce
        // (poisoning on merge panic so blocked executors always drain).
        enum Action<T> {
            /// The next in-order item is ready: merge it.
            Merge(usize, T),
            /// The frontier is not ready: help with pipeline work.
            Help(Work<T>),
        }
        self.run_split_pass(&executor, || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut done = 0;
                while done < n {
                    let action = {
                        let mut st = gate
                            .state
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        loop {
                            if st.poisoned {
                                break None;
                            }
                            let next = st.merged;
                            if let Some(v) = st.final_ready.remove(&next) {
                                break Some(Action::Merge(next, v));
                            }
                            if let Some(w) = gate.try_pick(&mut st) {
                                break Some(Action::Help(w));
                            }
                            st = gate
                                .has_final
                                .wait(st)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    };
                    match action {
                        None => break, // poisoned: an executor panicked
                        Some(Action::Merge(i, value)) => {
                            merge(i, value);
                            done += 1;
                            gate.note_merged();
                        }
                        Some(Action::Help(work)) => run_work(work),
                    }
                }
            }));
            if outcome.is_err() {
                gate.poison();
            }
            outcome
        });
        StreamReport {
            items: n,
            peak_in_flight: gate.peak_live(),
        }
    }
}
