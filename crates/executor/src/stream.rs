//! Streaming produce/merge passes with bounded in-flight memory.
//!
//! The tiled draw paths used to materialize **every** tile buffer
//! before a sequential blit; at huge resolutions that peaks at the full
//! framebuffer again, defeating the point of tiling. A streaming pass
//! instead lets workers publish finished items through a claim-gated
//! channel while the calling thread merges them **in item order** —
//! the merge order (and therefore the result) is identical to the
//! sequential run, but at most `Policy::stream_window(workers)` items
//! exist unmerged at any instant.
//!
//! The gate is on *claims*, not just queue capacity: a producer may not
//! start item `i` until `i < merged + window`, so even pathological
//! skew (one huge tile stalling the merge frontier while tiny tiles
//! race ahead) cannot accumulate more than `window` finished items.
//! This is the bounded pipelined hand-off 3DPipe argues for, in
//! fork-join clothing.

use crate::pool::WorkerPool;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Claim-gated reorder channel between producers and the merging
/// caller. Item `i` may only be claimed once fewer than `window` items
/// are outstanding past the merge frontier.
struct StreamGate<T> {
    state: Mutex<GateState<T>>,
    /// Producers wait here for the merge frontier to advance.
    can_claim: Condvar,
    /// The merger waits here for the next in-order item.
    has_items: Condvar,
    n: usize,
    window: usize,
}

struct GateState<T> {
    next_claim: usize,
    merged: usize,
    ready: BTreeMap<usize, T>,
    poisoned: bool,
}

impl<T> StreamGate<T> {
    fn new(n: usize, window: usize) -> Self {
        StreamGate {
            state: Mutex::new(GateState {
                next_claim: 0,
                merged: 0,
                ready: BTreeMap::new(),
                poisoned: false,
            }),
            can_claim: Condvar::new(),
            has_items: Condvar::new(),
            n,
            window: window.max(2),
        }
    }

    /// Claims the next item index, blocking while the window is full.
    /// `None` when all items are claimed or the pass is poisoned.
    fn claim(&self) -> Option<usize> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if st.poisoned || st.next_claim >= self.n {
                return None;
            }
            if st.next_claim < st.merged + self.window {
                let i = st.next_claim;
                st.next_claim += 1;
                return Some(i);
            }
            st = self
                .can_claim
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking [`claim`](Self::claim): `None` when the window is
    /// full, every item is claimed, or the pass is poisoned — the
    /// merging caller uses this to pick up production work instead of
    /// idling when the next in-order item is not ready yet.
    fn try_claim(&self) -> Option<usize> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.poisoned || st.next_claim >= self.n || st.next_claim >= st.merged + self.window {
            return None;
        }
        let i = st.next_claim;
        st.next_claim += 1;
        Some(i)
    }

    fn publish(&self, i: usize, value: T) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.ready.insert(i, value);
        self.has_items.notify_all();
    }

    /// Non-blocking [`take_next`](Self::take_next): `Ok(Some(..))` when
    /// the in-order item is ready, `Ok(None)` when it is not yet,
    /// `Err(())` on poison.
    #[allow(clippy::result_unit_err)]
    fn try_take_next(&self) -> Result<Option<(usize, T)>, ()> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.poisoned {
            return Err(());
        }
        let next = st.merged;
        match st.ready.remove(&next) {
            Some(v) => {
                st.merged += 1;
                self.can_claim.notify_all();
                Ok(Some((next, v)))
            }
            None => Ok(None),
        }
    }

    /// Takes item `merged` once available; advances the frontier.
    /// `None` on poison.
    fn take_next(&self) -> Option<(usize, T)> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if st.poisoned {
                return None;
            }
            let next = st.merged;
            if let Some(v) = st.ready.remove(&next) {
                st.merged += 1;
                self.can_claim.notify_all();
                return Some((next, v));
            }
            st = self
                .has_items
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Aborts the pass: producers stop claiming, the merger stops
    /// waiting. Used on either-side panic so nobody deadlocks.
    fn poison(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.poisoned = true;
        self.can_claim.notify_all();
        self.has_items.notify_all();
    }
}

impl WorkerPool {
    /// Streaming pass: background workers run `produce(i)` for
    /// `i ∈ 0..n` (dynamically claimed) while the calling thread runs
    /// `merge(i, item)` **strictly in ascending `i` order** — the same
    /// order, and therefore the same result, as the sequential
    /// `for i { merge(i, produce(i)) }` loop. At most
    /// `policy.stream_window(workers)` produced-but-unmerged items are
    /// in flight, which caps peak memory when items are large (tile
    /// framebuffers).
    ///
    /// With no background workers the sequential loop runs verbatim —
    /// one item lives at a time, the tightest possible memory bound.
    pub fn run_streaming<T, F, M>(&self, n: usize, produce: F, mut merge: M)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        M: FnMut(usize, T),
    {
        if self.worker_count() == 0 || n <= 1 {
            for i in 0..n {
                merge(i, produce(i));
            }
            return;
        }
        let gate = StreamGate::new(n, self.policy().stream_window(self.worker_count()));
        let producer = || {
            while let Some(i) = gate.claim() {
                match catch_unwind(AssertUnwindSafe(|| produce(i))) {
                    Ok(v) => gate.publish(i, v),
                    Err(payload) => {
                        gate.poison();
                        resume_unwind(payload);
                    }
                }
            }
        };
        // The caller primarily merges, but claims and produces items
        // itself whenever the next in-order item is not ready — so all
        // `threads` executors rasterize when the merge frontier is
        // ahead, and no producer is lost at small thread counts. The
        // dispatch is done by hand: publish the producer job to the
        // workers, run the merge/produce loop here, then quiesce
        // (poisoning on merge panic so blocked producers always drain).
        self.run_split_pass(&producer, || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut done = 0;
                while done < n {
                    match gate.try_take_next() {
                        Ok(Some((i, v))) => {
                            merge(i, v);
                            done += 1;
                        }
                        Err(()) => break, // poisoned: producer panicked
                        Ok(None) => {
                            // Frontier not ready: help produce instead
                            // of idling (claim is window-gated, so this
                            // cannot overrun the memory bound).
                            if let Some(i) = gate.try_claim() {
                                let v = produce(i);
                                gate.publish(i, v);
                            } else {
                                match gate.take_next() {
                                    Some((i, v)) => {
                                        merge(i, v);
                                        done += 1;
                                    }
                                    None => break,
                                }
                            }
                        }
                    }
                }
            }));
            if outcome.is_err() {
                gate.poison();
            }
            outcome
        });
    }
}
