//! Deterministic parallel execution — a thin façade over the
//! [`canvas-executor`](canvas_executor) worker pool.
//!
//! The paper's thesis is that canvas operators decompose into
//! independent per-pixel (here: per-tile, per-band) work items. Earlier
//! revisions of this module ran such items on freshly spawned scoped OS
//! threads at every pass; the execution primitives now live in the
//! `canvas-executor` crate as methods on a **persistent**
//! [`WorkerPool`] that each [`Pipeline`](crate::Pipeline) owns (spawned
//! once by `Device::cpu_parallel(n)`, parked between passes, joined on
//! drop). The determinism contract is unchanged: outputs merge in item
//! order, so a parallel run is bit-identical to the sequential run no
//! matter how the scheduler interleaves workers.
//!
//! Mapping from the old free functions to the pool API:
//!
//! | before (scoped threads)      | now                                  |
//! |------------------------------|--------------------------------------|
//! | `par::run_indexed(threads,…)`| [`WorkerPool::run_indexed`]          |
//! | `par::for_each_band1(…)`     | [`WorkerPool::for_each_band1`]       |
//! | `par::for_each_band2(…)`     | [`WorkerPool::for_each_band2`]       |
//! | `par::for_each_band_pair(…)` | [`WorkerPool::for_each_band_pair`]   |
//! | (full tile materialization)  | [`WorkerPool::run_streaming`]        |
//!
//! The per-helper copies of the minimum-work threshold are gone too:
//! the single knob lives in [`Policy::min_parallel_items`], consulted
//! through `WorkerPool::should_parallelize` by every *full-screen band
//! helper* (`for_each_band1/2/_pair`, and `scatter_shared` in the
//! pipeline) — the passes whose per-item cost is a texel. The indexed
//! and streaming passes (`run_indexed`, `for_each_chunk`,
//! `run_streaming`) carry coarse items of caller-known cost (a tile, a
//! binning chunk), so they gate only on trivial sizes (`n <= 1`);
//! their callers decide coarseness.

pub use canvas_executor::{
    calibrate_min_work, live_worker_count, Calibration, Policy, SchedulerStats, TicketId,
    WorkerPool, MIN_PARALLEL_ITEMS, PASS_QUANTUM,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_pool_api() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.policy().min_parallel_items, MIN_PARALLEL_ITEMS);
        let out = pool.run_indexed(10, |i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }
}
