//! Deterministic fork-join execution helpers for the tiled pipeline.
//!
//! The paper's thesis is that canvas operators decompose into independent
//! per-pixel (here: per-tile, per-band) work items. These helpers run such
//! items across OS threads with **deterministic result order**: outputs
//! are always returned in item order, so the merged result of a parallel
//! run is bit-identical to the sequential run no matter how the scheduler
//! interleaves workers. (`rayon` would provide the same shape; this
//! build environment is offline, so the workspace uses `std::thread`
//! scoped fork-join directly — the work items are coarse enough that a
//! work-stealing runtime would add nothing.)

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(0..n)` with up to `threads` workers pulling items from a
/// shared queue; returns the results **in item order**.
///
/// `threads <= 1` (or a single item) runs inline with zero overhead —
/// the sequential path and the parallel path execute the exact same
/// per-item closure, which is what makes them bit-identical.
pub fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let counter = AtomicUsize::new(0);
    let workers = threads.min(n);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let counter = &counter;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut all: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, t)| t).collect()
}

/// Row count per band when splitting `rows` across `threads` workers.
fn band_rows(rows: usize, threads: usize) -> usize {
    rows.div_ceil(threads.max(1)).max(1)
}

/// Below this many texels a full-screen pass runs inline: OS-thread
/// spawn/join (~tens of microseconds per worker) would exceed the work
/// itself on small planes (e.g. 64x64 group viewports), making
/// "parallel" passes a net slowdown. Decomposition stays deterministic
/// either way, so the threshold cannot affect results.
pub const MIN_PARALLEL_ITEMS: usize = 1 << 16;

/// Splits one plane (`width` texels per row) into horizontal bands and
/// runs `f(first_row, band)` on each, in parallel. Single-plane sibling
/// of [`for_each_band2`].
pub fn for_each_band1<A, F>(threads: usize, width: usize, a: &mut [A], f: F)
where
    A: Send,
    F: Fn(usize, &mut [A]) + Sync,
{
    if width == 0 || a.is_empty() {
        return;
    }
    let rows = a.len() / width;
    let band = band_rows(rows, threads) * width;
    if threads <= 1 || rows <= 1 || a.len() < MIN_PARALLEL_ITEMS {
        for (bi, ba) in a.chunks_mut(band).enumerate() {
            f(bi * band / width, ba);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (bi, ba) in a.chunks_mut(band).enumerate() {
            let f = &f;
            scope.spawn(move || f(bi * band / width, ba));
        }
    });
}

/// Splits two parallel planes (equal length, `width` texels per row) into
/// horizontal bands and runs `f(first_row, band_a, band_b)` on each band,
/// returning the per-band outputs in top-to-bottom order.
///
/// With `threads <= 1` the whole plane is one band processed inline.
/// Used by the Mask operator: per-pixel tests over the texel + cover
/// planes with band-local collection of refined boundary entries.
pub fn for_each_band2<A, C, T, F>(
    threads: usize,
    width: usize,
    a: &mut [A],
    c: &mut [C],
    f: F,
) -> Vec<T>
where
    A: Send,
    C: Send,
    T: Send,
    F: Fn(usize, &mut [A], &mut [C]) -> T + Sync,
{
    assert_eq!(a.len(), c.len(), "planes must have equal texel counts");
    if width == 0 || a.is_empty() {
        return Vec::new();
    }
    let rows = a.len() / width;
    let band = band_rows(rows, threads) * width;
    if threads <= 1 || rows <= 1 || a.len() < MIN_PARALLEL_ITEMS {
        return a
            .chunks_mut(band)
            .zip(c.chunks_mut(band))
            .enumerate()
            .map(|(bi, (ba, bc))| f(bi * band / width, ba, bc))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks_mut(band)
            .zip(c.chunks_mut(band))
            .enumerate()
            .map(|(bi, (ba, bc))| {
                let f = &f;
                scope.spawn(move || f(bi * band / width, ba, bc))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("band worker panicked"))
            .collect()
    })
}

/// Band-parallel in-place combine of `dst` with a same-length read-only
/// `src` (the full-screen Blend pass). `f` receives aligned chunks.
pub fn for_each_band_pair<D, S, F>(threads: usize, band_len: usize, dst: &mut [D], src: &[S], f: F)
where
    D: Send,
    S: Sync,
    F: Fn(&mut [D], &[S]) + Sync,
{
    assert_eq!(dst.len(), src.len(), "planes must have equal texel counts");
    let band_len = band_len.max(1);
    if threads <= 1 || dst.len() <= band_len || dst.len() < MIN_PARALLEL_ITEMS {
        for (d, s) in dst.chunks_mut(band_len).zip(src.chunks(band_len)) {
            f(d, s);
        }
        return;
    }
    std::thread::scope(|scope| {
        for (d, s) in dst.chunks_mut(band_len).zip(src.chunks(band_len)) {
            let f = &f;
            scope.spawn(move || f(d, s));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_order_is_deterministic() {
        let seq = run_indexed(1, 100, |i| i * i);
        let par = run_indexed(4, 100, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq[7], 49);
    }

    #[test]
    fn run_indexed_empty_and_single() {
        assert!(run_indexed(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(4, 1, |i| i + 5), vec![5]);
    }

    #[test]
    fn bands_cover_every_row_once() {
        let width = 8;
        let rows = 13;
        for threads in [1, 3, 4, 16] {
            let mut a = vec![0u32; width * rows];
            let mut c = vec![0u16; width * rows];
            let starts = for_each_band2(threads, width, &mut a, &mut c, |row0, ba, bc| {
                for v in ba.iter_mut() {
                    *v += 1;
                }
                for v in bc.iter_mut() {
                    *v += 1;
                }
                (row0, ba.len())
            });
            assert!(a.iter().all(|&v| v == 1), "threads={threads}");
            assert!(c.iter().all(|&v| v == 1));
            // Bands tile the plane in order.
            let mut expect_row = 0;
            for (row0, len) in starts {
                assert_eq!(row0, expect_row);
                expect_row += len / width;
            }
            assert_eq!(expect_row, rows);
        }
    }

    #[test]
    fn bands_above_parallel_threshold_still_cover_once() {
        // Large enough to take the threaded path (the small-plane tests
        // above exercise the inline fast path).
        let width = 512;
        let rows = 160; // 81920 texels > MIN_PARALLEL_ITEMS
        assert!(width * rows >= MIN_PARALLEL_ITEMS);
        let mut a = vec![0u32; width * rows];
        let mut c = vec![0u16; width * rows];
        let bands = for_each_band2(4, width, &mut a, &mut c, |row0, ba, bc| {
            for v in ba.iter_mut() {
                *v += 1;
            }
            for v in bc.iter_mut() {
                *v += 1;
            }
            (row0, ba.len())
        });
        assert!(a.iter().all(|&v| v == 1));
        assert!(c.iter().all(|&v| v == 1));
        assert_eq!(bands.iter().map(|&(_, l)| l).sum::<usize>(), width * rows);
        let mut b1 = vec![0u64; width * rows];
        for_each_band1(4, width, &mut b1, |_, band| {
            for v in band.iter_mut() {
                *v += 1;
            }
        });
        assert!(b1.iter().all(|&v| v == 1));
        let src = vec![2u32; width * rows];
        let mut dst = vec![1u32; width * rows];
        for_each_band_pair(4, width * rows / 4, &mut dst, &src, |d, s| {
            for (dv, sv) in d.iter_mut().zip(s) {
                *dv += *sv;
            }
        });
        assert!(dst.iter().all(|&v| v == 3));
    }

    #[test]
    fn band_pair_combines_elementwise() {
        let src: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let mut dst = vec![1u32; 100];
            for_each_band_pair(threads, 17, &mut dst, &src, |d, s| {
                for (dv, sv) in d.iter_mut().zip(s) {
                    *dv += *sv;
                }
            });
            let want: Vec<u32> = (0..100).map(|i| i + 1).collect();
            assert_eq!(dst, want);
        }
    }
}
