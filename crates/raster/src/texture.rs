//! Flat 2-D texel buffers — the discrete backing store for canvases.
//!
//! The paper's prototype keeps each canvas as an OpenGL texture whose
//! pixels store the object-information triple. [`Texture`] is the
//! software equivalent: a row-major `Vec` of texels with no per-pixel
//! allocation, so full-screen passes stream linearly through memory.

/// A rectangular grid of texels of type `P`.
#[derive(Clone, Debug, PartialEq)]
pub struct Texture<P> {
    width: u32,
    height: u32,
    texels: Vec<P>,
}

impl<P: Copy + Default> Texture<P> {
    /// Creates a texture filled with `P::default()` (the "null" texel —
    /// the paper's ∅ value).
    pub fn new(width: u32, height: u32) -> Self {
        Texture {
            width,
            height,
            texels: vec![P::default(); (width as usize) * (height as usize)],
        }
    }

    /// Creates a texture filled with a specific texel.
    pub fn filled(width: u32, height: u32, value: P) -> Self {
        Texture {
            width,
            height,
            texels: vec![value; (width as usize) * (height as usize)],
        }
    }

    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total texel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.texels.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.texels.is_empty()
    }

    /// Row-major index of `(x, y)`; debug-asserted in bounds.
    #[inline]
    pub fn index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + (x as usize)
    }

    /// Inverse of [`index`](Self::index).
    #[inline]
    pub fn coords(&self, index: usize) -> (u32, u32) {
        let w = self.width as usize;
        ((index % w) as u32, (index / w) as u32)
    }

    #[inline]
    pub fn get(&self, x: u32, y: u32) -> P {
        self.texels[self.index(x, y)]
    }

    /// Checked access; `None` outside the texture.
    #[inline]
    pub fn try_get(&self, x: i64, y: i64) -> Option<P> {
        if x < 0 || y < 0 || x >= self.width as i64 || y >= self.height as i64 {
            None
        } else {
            Some(self.get(x as u32, y as u32))
        }
    }

    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: P) {
        let i = self.index(x, y);
        self.texels[i] = value;
    }

    /// Read-modify-write of a single texel.
    #[inline]
    pub fn update(&mut self, x: u32, y: u32, f: impl FnOnce(P) -> P) {
        let i = self.index(x, y);
        self.texels[i] = f(self.texels[i]);
    }

    /// Raw texel slice (row-major).
    pub fn texels(&self) -> &[P] {
        &self.texels
    }

    pub fn texels_mut(&mut self) -> &mut [P] {
        &mut self.texels
    }

    /// Clears every texel back to the default (glClear).
    pub fn clear(&mut self) {
        self.texels.fill(P::default());
    }

    /// Iterator over `(x, y, texel)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, P)> + '_ {
        let w = self.width as usize;
        self.texels
            .iter()
            .enumerate()
            .map(move |(i, t)| ((i % w) as u32, (i / w) as u32, *t))
    }

    /// Approximate GPU memory footprint in bytes (used by the transfer
    /// cost model).
    pub fn size_bytes(&self) -> usize {
        self.texels.len() * std::mem::size_of::<P>()
    }

    /// Copies the rectangle `[x0, x0+w) × [y0, y0+h)` into a flat
    /// row-major buffer of length `w * h` (tile copy-in).
    pub fn read_rect(&self, x0: u32, y0: u32, w: u32, h: u32) -> Vec<P> {
        debug_assert!(x0 + w <= self.width && y0 + h <= self.height);
        let mut out = Vec::with_capacity((w as usize) * (h as usize));
        for y in y0..y0 + h {
            let row = self.index(x0, y);
            out.extend_from_slice(&self.texels[row..row + w as usize]);
        }
        out
    }

    /// Writes a flat row-major buffer of length `w * h` back into the
    /// rectangle `[x0, x0+w) × [y0, y0+h)` (tile copy-out).
    pub fn write_rect(&mut self, x0: u32, y0: u32, w: u32, h: u32, src: &[P]) {
        debug_assert!(x0 + w <= self.width && y0 + h <= self.height);
        debug_assert_eq!(src.len(), (w as usize) * (h as usize));
        for (ry, y) in (y0..y0 + h).enumerate() {
            let dst_row = self.index(x0, y);
            let src_row = ry * w as usize;
            self.texels[dst_row..dst_row + w as usize]
                .copy_from_slice(&src[src_row..src_row + w as usize]);
        }
    }
}

/// Unsynchronized shared view of a texture's texel buffer for the
/// streaming tile merge: producers `read_rect` their own tile while the
/// merger `write_rect`s tiles that already finished, concurrently.
///
/// Soundness rests on the tile protocol, not on types: tile rects are
/// pairwise disjoint, a tile's texels are read only by its producer,
/// and the merger writes a tile only after that producer finished
/// (ordered by the streaming channel's mutex). Every texel therefore
/// sees at most one read followed by one happens-before-ordered write.
pub(crate) struct RawTexels<P> {
    ptr: *mut P,
    width: usize,
    #[cfg(debug_assertions)]
    len: usize,
}

unsafe impl<P: Send> Send for RawTexels<P> {}
unsafe impl<P: Send + Sync> Sync for RawTexels<P> {}

impl<P: Copy + Default> RawTexels<P> {
    /// Captures the buffer of `t`. The caller must not touch `t`
    /// through any other path while this view is shared with workers.
    pub(crate) fn new(t: &mut Texture<P>) -> Self {
        RawTexels {
            width: t.width() as usize,
            #[cfg(debug_assertions)]
            len: t.len(),
            ptr: t.texels_mut().as_mut_ptr(),
        }
    }

    /// Copies the rectangle into a flat row-major buffer (tile
    /// copy-in). SAFETY: no concurrent writer may touch this rect.
    pub(crate) unsafe fn read_rect(&self, x0: u32, y0: u32, w: u32, h: u32) -> Vec<P> {
        let mut out = Vec::with_capacity((w as usize) * (h as usize));
        for y in y0..y0 + h {
            let base = (y as usize) * self.width + x0 as usize;
            #[cfg(debug_assertions)]
            debug_assert!(base + w as usize <= self.len);
            out.extend_from_slice(std::slice::from_raw_parts(self.ptr.add(base), w as usize));
        }
        out
    }

    /// Writes a flat row-major buffer back into the rectangle (tile
    /// copy-out). SAFETY: no concurrent reader or writer may touch
    /// this rect.
    pub(crate) unsafe fn write_rect(&self, x0: u32, y0: u32, w: u32, h: u32, src: &[P]) {
        debug_assert_eq!(src.len(), (w as usize) * (h as usize));
        for (ry, y) in (y0..y0 + h).enumerate() {
            let base = (y as usize) * self.width + x0 as usize;
            #[cfg(debug_assertions)]
            debug_assert!(base + w as usize <= self.len);
            let row = &src[ry * w as usize..(ry + 1) * w as usize];
            std::ptr::copy_nonoverlapping(row.as_ptr(), self.ptr.add(base), w as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t: Texture<u32> = Texture::new(4, 3);
        assert_eq!(t.width(), 4);
        assert_eq!(t.height(), 3);
        assert_eq!(t.len(), 12);
        assert_eq!(t.get(2, 1), 0);
        t.set(2, 1, 42);
        assert_eq!(t.get(2, 1), 42);
    }

    #[test]
    fn index_roundtrip() {
        let t: Texture<u8> = Texture::new(7, 5);
        for y in 0..5 {
            for x in 0..7 {
                let i = t.index(x, y);
                assert_eq!(t.coords(i), (x, y));
            }
        }
    }

    #[test]
    fn try_get_bounds() {
        let t: Texture<u32> = Texture::filled(2, 2, 9);
        assert_eq!(t.try_get(0, 0), Some(9));
        assert_eq!(t.try_get(1, 1), Some(9));
        assert_eq!(t.try_get(2, 0), None);
        assert_eq!(t.try_get(0, 2), None);
        assert_eq!(t.try_get(-1, 0), None);
    }

    #[test]
    fn update_and_clear() {
        let mut t: Texture<u32> = Texture::new(2, 2);
        t.update(0, 0, |v| v + 5);
        t.update(0, 0, |v| v * 2);
        assert_eq!(t.get(0, 0), 10);
        t.clear();
        assert_eq!(t.get(0, 0), 0);
    }

    #[test]
    fn iteration_order_row_major() {
        let mut t: Texture<u32> = Texture::new(2, 2);
        t.set(0, 0, 1);
        t.set(1, 0, 2);
        t.set(0, 1, 3);
        t.set(1, 1, 4);
        let vals: Vec<u32> = t.iter().map(|(_, _, v)| v).collect();
        assert_eq!(vals, vec![1, 2, 3, 4]);
        let coords: Vec<(u32, u32)> = t.iter().map(|(x, y, _)| (x, y)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn size_bytes() {
        let t: Texture<u64> = Texture::new(8, 8);
        assert_eq!(t.size_bytes(), 64 * 8);
    }

    #[test]
    fn rect_roundtrip() {
        let mut t: Texture<u32> = Texture::new(8, 6);
        for y in 0..6 {
            for x in 0..8 {
                t.set(x, y, 100 * y + x);
            }
        }
        let tile = t.read_rect(2, 1, 3, 4);
        assert_eq!(tile.len(), 12);
        assert_eq!(tile[0], 102); // (2, 1)
        assert_eq!(tile[3], 202); // (2, 2)
        let mut copy = t.clone();
        let doubled: Vec<u32> = tile.iter().map(|v| v * 2).collect();
        copy.write_rect(2, 1, 3, 4, &doubled);
        assert_eq!(copy.get(2, 1), 204);
        assert_eq!(copy.get(4, 4), 2 * t.get(4, 4));
        // Outside the rect untouched.
        assert_eq!(copy.get(0, 0), 0);
        assert_eq!(copy.get(7, 5), t.get(7, 5));
    }
}
