//! The programmable pipeline: draw calls, full-screen passes, scatter.
//!
//! This is the software stand-in for the OpenGL pipeline of the paper's
//! prototype. Each operation mirrors a GPU-native stage:
//!
//! | paper / OpenGL                      | here                         |
//! |-------------------------------------|------------------------------|
//! | render geometry to off-screen buffer| [`Pipeline::draw_points`], [`Pipeline::draw_polyline`], [`Pipeline::draw_polygon`], [`Pipeline::draw_triangles`] |
//! | alpha blending of textures          | [`Pipeline::blend_into`]     |
//! | per-pixel parallel test (mask)      | [`Pipeline::map_texels`]     |
//! | vertex scatter (transform feedback) | [`Pipeline::scatter`]        |
//!
//! Every fragment is shaded by a caller-supplied closure and merged into
//! the framebuffer through a caller-supplied *blend function* — exactly
//! the programmable blend `⊙ : S³ × S³ → S³` of the algebra. All work is
//! counted in [`PipelineStats`] for the device cost model.

use crate::rasterize::{
    rasterize_line_supercover, rasterize_point, rasterize_polygon_fill, rasterize_triangle,
    RasterMode,
};
use crate::stats::PipelineStats;
use crate::texture::Texture;
use crate::viewport::Viewport;
use canvas_geom::polygon::Polygon;
use canvas_geom::polyline::Polyline;
use canvas_geom::Point;

/// A shaded fragment's rasterizer-provided context.
#[derive(Clone, Copy, Debug)]
pub struct Frag {
    /// Pixel coordinates in the target framebuffer.
    pub x: u32,
    pub y: u32,
    /// True when the fragment lies on conservative boundary coverage and
    /// therefore needs exact refinement (paper Section 5).
    pub boundary: bool,
}

/// The software graphics pipeline. Owns work counters and scratch
/// buffers; framebuffers ([`Texture`]s) are passed per call.
#[derive(Debug, Default)]
pub struct Pipeline {
    stats: PipelineStats,
    /// Generation-stamped visited marks for exactly-once fragment
    /// emission within a single polygon/polyline draw (O(1) reset).
    stamps: Vec<u32>,
    generation: u32,
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Snapshot of the cumulative work counters.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PipelineStats::default();
    }

    /// Records a host→device buffer upload (geometry, attributes).
    pub fn note_upload(&mut self, bytes: u64) {
        self.stats.bytes_uploaded += bytes;
    }

    /// Records a device→host readback (result extraction).
    pub fn note_download(&mut self, bytes: u64) {
        self.stats.bytes_downloaded += bytes;
    }

    /// Records edge tests performed by a compute-style kernel (used by
    /// the traditional GPU PIP baseline).
    pub fn note_compute_edge_tests(&mut self, count: u64) {
        self.stats.compute_edge_tests += count;
    }

    fn begin_pass(&mut self) {
        self.stats.passes += 1;
    }

    fn fresh_generation(&mut self, len: usize) -> u32 {
        if self.stamps.len() < len {
            self.stamps.resize(len, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: clear all stamps once and restart at 1.
            self.stamps.fill(0);
            self.generation = 1;
        }
        self.generation
    }

    /// Clears a framebuffer (glClear).
    pub fn clear<P: Copy + Default>(&mut self, fb: &mut Texture<P>) {
        self.begin_pass();
        self.stats.fullscreen_texels += fb.len() as u64;
        fb.clear();
    }

    /// Draws a batch of points: each point shades one fragment which is
    /// blended into the framebuffer. Coincident points blend repeatedly —
    /// that is what makes `B*[+]` accumulation work.
    pub fn draw_points<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        points: &[Point],
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(u32, Point) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.vertices += points.len() as u64;
        self.stats.primitives += points.len() as u64;
        let mut fragments = 0u64;
        for (i, &p) in points.iter().enumerate() {
            rasterize_point(vp, p, |x, y| {
                let src = shade(i as u32, p);
                fb.update(x, y, |dst| blend(dst, src));
                fragments += 1;
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += fragments; // points always need exact coords
        self.stats.blend_ops += fragments;
    }

    /// Draws a polyline with supercover (conservative) coverage. Each
    /// touched pixel is shaded exactly once per draw call.
    pub fn draw_polyline<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        line: &Polyline,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        let nverts = line.vertices().len() as u64;
        self.stats.vertices += nverts;
        self.stats.primitives += line.num_segments() as u64;
        let gen = self.fresh_generation(fb.len());
        let mut fragments = 0u64;
        let stamps = &mut self.stamps;
        for seg in line.segments() {
            rasterize_line_supercover(vp, seg.a, seg.b, |x, y| {
                let idx = (y as usize) * (vp.width() as usize) + x as usize;
                if stamps[idx] != gen {
                    stamps[idx] = gen;
                    let frag = Frag {
                        x,
                        y,
                        boundary: true,
                    };
                    let src = shade(frag);
                    fb.update(x, y, |dst| blend(dst, src));
                    fragments += 1;
                }
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += fragments;
        self.stats.blend_ops += fragments;
    }

    /// Draws a filled polygon (outer ring minus holes).
    ///
    /// Two sub-passes with exactly-once emission per pixel:
    /// 1. conservative boundary coverage of every ring edge
    ///    (`boundary = true` fragments — these are the pixels the mask
    ///    operator later refines against the exact vector data),
    /// 2. scanline interior fill at pixel centers for pixels not already
    ///    claimed by the boundary (`boundary = false`).
    ///
    /// With `conservative = false` the boundary pass is skipped and only
    /// center-sampled coverage is produced (the paper's "approximate
    /// result suffices" mode).
    pub fn draw_polygon<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        poly: &Polygon,
        conservative: bool,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.vertices += poly.num_vertices() as u64;
        self.stats.primitives += 1 + poly.holes().len() as u64;
        let gen = self.fresh_generation(fb.len());
        let mut fragments = 0u64;
        let mut boundary_fragments = 0u64;
        let width = vp.width() as usize;
        {
            let stamps = &mut self.stamps;
            if conservative {
                for edge in poly.edges() {
                    rasterize_line_supercover(vp, edge.a, edge.b, |x, y| {
                        let idx = (y as usize) * width + x as usize;
                        if stamps[idx] != gen {
                            stamps[idx] = gen;
                            let src = shade(Frag {
                                x,
                                y,
                                boundary: true,
                            });
                            fb.update(x, y, |dst| blend(dst, src));
                            fragments += 1;
                            boundary_fragments += 1;
                        }
                    });
                }
            }
            rasterize_polygon_fill(vp, poly, |x, y| {
                let idx = (y as usize) * width + x as usize;
                if stamps[idx] != gen {
                    stamps[idx] = gen;
                    let src = shade(Frag {
                        x,
                        y,
                        boundary: false,
                    });
                    fb.update(x, y, |dst| blend(dst, src));
                    fragments += 1;
                }
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += boundary_fragments;
        self.stats.blend_ops += fragments;
    }

    /// Draws a whole batch of polygons in **one** pass (a single
    /// instanced draw call submitting every polygon's geometry at once —
    /// how a GPU renders a polygon table). Per-polygon exactly-once
    /// fragment semantics are preserved; the shade closure receives the
    /// polygon index.
    #[allow(clippy::too_many_arguments)]
    pub fn draw_polygons_batch<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        polys: &[Polygon],
        conservative: bool,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(u32, Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        let mut fragments = 0u64;
        let mut boundary_fragments = 0u64;
        let width = vp.width() as usize;
        for (pi, poly) in polys.iter().enumerate() {
            self.stats.vertices += poly.num_vertices() as u64;
            self.stats.primitives += 1 + poly.holes().len() as u64;
            let gen = self.fresh_generation(fb.len());
            let stamps = &mut self.stamps;
            if conservative {
                for edge in poly.edges() {
                    rasterize_line_supercover(vp, edge.a, edge.b, |x, y| {
                        let idx = (y as usize) * width + x as usize;
                        if stamps[idx] != gen {
                            stamps[idx] = gen;
                            let src = shade(
                                pi as u32,
                                Frag {
                                    x,
                                    y,
                                    boundary: true,
                                },
                            );
                            fb.update(x, y, |dst| blend(dst, src));
                            fragments += 1;
                            boundary_fragments += 1;
                        }
                    });
                }
            }
            rasterize_polygon_fill(vp, poly, |x, y| {
                let idx = (y as usize) * width + x as usize;
                if stamps[idx] != gen {
                    stamps[idx] = gen;
                    let src = shade(
                        pi as u32,
                        Frag {
                            x,
                            y,
                            boundary: false,
                        },
                    );
                    fb.update(x, y, |dst| blend(dst, src));
                    fragments += 1;
                }
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += boundary_fragments;
        self.stats.blend_ops += fragments;
    }

    /// Draws raw triangles (the GPU-authentic path used by ablations and
    /// by callers that pre-triangulate geometry).
    pub fn draw_triangles<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        tris: &[[Point; 3]],
        mode: RasterMode,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(u32, Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.vertices += 3 * tris.len() as u64;
        self.stats.primitives += tris.len() as u64;
        let mut fragments = 0u64;
        for (i, tri) in tris.iter().enumerate() {
            rasterize_triangle(vp, *tri, mode, |x, y| {
                let frag = Frag {
                    x,
                    y,
                    boundary: mode == RasterMode::Conservative,
                };
                let src = shade(i as u32, frag);
                fb.update(x, y, |dst| blend(dst, src));
                fragments += 1;
            });
        }
        self.stats.fragments += fragments;
        if mode == RasterMode::Conservative {
            self.stats.boundary_fragments += fragments;
        }
        self.stats.blend_ops += fragments;
    }

    /// Full-screen pass: rewrites every texel through `f` (the Value
    /// Transform `V[f]` and Mask `M[M]` operators compile to this).
    pub fn map_texels<P, F>(&mut self, fb: &mut Texture<P>, mut f: F)
    where
        P: Copy + Default,
        F: FnMut(u32, u32, P) -> P,
    {
        self.begin_pass();
        self.stats.fullscreen_texels += fb.len() as u64;
        let w = fb.width() as usize;
        for (i, t) in fb.texels_mut().iter_mut().enumerate() {
            let x = (i % w) as u32;
            let y = (i / w) as u32;
            *t = f(x, y, *t);
        }
    }

    /// Full-screen binary blend: `dst[i] = blend(dst[i], src[i])` — the
    /// texture-vs-texture form of the Blend operator (alpha blending of
    /// two rendered canvases in the paper).
    ///
    /// Panics if the textures differ in size (canvases must share a
    /// viewport before blending; the Geometric Transform operator is the
    /// algebra's tool for aligning them).
    pub fn blend_into<P, B>(&mut self, dst: &mut Texture<P>, src: &Texture<P>, blend: B)
    where
        P: Copy + Default,
        B: Fn(P, P) -> P,
    {
        assert_eq!(
            (dst.width(), dst.height()),
            (src.width(), src.height()),
            "blend requires same-size framebuffers"
        );
        self.begin_pass();
        self.stats.fullscreen_texels += dst.len() as u64;
        self.stats.blend_ops += dst.len() as u64;
        for (d, s) in dst.texels_mut().iter_mut().zip(src.texels()) {
            *d = blend(*d, *s);
        }
    }

    /// Scatter pass: for every source texel, `target` chooses a world
    /// position in the destination viewport (or `None` to drop); the
    /// texel value is blended into the destination pixel.
    ///
    /// This realizes the value-dependent Geometric Transform
    /// `G[γ : S³ → R²]` — on a GPU this is a point-sprite re-render or
    /// transform feedback, with blending resolving collisions.
    pub fn scatter<P, T, B>(
        &mut self,
        src: &Texture<P>,
        dst_vp: &Viewport,
        dst: &mut Texture<P>,
        mut target: T,
        blend: B,
    ) where
        P: Copy + Default,
        T: FnMut(u32, u32, &P) -> Option<Point>,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.scatter_reads += src.len() as u64;
        let mut writes = 0u64;
        let w = src.width() as usize;
        for (i, t) in src.texels().iter().enumerate() {
            let x = (i % w) as u32;
            let y = (i / w) as u32;
            if let Some(world) = target(x, y, t) {
                if let Some((dx, dy)) = dst_vp.world_to_pixel(world) {
                    dst.update(dx, dy, |d| blend(d, *t));
                    writes += 1;
                }
            }
        }
        self.stats.scatter_writes += writes;
        self.stats.blend_ops += writes;
    }

    /// Parallel full-screen pass over row bands using scoped threads.
    ///
    /// Semantically identical to [`map_texels`](Self::map_texels); used
    /// when the host has cores to spare (fragment shading is
    /// embarrassingly parallel, which is the paper's whole point).
    pub fn par_map_texels<P, F>(&mut self, fb: &mut Texture<P>, threads: usize, f: F)
    where
        P: Copy + Default + Send,
        F: Fn(u32, u32, P) -> P + Sync,
    {
        self.begin_pass();
        self.stats.fullscreen_texels += fb.len() as u64;
        let w = fb.width() as usize;
        let threads = threads.max(1);
        let rows_per = (fb.height() as usize).div_ceil(threads);
        let band = rows_per * w;
        let texels = fb.texels_mut();
        crossbeam::thread::scope(|scope| {
            for (bi, chunk) in texels.chunks_mut(band.max(1)).enumerate() {
                let f = &f;
                scope.spawn(move |_| {
                    let base = bi * rows_per;
                    for (j, t) in chunk.iter_mut().enumerate() {
                        let x = (j % w) as u32;
                        let y = (base + j / w) as u32;
                        *t = f(x, y, *t);
                    }
                });
            }
        })
        .expect("raster worker thread panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;

    fn vp10() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn draw_points_accumulates_coincident() {
        let vp = vp10();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let mut pl = Pipeline::new();
        let pts = vec![
            Point::new(2.5, 2.5),
            Point::new(2.6, 2.4), // same pixel
            Point::new(7.5, 7.5),
        ];
        pl.draw_points(&vp, &mut fb, &pts, |_, _| 1u32, |d, s| d + s);
        assert_eq!(fb.get(2, 2), 2);
        assert_eq!(fb.get(7, 7), 1);
        let st = pl.stats();
        assert_eq!(st.vertices, 3);
        assert_eq!(st.fragments, 3);
        assert_eq!(st.blend_ops, 3);
        assert_eq!(st.passes, 1);
    }

    #[test]
    fn draw_polygon_exactly_once_per_pixel() {
        let vp = vp10();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let mut pl = Pipeline::new();
        let poly = Polygon::simple(vec![
            Point::new(1.0, 1.0),
            Point::new(8.0, 1.0),
            Point::new(8.0, 8.0),
            Point::new(1.0, 8.0),
        ])
        .unwrap();
        pl.draw_polygon(&vp, &mut fb, &poly, true, |_| 1u32, |d, s| d + s);
        // Every covered texel has value exactly 1 (no double emission
        // between boundary and interior passes).
        for (_, _, v) in fb.iter() {
            assert!(v <= 1, "pixel shaded {v} times");
        }
        let covered = fb.iter().filter(|&(_, _, v)| v == 1).count();
        assert!(covered >= 7 * 7, "interior must be covered, got {covered}");
        let st = pl.stats();
        assert_eq!(st.fragments as usize, covered);
        assert!(st.boundary_fragments > 0);
        assert!(st.boundary_fragments < st.fragments);
    }

    #[test]
    fn draw_polygon_conservative_covers_superset() {
        let vp = vp10();
        let poly = Polygon::simple(vec![
            Point::new(1.2, 1.3),
            Point::new(8.7, 1.9),
            Point::new(4.4, 8.2),
        ])
        .unwrap();
        let mut pl = Pipeline::new();
        let mut fb_std: Texture<u32> = Texture::new(10, 10);
        pl.draw_polygon(&vp, &mut fb_std, &poly, false, |_| 1u32, |d, s| d | s);
        let mut fb_cons: Texture<u32> = Texture::new(10, 10);
        pl.draw_polygon(&vp, &mut fb_cons, &poly, true, |_| 1u32, |d, s| d | s);
        for ((x, y, s), (_, _, c)) in fb_std.iter().zip(fb_cons.iter()) {
            assert!(c >= s, "conservative lost coverage at ({x},{y})");
        }
    }

    #[test]
    fn draw_polyline_dedups_shared_vertices() {
        let vp = vp10();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let mut pl = Pipeline::new();
        let line = Polyline::new(vec![
            Point::new(1.5, 1.5),
            Point::new(5.5, 1.5),
            Point::new(5.5, 6.5),
        ])
        .unwrap();
        pl.draw_polyline(&vp, &mut fb, &line, |_| 1u32, |d, s| d + s);
        for (_, _, v) in fb.iter() {
            assert!(v <= 1, "polyline pixel shaded {v} times");
        }
        // The corner pixel (5,1) appears once despite ending one segment
        // and starting the next.
        assert_eq!(fb.get(5, 1), 1);
    }

    #[test]
    fn blend_into_counts_and_merges() {
        let mut pl = Pipeline::new();
        let mut dst: Texture<u32> = Texture::filled(4, 4, 1);
        let src: Texture<u32> = Texture::filled(4, 4, 2);
        pl.blend_into(&mut dst, &src, |d, s| d + s);
        assert!(dst.iter().all(|(_, _, v)| v == 3));
        assert_eq!(pl.stats().fullscreen_texels, 16);
        assert_eq!(pl.stats().blend_ops, 16);
    }

    #[test]
    #[should_panic(expected = "same-size")]
    fn blend_size_mismatch_panics() {
        let mut pl = Pipeline::new();
        let mut dst: Texture<u32> = Texture::new(4, 4);
        let src: Texture<u32> = Texture::new(4, 5);
        pl.blend_into(&mut dst, &src, |d, _| d);
    }

    #[test]
    fn map_texels_visits_every_pixel_once() {
        let mut pl = Pipeline::new();
        let mut fb: Texture<u32> = Texture::new(5, 3);
        pl.map_texels(&mut fb, |_, _, v| v + 1);
        assert!(fb.iter().all(|(_, _, v)| v == 1));
        assert_eq!(pl.stats().fullscreen_texels, 15);
    }

    #[test]
    fn map_texels_coordinates_correct() {
        let mut pl = Pipeline::new();
        let mut fb: Texture<u32> = Texture::new(4, 4);
        pl.map_texels(&mut fb, |x, y, _| x + 10 * y);
        assert_eq!(fb.get(3, 2), 23);
        assert_eq!(fb.get(0, 0), 0);
    }

    #[test]
    fn scatter_moves_and_accumulates() {
        let vp = vp10();
        let mut pl = Pipeline::new();
        let mut src: Texture<u32> = Texture::new(10, 10);
        src.set(1, 1, 5);
        src.set(8, 8, 7);
        let mut dst: Texture<u32> = Texture::new(10, 10);
        // Send every non-zero texel to the world location (0.5, 0.5).
        pl.scatter(
            &src,
            &vp,
            &mut dst,
            |_, _, v| {
                if *v != 0 {
                    Some(Point::new(0.5, 0.5))
                } else {
                    None
                }
            },
            |d, s| d + s,
        );
        assert_eq!(dst.get(0, 0), 12);
        assert_eq!(pl.stats().scatter_reads, 100);
        assert_eq!(pl.stats().scatter_writes, 2);
    }

    #[test]
    fn scatter_drops_out_of_viewport_targets() {
        let vp = vp10();
        let mut pl = Pipeline::new();
        let mut src: Texture<u32> = Texture::new(10, 10);
        src.set(0, 0, 1);
        let mut dst: Texture<u32> = Texture::new(10, 10);
        pl.scatter(
            &src,
            &vp,
            &mut dst,
            |_, _, _| Some(Point::new(100.0, 100.0)),
            |d, s| d + s,
        );
        assert_eq!(pl.stats().scatter_writes, 0);
        assert!(dst.iter().all(|(_, _, v)| v == 0));
    }

    #[test]
    fn par_map_matches_sequential() {
        let mut pl = Pipeline::new();
        let mut a: Texture<u32> = Texture::new(16, 16);
        let mut b: Texture<u32> = Texture::new(16, 16);
        pl.map_texels(&mut a, |x, y, _| x * 31 + y * 7);
        pl.par_map_texels(&mut b, 3, |x, y, _| x * 31 + y * 7);
        assert_eq!(a, b);
    }

    #[test]
    fn upload_download_counters() {
        let mut pl = Pipeline::new();
        pl.note_upload(1024);
        pl.note_download(256);
        pl.note_compute_edge_tests(99);
        let st = pl.stats();
        assert_eq!(st.bytes_uploaded, 1024);
        assert_eq!(st.bytes_downloaded, 256);
        assert_eq!(st.compute_edge_tests, 99);
        pl.reset_stats();
        assert_eq!(pl.stats(), PipelineStats::default());
    }

    #[test]
    fn generation_stamps_survive_many_draws() {
        let vp = vp10();
        let mut pl = Pipeline::new();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let poly = Polygon::simple(vec![
            Point::new(2.0, 2.0),
            Point::new(7.0, 2.0),
            Point::new(7.0, 7.0),
            Point::new(2.0, 7.0),
        ])
        .unwrap();
        // Repeated draws accumulate exactly once each.
        for _ in 0..10 {
            pl.draw_polygon(&vp, &mut fb, &poly, true, |_| 1u32, |d, s| d + s);
        }
        let max = fb.iter().map(|(_, _, v)| v).max().unwrap();
        assert_eq!(max, 10);
    }
}
