//! The programmable pipeline: draw calls, full-screen passes, scatter.
//!
//! This is the software stand-in for the OpenGL pipeline of the paper's
//! prototype. Each operation mirrors a GPU-native stage:
//!
//! | paper / OpenGL                      | here                         |
//! |-------------------------------------|------------------------------|
//! | render geometry to off-screen buffer| [`Pipeline::draw_points`], [`Pipeline::draw_polyline`], [`Pipeline::draw_polygon`], [`Pipeline::draw_triangles`] |
//! | alpha blending of textures          | [`Pipeline::blend_into`]     |
//! | per-pixel parallel test (mask)      | [`Pipeline::map_texels`]     |
//! | vertex scatter (transform feedback) | [`Pipeline::scatter`]        |
//!
//! Every fragment is shaded by a caller-supplied closure and merged into
//! the framebuffer through a caller-supplied *blend function* — exactly
//! the programmable blend `⊙ : S³ × S³ → S³` of the algebra. All work is
//! counted in [`PipelineStats`] for the device cost model.

use crate::chain::{apply_chain_inplace, ChainOp, ChainRunReport, MaskOutcome, OpChain, TileBits};
use crate::par::WorkerPool;
use crate::rasterize::{
    rasterize_line_supercover, rasterize_point, rasterize_polygon_fill,
    rasterize_polygon_fill_rect_spans, rasterize_triangle, RasterMode,
};
use crate::simd::{self, BlendTag, TexelWords, ValueTag};
use crate::stats::PipelineStats;
use crate::texture::{RawTexels, Texture};
use crate::tile::TileGrid;
use crate::viewport::Viewport;
use canvas_geom::polygon::Polygon;
use canvas_geom::polyline::Polyline;
use canvas_geom::Point;
use canvas_obs as obs;
use std::sync::Arc;

/// Opens a draw-level trace span tagged with the active SIMD backend
/// and workload shape (no-op unless tracing is enabled).
fn draw_span(name: &'static str, primitives: usize, chain_ops: usize) -> obs::Span {
    let mut span = obs::span(name, "raster");
    if span.is_recording() {
        span.arg_u64("primitives", primitives as u64);
        span.arg_u64("chain_ops", chain_ops as u64);
        span.arg_str("simd_backend", || simd::active_backend().name().to_string());
    }
    span
}

/// Boxed chain-stage closure over tile jobs (`run_chain_*` internals):
/// applies one `OpChain` operator to one in-flight tile.
type TileStageFn<'c, J> = Box<dyn Fn(usize, &mut J) + Sync + 'c>;

/// A shaded fragment's rasterizer-provided context.
#[derive(Clone, Copy, Debug)]
pub struct Frag {
    /// Pixel coordinates in the target framebuffer.
    pub x: u32,
    pub y: u32,
    /// True when the fragment lies on conservative boundary coverage and
    /// therefore needs exact refinement (paper Section 5).
    pub boundary: bool,
}

/// Outcome of one [`Pipeline::patch_points_tiled`] call: how much of
/// the framebuffer an incremental delta actually touched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PatchReport {
    /// Tiles that received at least one delta point and were redrawn.
    pub dirty_tiles: usize,
    /// Total tiles of the framebuffer's grid.
    pub total_tiles: usize,
    /// In-viewport delta points blended.
    pub fragments: u64,
}

/// The software graphics pipeline. Owns work counters and scratch
/// buffers; framebuffers ([`Texture`]s) are passed per call.
#[derive(Debug)]
pub struct Pipeline {
    stats: PipelineStats,
    /// Generation-stamped visited marks for exactly-once fragment
    /// emission within a single polygon/polyline draw (O(1) reset).
    stamps: Vec<u32>,
    generation: u32,
    /// Checked-out/checked-in generation-stamped stamp planes for the
    /// chunk-parallel fragment visitor — reused across calls so the
    /// aggregation hot path never re-allocates or re-zeroes a
    /// full-viewport plane per chunk (the same O(1)-reset trick as
    /// `stamps`, one buffer per concurrent executor).
    fragment_scratch: std::sync::Mutex<Vec<StampPlane>>,
    /// The persistent executor behind every tiled draw and parallel
    /// full-screen pass. Workers are spawned once (`set_threads`) and
    /// parked between passes; a 1-thread pool spawns nothing and runs
    /// the identical decomposition inline (results are bit-identical
    /// at any thread count by construction).
    pool: Arc<WorkerPool>,
}

/// A reusable generation-stamped visited plane (see
/// [`Pipeline::visit_polygon_fragments`]).
#[derive(Debug, Default)]
struct StampPlane {
    stamps: Vec<u32>,
    gen: u32,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            stats: PipelineStats::default(),
            stamps: Vec::new(),
            generation: 0,
            fragment_scratch: std::sync::Mutex::new(Vec::new()),
            pool: Arc::new(WorkerPool::new(1)),
        }
    }
}

impl Pipeline {
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Sets the worker count used by the tiled draw paths and parallel
    /// full-screen passes (set from `Device::cpu_parallel`) by
    /// replacing the pipeline's worker pool. The old pool's workers
    /// are joined; the new pool's are spawned once, here, and reused
    /// by every subsequent pass.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.pool.threads() {
            self.pool = Arc::new(WorkerPool::new(threads));
        }
    }

    /// Shares an existing worker pool (e.g. between pipelines of one
    /// process) instead of spawning a fresh one.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = pool;
    }

    /// The persistent worker pool executing this pipeline's passes.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Snapshot of the cumulative work counters.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = PipelineStats::default();
    }

    /// Records a host→device buffer upload (geometry, attributes).
    pub fn note_upload(&mut self, bytes: u64) {
        self.stats.bytes_uploaded += bytes;
    }

    /// Records a device→host readback (result extraction).
    pub fn note_download(&mut self, bytes: u64) {
        self.stats.bytes_downloaded += bytes;
    }

    /// Records edge tests performed by a compute-style kernel (used by
    /// the traditional GPU PIP baseline).
    pub fn note_compute_edge_tests(&mut self, count: u64) {
        self.stats.compute_edge_tests += count;
    }

    fn begin_pass(&mut self) {
        self.stats.passes += 1;
    }

    fn fresh_generation(&mut self, len: usize) -> u32 {
        if self.stamps.len() < len {
            self.stamps.resize(len, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Wrapped: clear all stamps once and restart at 1.
            self.stamps.fill(0);
            self.generation = 1;
        }
        self.generation
    }

    /// Clears a framebuffer (glClear).
    pub fn clear<P: Copy + Default>(&mut self, fb: &mut Texture<P>) {
        self.begin_pass();
        self.stats.fullscreen_texels += fb.len() as u64;
        fb.clear();
    }

    /// Draws a batch of points: each point shades one fragment which is
    /// blended into the framebuffer. Coincident points blend repeatedly —
    /// that is what makes `B*[+]` accumulation work.
    pub fn draw_points<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        points: &[Point],
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(u32, Point) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.vertices += points.len() as u64;
        self.stats.primitives += points.len() as u64;
        let mut fragments = 0u64;
        for (i, &p) in points.iter().enumerate() {
            rasterize_point(vp, p, |x, y| {
                let src = shade(i as u32, p);
                fb.update(x, y, |dst| blend(dst, src));
                fragments += 1;
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += fragments; // points always need exact coords
        self.stats.blend_ops += fragments;
    }

    /// Draws a polyline with supercover (conservative) coverage. Each
    /// touched pixel is shaded exactly once per draw call.
    pub fn draw_polyline<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        line: &Polyline,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        let nverts = line.vertices().len() as u64;
        self.stats.vertices += nverts;
        self.stats.primitives += line.num_segments() as u64;
        let gen = self.fresh_generation(fb.len());
        let mut fragments = 0u64;
        let stamps = &mut self.stamps;
        for seg in line.segments() {
            rasterize_line_supercover(vp, seg.a, seg.b, |x, y| {
                let idx = (y as usize) * (vp.width() as usize) + x as usize;
                if stamps[idx] != gen {
                    stamps[idx] = gen;
                    let frag = Frag {
                        x,
                        y,
                        boundary: true,
                    };
                    let src = shade(frag);
                    fb.update(x, y, |dst| blend(dst, src));
                    fragments += 1;
                }
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += fragments;
        self.stats.blend_ops += fragments;
    }

    /// Draws a filled polygon (outer ring minus holes).
    ///
    /// Two sub-passes with exactly-once emission per pixel:
    /// 1. conservative boundary coverage of every ring edge
    ///    (`boundary = true` fragments — these are the pixels the mask
    ///    operator later refines against the exact vector data),
    /// 2. scanline interior fill at pixel centers for pixels not already
    ///    claimed by the boundary (`boundary = false`).
    ///
    /// With `conservative = false` the boundary pass is skipped and only
    /// center-sampled coverage is produced (the paper's "approximate
    /// result suffices" mode).
    pub fn draw_polygon<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        poly: &Polygon,
        conservative: bool,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.vertices += poly.num_vertices() as u64;
        self.stats.primitives += 1 + poly.holes().len() as u64;
        let gen = self.fresh_generation(fb.len());
        let mut fragments = 0u64;
        let mut boundary_fragments = 0u64;
        let width = vp.width() as usize;
        {
            let stamps = &mut self.stamps;
            if conservative {
                for edge in poly.edges() {
                    rasterize_line_supercover(vp, edge.a, edge.b, |x, y| {
                        let idx = (y as usize) * width + x as usize;
                        if stamps[idx] != gen {
                            stamps[idx] = gen;
                            let src = shade(Frag {
                                x,
                                y,
                                boundary: true,
                            });
                            fb.update(x, y, |dst| blend(dst, src));
                            fragments += 1;
                            boundary_fragments += 1;
                        }
                    });
                }
            }
            rasterize_polygon_fill(vp, poly, |x, y| {
                let idx = (y as usize) * width + x as usize;
                if stamps[idx] != gen {
                    stamps[idx] = gen;
                    let src = shade(Frag {
                        x,
                        y,
                        boundary: false,
                    });
                    fb.update(x, y, |dst| blend(dst, src));
                    fragments += 1;
                }
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += boundary_fragments;
        self.stats.blend_ops += fragments;
    }

    /// Draws a whole batch of polygons in **one** pass (a single
    /// instanced draw call submitting every polygon's geometry at once —
    /// how a GPU renders a polygon table). Per-polygon exactly-once
    /// fragment semantics are preserved; the shade closure receives the
    /// polygon index.
    #[allow(clippy::too_many_arguments)]
    pub fn draw_polygons_batch<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        polys: &[Polygon],
        conservative: bool,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(u32, Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        let mut fragments = 0u64;
        let mut boundary_fragments = 0u64;
        let width = vp.width() as usize;
        for (pi, poly) in polys.iter().enumerate() {
            self.stats.vertices += poly.num_vertices() as u64;
            self.stats.primitives += 1 + poly.holes().len() as u64;
            let gen = self.fresh_generation(fb.len());
            let stamps = &mut self.stamps;
            if conservative {
                for edge in poly.edges() {
                    rasterize_line_supercover(vp, edge.a, edge.b, |x, y| {
                        let idx = (y as usize) * width + x as usize;
                        if stamps[idx] != gen {
                            stamps[idx] = gen;
                            let src = shade(
                                pi as u32,
                                Frag {
                                    x,
                                    y,
                                    boundary: true,
                                },
                            );
                            fb.update(x, y, |dst| blend(dst, src));
                            fragments += 1;
                            boundary_fragments += 1;
                        }
                    });
                }
            }
            rasterize_polygon_fill(vp, poly, |x, y| {
                let idx = (y as usize) * width + x as usize;
                if stamps[idx] != gen {
                    stamps[idx] = gen;
                    let src = shade(
                        pi as u32,
                        Frag {
                            x,
                            y,
                            boundary: false,
                        },
                    );
                    fb.update(x, y, |dst| blend(dst, src));
                    fragments += 1;
                }
            });
        }
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += boundary_fragments;
        self.stats.blend_ops += fragments;
    }

    /// Draws raw triangles (the GPU-authentic path used by ablations and
    /// by callers that pre-triangulate geometry).
    pub fn draw_triangles<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        tris: &[[Point; 3]],
        mode: RasterMode,
        mut shade: S,
        blend: B,
    ) where
        P: Copy + Default,
        S: FnMut(u32, Frag) -> P,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.vertices += 3 * tris.len() as u64;
        self.stats.primitives += tris.len() as u64;
        let mut fragments = 0u64;
        for (i, tri) in tris.iter().enumerate() {
            rasterize_triangle(vp, *tri, mode, |x, y| {
                let frag = Frag {
                    x,
                    y,
                    boundary: mode == RasterMode::Conservative,
                };
                let src = shade(i as u32, frag);
                fb.update(x, y, |dst| blend(dst, src));
                fragments += 1;
            });
        }
        self.stats.fragments += fragments;
        if mode == RasterMode::Conservative {
            self.stats.boundary_fragments += fragments;
        }
        self.stats.blend_ops += fragments;
    }

    /// Full-screen pass: rewrites every texel through `f` (the Value
    /// Transform `V[f]` and Mask `M[M]` operators compile to this).
    pub fn map_texels<P, F>(&mut self, fb: &mut Texture<P>, mut f: F)
    where
        P: Copy + Default,
        F: FnMut(u32, u32, P) -> P,
    {
        self.begin_pass();
        self.stats.fullscreen_texels += fb.len() as u64;
        let w = fb.width() as usize;
        for (i, t) in fb.texels_mut().iter_mut().enumerate() {
            let x = (i % w) as u32;
            let y = (i / w) as u32;
            *t = f(x, y, *t);
        }
    }

    /// Full-screen binary blend: `dst[i] = blend(dst[i], src[i])` — the
    /// texture-vs-texture form of the Blend operator (alpha blending of
    /// two rendered canvases in the paper).
    ///
    /// Panics if the textures differ in size (canvases must share a
    /// viewport before blending; the Geometric Transform operator is the
    /// algebra's tool for aligning them).
    pub fn blend_into<P, B>(&mut self, dst: &mut Texture<P>, src: &Texture<P>, blend: B)
    where
        P: Copy + Default + Send + Sync,
        B: Fn(P, P) -> P + Sync,
    {
        assert_eq!(
            (dst.width(), dst.height()),
            (src.width(), src.height()),
            "blend requires same-size framebuffers"
        );
        self.begin_pass();
        self.stats.fullscreen_texels += dst.len() as u64;
        self.stats.blend_ops += dst.len() as u64;
        // Band-parallel when the device has workers: per-texel blends are
        // independent, so the decomposition cannot change the result.
        let band = dst
            .len()
            .div_ceil(self.pool.threads())
            .max(dst.width() as usize);
        self.pool
            .for_each_band_pair(band, dst.texels_mut(), src.texels(), |d_chunk, s_chunk| {
                for (d, s) in d_chunk.iter_mut().zip(s_chunk) {
                    *d = blend(*d, *s);
                }
            });
    }

    /// [`blend_into`](Self::blend_into) for a built-in blend function,
    /// carried as an op tag so each band takes the SIMD row kernel.
    /// Charges identical work counters and is bit-identical to the
    /// closure form (pointwise blends are order-free).
    pub fn blend_into_tagged<P>(&mut self, dst: &mut Texture<P>, src: &Texture<P>, tag: BlendTag)
    where
        P: TexelWords + Send + Sync,
    {
        assert_eq!(
            (dst.width(), dst.height()),
            (src.width(), src.height()),
            "blend requires same-size framebuffers"
        );
        self.begin_pass();
        self.stats.fullscreen_texels += dst.len() as u64;
        self.stats.blend_ops += dst.len() as u64;
        let be = simd::active_backend();
        let band = dst
            .len()
            .div_ceil(self.pool.threads())
            .max(dst.width() as usize);
        self.pool
            .for_each_band_pair(band, dst.texels_mut(), src.texels(), |d_chunk, s_chunk| {
                simd::blend_rows_with(be, tag, d_chunk, s_chunk);
            });
    }

    /// [`blend_into`](Self::blend_into) specialized to certain-cover
    /// planes (saturating add — the canvas Blend contract), dispatched
    /// to the SIMD `adds_epu16` kernel. Charges identical counters to
    /// the equivalent closure-form `blend_into` pass.
    pub fn blend_cover_into(&mut self, dst: &mut Texture<u16>, src: &Texture<u16>) {
        assert_eq!(
            (dst.width(), dst.height()),
            (src.width(), src.height()),
            "blend requires same-size framebuffers"
        );
        self.begin_pass();
        self.stats.fullscreen_texels += dst.len() as u64;
        self.stats.blend_ops += dst.len() as u64;
        let be = simd::active_backend();
        let band = dst
            .len()
            .div_ceil(self.pool.threads())
            .max(dst.width() as usize);
        self.pool
            .for_each_band_pair(band, dst.texels_mut(), src.texels(), |d_chunk, s_chunk| {
                simd::cover_add_rows_with(be, d_chunk, s_chunk);
            });
    }

    /// Full-screen pass over two aligned planes (texel + cover) with a
    /// band-local collector — the parallel form of the Mask operator's
    /// per-pixel test. `f` may rewrite both texels and push entries into
    /// the collector; collected values are returned concatenated in
    /// row-major band order, so the output is identical at any thread
    /// count.
    pub fn map_planes<A, C, T, F>(&mut self, a: &mut Texture<A>, c: &mut Texture<C>, f: F) -> Vec<T>
    where
        A: Copy + Default + Send,
        C: Copy + Default + Send,
        T: Send,
        F: Fn(u32, u32, &mut A, &mut C, &mut Vec<T>) + Sync,
    {
        assert_eq!(
            (a.width(), a.height()),
            (c.width(), c.height()),
            "planes must share dimensions"
        );
        self.begin_pass();
        self.stats.fullscreen_texels += a.len() as u64;
        let w = a.width() as usize;
        let parts =
            self.pool
                .for_each_band2(w, a.texels_mut(), c.texels_mut(), |row0, band_a, band_c| {
                    let mut collected = Vec::new();
                    for (j, (ta, tc)) in band_a.iter_mut().zip(band_c.iter_mut()).enumerate() {
                        let x = (j % w) as u32;
                        let y = (row0 + j / w) as u32;
                        f(x, y, ta, tc, &mut collected);
                    }
                    collected
                });
        parts.into_iter().flatten().collect()
    }

    /// Collector-free [`map_planes`](Self::map_planes): a pure in-place
    /// per-pixel rewrite of two aligned planes (the coarse Mask pass).
    pub fn map_planes_inplace<A, C, F>(&mut self, a: &mut Texture<A>, c: &mut Texture<C>, f: F)
    where
        A: Copy + Default + Send,
        C: Copy + Default + Send,
        F: Fn(u32, u32, &mut A, &mut C) + Sync,
    {
        assert_eq!(
            (a.width(), a.height()),
            (c.width(), c.height()),
            "planes must share dimensions"
        );
        self.begin_pass();
        self.stats.fullscreen_texels += a.len() as u64;
        let w = a.width() as usize;
        self.pool
            .for_each_band2(w, a.texels_mut(), c.texels_mut(), |row0, band_a, band_c| {
                for (j, (ta, tc)) in band_a.iter_mut().zip(band_c.iter_mut()).enumerate() {
                    let x = (j % w) as u32;
                    let y = (row0 + j / w) as u32;
                    f(x, y, ta, tc);
                }
            });
    }

    /// Scatter pass: for every source texel, `target` chooses a world
    /// position in the destination viewport (or `None` to drop); the
    /// texel value is blended into the destination pixel.
    ///
    /// This realizes the value-dependent Geometric Transform
    /// `G[γ : S³ → R²]` — on a GPU this is a point-sprite re-render or
    /// transform feedback, with blending resolving collisions.
    pub fn scatter<P, T, B>(
        &mut self,
        src: &Texture<P>,
        dst_vp: &Viewport,
        dst: &mut Texture<P>,
        mut target: T,
        blend: B,
    ) where
        P: Copy + Default,
        T: FnMut(u32, u32, &P) -> Option<Point>,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.scatter_reads += src.len() as u64;
        let writes = scatter_apply(src, dst_vp, dst, &mut target, &blend);
        self.stats.scatter_writes += writes;
        self.stats.blend_ops += writes;
    }

    // ------------------------------------------------------------------
    // Tiled draw paths (the data-parallel execution model).
    //
    // Primitives are binned to fixed-size framebuffer tiles; every tile
    // copies its planes in, rasterizes its binned primitives in input
    // order, and copies the result back in row-major tile order. The
    // same code runs at every thread count, so sequential and parallel
    // executions are bit-identical by construction (the per-pixel blend
    // order is the input primitive order either way).
    // ------------------------------------------------------------------

    /// Tile-parallel point draw — the batched form of
    /// [`draw_points`](Self::draw_points). Coincident points still blend
    /// in input order within their pixel.
    pub fn draw_points_tiled<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        points: &[Point],
        shade: S,
        blend: B,
    ) where
        P: Copy + Default + Send + Sync,
        S: Fn(u32, Point) -> P + Sync,
        B: Fn(P, P) -> P + Sync,
    {
        // A bare draw is a fused chain with zero operators — one tile
        // kernel, shared with the fused path.
        self.run_chain_points(vp, fb, None, points, shade, blend, &OpChain::new());
    }

    /// Charges the deterministic work counters of a chain's operator
    /// stages (identical to running the equivalent materialized
    /// full-screen passes, and independent of thread count).
    fn charge_chain_stats<P: Copy + Default>(&mut self, len: usize, chain: &OpChain<'_, P>) {
        let len = len as u64;
        for op in chain.ops() {
            match op {
                ChainOp::Map(_)
                | ChainOp::Mask(_)
                | ChainOp::MapTagged { .. }
                | ChainOp::MaskTagged { .. } => {
                    self.stats.passes += 1;
                    self.stats.fullscreen_texels += len;
                }
                ChainOp::Blend { src_cover, .. } | ChainOp::BlendTagged { src_cover, .. } => {
                    // A canvas Blend is one pass over the texel planes
                    // plus (when covers merge) one over the cover
                    // planes — exactly what two `blend_into` calls
                    // would charge. Tagged (SIMD) stages charge the
                    // same counters: the work model counts texels, not
                    // instructions.
                    let planes = if src_cover.is_some() { 2 } else { 1 };
                    self.stats.passes += planes;
                    self.stats.fullscreen_texels += planes * len;
                    self.stats.blend_ops += planes * len;
                }
            }
        }
    }

    /// Asserts every Blend operand shares the framebuffer's dimensions
    /// (the same contract `blend_into` enforces pass-by-pass).
    fn assert_chain_operands<P: Copy + Default>(fb: &Texture<P>, chain: &OpChain<'_, P>) {
        for op in chain.ops() {
            if let ChainOp::Blend { src, src_cover, .. }
            | ChainOp::BlendTagged { src, src_cover, .. } = op
            {
                assert_eq!(
                    (src.width(), src.height()),
                    (fb.width(), fb.height()),
                    "chain blend requires same-size framebuffers"
                );
                if let Some(sc) = src_cover {
                    assert_eq!(
                        (sc.width(), sc.height()),
                        (fb.width(), fb.height()),
                        "chain blend requires same-size cover planes"
                    );
                }
            }
        }
    }

    /// Fused `draw(points) → chain` execution (see [`OpChain`]): the
    /// tiled point draw streams each finished tile through every chain
    /// operator before it is blitted — intermediate canvases are never
    /// materialized, and at most `Policy::stream_window(workers)` tile
    /// buffers are live (reported in the returned [`ChainRunReport`]).
    ///
    /// Bit-identical to the materialized sequence (tiled draw, then one
    /// full-screen pass per operator) at any thread count, including
    /// the work counters. `cover` carries the run's certain-cover plane
    /// when the chain merges covers (canvas Blend) or masks.
    #[allow(clippy::too_many_arguments)]
    pub fn run_chain_points<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        mut cover: Option<&mut Texture<u16>>,
        points: &[Point],
        shade: S,
        blend: B,
        chain: &OpChain<'_, P>,
    ) -> ChainRunReport
    where
        P: Copy + Default + Send + Sync,
        S: Fn(u32, Point) -> P + Sync,
        B: Fn(P, P) -> P + Sync,
    {
        let _draw_span = draw_span("draw_points", points.len(), chain.len());
        self.begin_pass();
        self.stats.vertices += points.len() as u64;
        self.stats.primitives += points.len() as u64;
        self.charge_chain_stats(fb.len(), chain);
        Self::assert_chain_operands(fb, chain);
        assert!(
            !chain.blends_cover() || cover.is_some(),
            "chain blends cover planes but the run has no cover plane"
        );
        let mut masked = MaskOutcome::new(fb.width(), fb.len(), chain.mask_count());
        if points.is_empty() && chain.is_empty() {
            return ChainRunReport {
                tiles: 0,
                peak_tiles_in_flight: 0,
                masked,
            };
        }
        let pool = Arc::clone(&self.pool);
        let threads = pool.threads();
        // Single-worker fast path: binning and tile copies only pay off
        // when tiles run concurrently. The direct draw blends per pixel
        // in input order, exactly like the per-tile replay, and the
        // chain operators rewrite texels in place (same per-texel
        // kernels, whole-framebuffer rect), so results are bit-identical
        // to the parallel path (asserted in tests).
        if threads == 1 {
            let mut fragments = 0u64;
            for (i, &p) in points.iter().enumerate() {
                rasterize_point(vp, p, |x, y| {
                    let src = shade(i as u32, p);
                    fb.update(x, y, |dst| blend(dst, src));
                    fragments += 1;
                });
            }
            self.stats.fragments += fragments;
            self.stats.boundary_fragments += fragments;
            self.stats.blend_ops += fragments;
            apply_chain_inplace(chain, fb, cover.as_deref_mut(), &mut masked);
            return ChainRunReport {
                tiles: 0,
                peak_tiles_in_flight: 0,
                masked,
            };
        }
        let grid = TileGrid::new(vp.width(), vp.height());

        // Chunk-parallel binning; chunks merge in input order so every
        // tile sees its points in global input order. The workers emit
        // (tile, x, y, idx) so the sequential merge is a plain push and
        // the per-tile pass never recomputes coordinates.
        let chunk_size = points.len().div_ceil(threads).max(1);
        let chunks: Vec<&[Point]> = points.chunks(chunk_size).collect();
        let parts: Vec<Vec<(u32, u32, u32, u32)>> = pool.run_indexed(chunks.len(), |ci| {
            let base = (ci * chunk_size) as u32;
            let mut local = Vec::with_capacity(chunks[ci].len());
            for (k, &p) in chunks[ci].iter().enumerate() {
                if let Some((x, y)) = vp.world_to_pixel(p) {
                    local.push((grid.tile_of(x, y) as u32, x, y, base + k as u32));
                }
            }
            local
        });
        let mut bins: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); grid.num_tiles()];
        for part in &parts {
            for &(tile, x, y, idx) in part {
                bins[tile as usize].push((x, y, idx));
            }
        }

        // A bare draw only visits tiles that received primitives; a
        // chain visits every tile (the operators are full-screen
        // passes, so empty tiles still change).
        let work: Vec<usize> = if chain.is_empty() {
            (0..grid.num_tiles())
                .filter(|&t| !bins[t].is_empty())
                .collect()
        } else {
            (0..grid.num_tiles()).collect()
        };
        // Streaming merge: workers rasterize tiles, flow them through
        // the chain stages (any executor may advance any finished
        // tile), and this thread blits them in fixed tile order. Peak
        // memory holds O(streaming window) tile buffers instead of
        // every tile at once. SAFETY of the shared view: tile rects are
        // disjoint, and a tile is written only after its producer and
        // stage executors finished with it (ordered by the streaming
        // channel's mutex — see `RawTexels`).
        let shared = RawTexels::new(fb);
        // Only carry (copy in/out) the cover plane when some op can
        // actually change it — a Value-only chain would otherwise pay a
        // full extra plane copy per run for provably untouched covers.
        let chain_touches_cover = chain.blends_cover() || chain.mask_count() > 0;
        let shared_cover = if chain_touches_cover {
            cover.map(RawTexels::new)
        } else {
            None
        };
        struct PointTileJob<P> {
            t: usize,
            tex: Vec<P>,
            cov: Option<Vec<u16>>,
            bits: Vec<TileBits>,
            fragments: u64,
        }
        let produce = |wi: usize| -> PointTileJob<P> {
            let t = work[wi];
            let rect = grid.rect(t);
            let mut tex = unsafe { shared.read_rect(rect.x0, rect.y0, rect.w, rect.h) };
            let cov = shared_cover
                .as_ref()
                .map(|sc| unsafe { sc.read_rect(rect.x0, rect.y0, rect.w, rect.h) });
            let mut fragments = 0u64;
            for &(x, y, idx) in &bins[t] {
                let src = shade(idx, points[idx as usize]);
                let li = rect.local_index(x, y);
                tex[li] = blend(tex[li], src);
                fragments += 1;
            }
            let bits = (0..chain.mask_count())
                .map(|_| TileBits::new(rect.len()))
                .collect();
            PointTileJob {
                t,
                tex,
                cov,
                bits,
                fragments,
            }
        };
        let stage_fns: Vec<TileStageFn<'_, PointTileJob<P>>> = (0..chain.len())
            .map(|s| {
                let op_label = chain.ops()[s].label();
                Box::new(move |_i: usize, job: &mut PointTileJob<P>| {
                    let mut span = obs::span(op_label, "raster");
                    span.arg_u64("tile", job.t as u64);
                    let rect = grid.rect(job.t);
                    chain.apply_tile(s, rect, &mut job.tex, job.cov.as_deref_mut(), &mut job.bits);
                }) as TileStageFn<'_, PointTileJob<P>>
            })
            .collect();
        let stage_refs: Vec<canvas_executor::ChainStage<'_, PointTileJob<P>>> =
            stage_fns.iter().map(|b| &**b).collect();
        let mut fragments_total = 0u64;
        let mut blits = 0usize;
        let stream = pool.run_streaming_chain(work.len(), produce, &stage_refs, |_, job| {
            let rect = grid.rect(job.t);
            unsafe { shared.write_rect(rect.x0, rect.y0, rect.w, rect.h, &job.tex) };
            if let (Some(sc), Some(cov)) = (&shared_cover, &job.cov) {
                unsafe { sc.write_rect(rect.x0, rect.y0, rect.w, rect.h, cov) };
            }
            for (m, tb) in job.bits.iter().enumerate() {
                masked.import_tile(m, rect, tb);
            }
            fragments_total += job.fragments;
            blits += 1;
        });
        debug_assert_eq!(blits, work.len());
        self.stats.fragments += fragments_total;
        self.stats.boundary_fragments += fragments_total; // points need exact coords
        self.stats.blend_ops += fragments_total;
        ChainRunReport {
            tiles: stream.items,
            peak_tiles_in_flight: stream.peak_in_flight,
            masked,
        }
    }

    /// Incremental dirty-tile point patch: bins the (small) `points`
    /// delta to tiles, replays the blend only on tiles that received a
    /// point, and — when `value` is given — re-applies that pointwise
    /// value kernel over each dirty tile's texels. Clean tiles are
    /// never read or written, so a patch costs O(delta + dirty tiles),
    /// not O(framebuffer).
    ///
    /// This is the maintenance half of the streaming-ingest path: given
    /// a framebuffer produced by a full `draw → value` run over a point
    /// prefix, patching in the appended suffix reproduces the full run
    /// over the whole sequence bit-for-bit *provided* the value kernel
    /// rewrites every word the blend disturbs from words the blend
    /// folds associatively-by-suffix (true of the `HeatLog` live
    /// heatmap; fuzzed in `core/tests/incremental_equivalence.rs`).
    /// Binning is sequential and per-pixel replay order is global input
    /// order, so results are bit-identical at any thread count.
    pub fn patch_points_tiled<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        points: &[Point],
        shade: S,
        blend: B,
        value: Option<(simd::Backend, ValueTag)>,
    ) -> PatchReport
    where
        P: TexelWords + Send + Sync,
        S: Fn(u32, Point) -> P + Sync,
        B: Fn(P, P) -> P + Sync,
    {
        let _draw_span = draw_span("patch_points", points.len(), value.is_some() as usize);
        self.begin_pass();
        self.stats.vertices += points.len() as u64;
        self.stats.primitives += points.len() as u64;
        let grid = TileGrid::new(vp.width(), vp.height());
        // Sequential binning in input order: deltas are small by
        // assumption, and per-pixel replay order below is then the
        // global input order, exactly like a full tiled draw.
        let mut bins: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); grid.num_tiles()];
        let mut fragments = 0u64;
        for (i, &p) in points.iter().enumerate() {
            if let Some((x, y)) = vp.world_to_pixel(p) {
                bins[grid.tile_of(x, y)].push((x, y, i as u32));
                fragments += 1;
            }
        }
        let dirty: Vec<usize> = (0..grid.num_tiles())
            .filter(|&t| !bins[t].is_empty())
            .collect();
        self.stats.fragments += fragments;
        self.stats.boundary_fragments += fragments; // points need exact coords
        self.stats.blend_ops += fragments;
        if value.is_some() && !dirty.is_empty() {
            // The value re-apply is one pass over the dirty texels only
            // — the O(delta) point of the patch path, and exactly what
            // the counters should say it cost.
            self.stats.passes += 1;
            self.stats.fullscreen_texels += dirty
                .iter()
                .map(|&t| grid.rect(t).len() as u64)
                .sum::<u64>();
        }
        let report = PatchReport {
            dirty_tiles: dirty.len(),
            total_tiles: grid.num_tiles(),
            fragments,
        };
        if dirty.is_empty() {
            return report;
        }
        let pool = Arc::clone(&self.pool);
        let patch_tile = |tex: &mut [P], t: usize| {
            let rect = grid.rect(t);
            for &(x, y, idx) in &bins[t] {
                let li = rect.local_index(x, y);
                tex[li] = blend(tex[li], shade(idx, points[idx as usize]));
            }
            if let Some((be, tag)) = value {
                simd::value_rows_with(be, tag, tex);
            }
        };
        if pool.threads() == 1 || dirty.len() == 1 {
            for &t in &dirty {
                let rect = grid.rect(t);
                let mut tex = fb.read_rect(rect.x0, rect.y0, rect.w, rect.h);
                patch_tile(&mut tex, t);
                fb.write_rect(rect.x0, rect.y0, rect.w, rect.h, &tex);
            }
        } else {
            // SAFETY of the shared view: dirty tiles have pairwise
            // disjoint rects and each worker reads, replays and writes
            // only its own tile (see `RawTexels`).
            let shared = RawTexels::new(fb);
            pool.run_indexed(dirty.len(), |i| {
                let t = dirty[i];
                let rect = grid.rect(t);
                let mut tex = unsafe { shared.read_rect(rect.x0, rect.y0, rect.w, rect.h) };
                patch_tile(&mut tex, t);
                unsafe { shared.write_rect(rect.x0, rect.y0, rect.w, rect.h, &tex) };
            });
        }
        report
    }

    /// Tile-parallel batched polygon draw — the tiled form of
    /// [`draw_polygons_batch`](Self::draw_polygons_batch), fused with the
    /// canvas bookkeeping both render paths need: interior fragments
    /// raise the certain-`cover` plane, conservative boundary fragments
    /// are returned as `(record, pixel)` pairs (in deterministic
    /// tile-major, record-minor order) for the caller's boundary index.
    #[allow(clippy::too_many_arguments)]
    pub fn draw_polygons_tiled<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        cover: &mut Texture<u16>,
        polys: &[Polygon],
        conservative: bool,
        shade: S,
        blend: B,
    ) -> Vec<(u32, u32)>
    where
        P: Copy + Default + Send + Sync,
        S: Fn(u32, Frag) -> P + Sync,
        B: Fn(P, P) -> P + Sync,
    {
        // A bare draw is a fused chain with zero operators — one tile
        // kernel, shared with the fused path.
        self.run_chain_polygons(
            vp,
            fb,
            cover,
            polys,
            conservative,
            shade,
            blend,
            &OpChain::new(),
        )
        .0
    }

    /// Fused `draw(polygons) → chain` execution — the polygon-table
    /// sibling of [`run_chain_points`](Self::run_chain_points). The
    /// instanced tiled polygon draw (texels + certain-cover + boundary
    /// pairs) streams each finished tile through every chain operator
    /// before the single blit; returns the boundary list alongside the
    /// chain report.
    #[allow(clippy::too_many_arguments)]
    pub fn run_chain_polygons<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        cover: &mut Texture<u16>,
        polys: &[Polygon],
        conservative: bool,
        shade: S,
        blend: B,
        chain: &OpChain<'_, P>,
    ) -> (Vec<(u32, u32)>, ChainRunReport)
    where
        P: Copy + Default + Send + Sync,
        S: Fn(u32, Frag) -> P + Sync,
        B: Fn(P, P) -> P + Sync,
    {
        let _draw_span = draw_span("draw_polygons", polys.len(), chain.len());
        self.begin_pass();
        for poly in polys {
            self.stats.vertices += poly.num_vertices() as u64;
            self.stats.primitives += 1 + poly.holes().len() as u64;
        }
        self.charge_chain_stats(fb.len(), chain);
        Self::assert_chain_operands(fb, chain);
        let mut masked = MaskOutcome::new(fb.width(), fb.len(), chain.mask_count());
        let pool = Arc::clone(&self.pool);
        let threads = pool.threads();
        let width = vp.width();
        // Single-worker fast path: skip binning and tile plane copies and
        // rasterize against the whole framebuffer. Per pixel, records
        // blend in ascending order — the same order the tiled replay
        // produces — so canvases come out bit-identical (asserted in
        // tests; the raw boundary list differs only in pre-sort order).
        // Chain operators then rewrite the planes in place with the
        // same per-texel kernels the streamed tiles run.
        if threads == 1 {
            let mut boundary: Vec<(u32, u32)> = Vec::new();
            let (mut fragments, mut boundary_fragments) = (0u64, 0u64);
            for (pi, poly) in polys.iter().enumerate() {
                let pi = pi as u32;
                let gen = self.fresh_generation(fb.len());
                let stamps = &mut self.stamps;
                if conservative {
                    for edge in poly.edges() {
                        rasterize_line_supercover(vp, edge.a, edge.b, |x, y| {
                            let idx = (y * width + x) as usize;
                            if stamps[idx] != gen {
                                stamps[idx] = gen;
                                let src = shade(
                                    pi,
                                    Frag {
                                        x,
                                        y,
                                        boundary: true,
                                    },
                                );
                                fb.update(x, y, |dst| blend(dst, src));
                                boundary.push((pi, y * width + x));
                                fragments += 1;
                                boundary_fragments += 1;
                            }
                        });
                    }
                }
                // Span fill: when no pixel of a scanline run carries
                // this polygon's stamp yet (the common case — only
                // conservative boundary pixels are pre-stamped), the
                // stamp store and cover increment run as SIMD row
                // kernels and the per-pixel dedup test disappears. The
                // blend itself stays scalar left-to-right, so texels
                // come out bit-identical to the per-pixel path.
                let be = chain.resolved_backend();
                rasterize_polygon_fill_rect_spans(
                    vp,
                    poly,
                    0,
                    0,
                    width - 1,
                    vp.height() - 1,
                    |py, first, last| {
                        let row0 = (py * width + first) as usize;
                        let n = (last - first + 1) as usize;
                        let span_stamps = &mut stamps[row0..row0 + n];
                        if !simd::any_equals_with(be, span_stamps, gen) {
                            simd::fill_u32_with(be, span_stamps, gen);
                            for (c, t) in fb.texels_mut()[row0..row0 + n].iter_mut().enumerate() {
                                let src = shade(
                                    pi,
                                    Frag {
                                        x: first + c as u32,
                                        y: py,
                                        boundary: false,
                                    },
                                );
                                *t = blend(*t, src);
                            }
                            simd::cover_inc_with(be, &mut cover.texels_mut()[row0..row0 + n]);
                            fragments += n as u64;
                        } else {
                            for x in first..=last {
                                let idx = (py * width + x) as usize;
                                if stamps[idx] != gen {
                                    stamps[idx] = gen;
                                    let src = shade(
                                        pi,
                                        Frag {
                                            x,
                                            y: py,
                                            boundary: false,
                                        },
                                    );
                                    fb.update(x, py, |dst| blend(dst, src));
                                    cover.update(x, py, |c| c.saturating_add(1));
                                    fragments += 1;
                                }
                            }
                        }
                    },
                );
            }
            self.stats.fragments += fragments;
            self.stats.boundary_fragments += boundary_fragments;
            self.stats.blend_ops += fragments;
            apply_chain_inplace(chain, fb, Some(cover), &mut masked);
            return (
                boundary,
                ChainRunReport {
                    tiles: 0,
                    peak_tiles_in_flight: 0,
                    masked,
                },
            );
        }
        let grid = TileGrid::new(vp.width(), vp.height());

        // Bin polygons to the tiles their bounding boxes overlap.
        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); grid.num_tiles()];
        for (pi, poly) in polys.iter().enumerate() {
            if let Some((x0, y0, x1, y1)) = vp.pixel_range(&poly.bbox()) {
                for t in grid.tiles_overlapping(x0, y0, x1, y1) {
                    bins[t].push(pi as u32);
                }
            }
        }

        // A bare draw only visits tiles that received primitives; a
        // chain visits every tile (full-screen operators).
        let work: Vec<usize> = if chain.is_empty() {
            (0..grid.num_tiles())
                .filter(|&t| !bins[t].is_empty())
                .collect()
        } else {
            (0..grid.num_tiles()).collect()
        };
        // Streaming merge (see `run_chain_points`): tiles are blitted
        // in fixed tile order as they finish; the boundary list is
        // extended in the same order, so results are bit-identical to
        // the all-materialized merge while peak memory holds only the
        // pool's streaming window of tile buffers.
        let shared_fb = RawTexels::new(fb);
        let shared_cover = RawTexels::new(cover);
        let mut all_boundary = Vec::new();
        let (mut frag_total, mut bfrag_total) = (0u64, 0u64);
        struct PolyTileJob<P> {
            t: usize,
            tex: Vec<P>,
            cov: Vec<u16>,
            bits: Vec<TileBits>,
            boundary: Vec<(u32, u32)>,
            fragments: u64,
            boundary_fragments: u64,
        }
        let be = chain.resolved_backend();
        let produce = |wi: usize| -> PolyTileJob<P> {
            let t = work[wi];
            let rect = grid.rect(t);
            let mut tex = unsafe { shared_fb.read_rect(rect.x0, rect.y0, rect.w, rect.h) };
            let mut cov = unsafe { shared_cover.read_rect(rect.x0, rect.y0, rect.w, rect.h) };
            let mut stamps = vec![0u32; rect.len()];
            let mut boundary: Vec<(u32, u32)> = Vec::new();
            let (mut fragments, mut boundary_fragments) = (0u64, 0u64);
            for (gen0, &pi) in bins[t].iter().enumerate() {
                let gen = gen0 as u32 + 1;
                let poly = &polys[pi as usize];
                if conservative {
                    for edge in poly.edges() {
                        // Supercover pixels never leave the edge's pixel
                        // bbox, so edges that cannot touch this tile are
                        // rejected before the O(length) walk.
                        let Some((ex0, ey0, ex1, ey1)) =
                            vp.pixel_range(&canvas_geom::BBox::from_corners(edge.a, edge.b))
                        else {
                            continue;
                        };
                        if !rect.intersects_range(ex0, ey0, ex1, ey1) {
                            continue;
                        }
                        rasterize_line_supercover(vp, edge.a, edge.b, |x, y| {
                            if !rect.contains(x, y) {
                                return;
                            }
                            let li = rect.local_index(x, y);
                            if stamps[li] != gen {
                                stamps[li] = gen;
                                let src = shade(
                                    pi,
                                    Frag {
                                        x,
                                        y,
                                        boundary: true,
                                    },
                                );
                                tex[li] = blend(tex[li], src);
                                boundary.push((pi, y * width + x));
                                fragments += 1;
                                boundary_fragments += 1;
                            }
                        });
                    }
                }
                // Span fill (see the single-worker path above): fresh
                // scanline runs take the SIMD stamp/cover row kernels
                // with a scalar left-to-right blend; runs that overlap
                // pre-stamped boundary pixels fall back to the
                // per-pixel dedup loop. Same pixels, same blend order,
                // bit-identical texels.
                rasterize_polygon_fill_rect_spans(
                    vp,
                    poly,
                    rect.x0,
                    rect.y0,
                    rect.x0 + rect.w - 1,
                    rect.y0 + rect.h - 1,
                    |py, first, last| {
                        let li0 = rect.local_index(first, py);
                        let n = (last - first + 1) as usize;
                        let span_stamps = &mut stamps[li0..li0 + n];
                        if !simd::any_equals_with(be, span_stamps, gen) {
                            simd::fill_u32_with(be, span_stamps, gen);
                            for (c, t) in tex[li0..li0 + n].iter_mut().enumerate() {
                                let src = shade(
                                    pi,
                                    Frag {
                                        x: first + c as u32,
                                        y: py,
                                        boundary: false,
                                    },
                                );
                                *t = blend(*t, src);
                            }
                            simd::cover_inc_with(be, &mut cov[li0..li0 + n]);
                            fragments += n as u64;
                        } else {
                            for x in first..=last {
                                let li = rect.local_index(x, py);
                                if stamps[li] != gen {
                                    stamps[li] = gen;
                                    let src = shade(
                                        pi,
                                        Frag {
                                            x,
                                            y: py,
                                            boundary: false,
                                        },
                                    );
                                    tex[li] = blend(tex[li], src);
                                    cov[li] = cov[li].saturating_add(1);
                                    fragments += 1;
                                }
                            }
                        }
                    },
                );
            }
            let bits = (0..chain.mask_count())
                .map(|_| TileBits::new(rect.len()))
                .collect();
            PolyTileJob {
                t,
                tex,
                cov,
                bits,
                boundary,
                fragments,
                boundary_fragments,
            }
        };
        let stage_fns: Vec<TileStageFn<'_, PolyTileJob<P>>> = (0..chain.len())
            .map(|s| {
                let op_label = chain.ops()[s].label();
                Box::new(move |_i: usize, job: &mut PolyTileJob<P>| {
                    let mut span = obs::span(op_label, "raster");
                    span.arg_u64("tile", job.t as u64);
                    let rect = grid.rect(job.t);
                    chain.apply_tile(s, rect, &mut job.tex, Some(&mut job.cov), &mut job.bits);
                }) as TileStageFn<'_, PolyTileJob<P>>
            })
            .collect();
        let stage_refs: Vec<canvas_executor::ChainStage<'_, PolyTileJob<P>>> =
            stage_fns.iter().map(|b| &**b).collect();
        let stream = pool.run_streaming_chain(work.len(), produce, &stage_refs, |_, job| {
            let rect = grid.rect(job.t);
            unsafe {
                shared_fb.write_rect(rect.x0, rect.y0, rect.w, rect.h, &job.tex);
                shared_cover.write_rect(rect.x0, rect.y0, rect.w, rect.h, &job.cov);
            }
            for (m, tb) in job.bits.iter().enumerate() {
                masked.import_tile(m, rect, tb);
            }
            all_boundary.extend(job.boundary);
            frag_total += job.fragments;
            bfrag_total += job.boundary_fragments;
        });
        self.stats.fragments += frag_total;
        self.stats.boundary_fragments += bfrag_total;
        self.stats.blend_ops += frag_total;
        (
            all_boundary,
            ChainRunReport {
                tiles: stream.items,
                peak_tiles_in_flight: stream.peak_in_flight,
                masked,
            },
        )
    }

    /// Tile-parallel polyline table draw — the tiled form of one
    /// [`draw_polyline`](Self::draw_polyline) call per record. Every
    /// covered pixel is a conservative boundary pixel; the returned
    /// `(record, pixel)` pairs are in deterministic order.
    pub fn draw_polylines_tiled<P, S, B>(
        &mut self,
        vp: &Viewport,
        fb: &mut Texture<P>,
        lines: &[Polyline],
        shade: S,
        blend: B,
    ) -> Vec<(u32, u32)>
    where
        P: Copy + Default + Send + Sync,
        S: Fn(u32, Frag) -> P + Sync,
        B: Fn(P, P) -> P + Sync,
    {
        let _draw_span = draw_span("draw_polylines", lines.len(), 0);
        self.begin_pass();
        for line in lines {
            self.stats.vertices += line.vertices().len() as u64;
            self.stats.primitives += line.num_segments() as u64;
        }
        let pool = Arc::clone(&self.pool);
        let threads = pool.threads();
        let width = vp.width();
        // Single-worker fast path (see draw_polygons_tiled).
        if threads == 1 {
            let mut boundary: Vec<(u32, u32)> = Vec::new();
            let mut fragments = 0u64;
            for (li, line) in lines.iter().enumerate() {
                let li = li as u32;
                let gen = self.fresh_generation(fb.len());
                let stamps = &mut self.stamps;
                for seg in line.segments() {
                    rasterize_line_supercover(vp, seg.a, seg.b, |x, y| {
                        let idx = (y * width + x) as usize;
                        if stamps[idx] != gen {
                            stamps[idx] = gen;
                            let src = shade(
                                li,
                                Frag {
                                    x,
                                    y,
                                    boundary: true,
                                },
                            );
                            fb.update(x, y, |dst| blend(dst, src));
                            boundary.push((li, y * width + x));
                            fragments += 1;
                        }
                    });
                }
            }
            self.stats.fragments += fragments;
            self.stats.boundary_fragments += fragments;
            self.stats.blend_ops += fragments;
            return boundary;
        }
        let grid = TileGrid::new(vp.width(), vp.height());

        let mut bins: Vec<Vec<u32>> = vec![Vec::new(); grid.num_tiles()];
        for (li, line) in lines.iter().enumerate() {
            if let Some((x0, y0, x1, y1)) = vp.pixel_range(&line.bbox()) {
                for t in grid.tiles_overlapping(x0, y0, x1, y1) {
                    bins[t].push(li as u32);
                }
            }
        }

        let work: Vec<usize> = (0..grid.num_tiles())
            .filter(|&t| !bins[t].is_empty())
            .collect();
        // Streaming merge (see `draw_points_tiled`).
        let shared = RawTexels::new(fb);
        let mut all_boundary = Vec::new();
        let mut frag_total = 0u64;
        // (tile, texels, boundary entries, fragment count)
        type LineTileOut<P> = (usize, Vec<P>, Vec<(u32, u32)>, u64);
        let produce = |wi: usize| -> LineTileOut<P> {
            let t = work[wi];
            let rect = grid.rect(t);
            let mut tex = unsafe { shared.read_rect(rect.x0, rect.y0, rect.w, rect.h) };
            let mut stamps = vec![0u32; rect.len()];
            let mut boundary: Vec<(u32, u32)> = Vec::new();
            let mut fragments = 0u64;
            for (gen0, &li) in bins[t].iter().enumerate() {
                let gen = gen0 as u32 + 1;
                for seg in lines[li as usize].segments() {
                    // Same per-segment tile reject as the polygon
                    // boundary pass.
                    let Some((ex0, ey0, ex1, ey1)) =
                        vp.pixel_range(&canvas_geom::BBox::from_corners(seg.a, seg.b))
                    else {
                        continue;
                    };
                    if !rect.intersects_range(ex0, ey0, ex1, ey1) {
                        continue;
                    }
                    rasterize_line_supercover(vp, seg.a, seg.b, |x, y| {
                        if !rect.contains(x, y) {
                            return;
                        }
                        let idx = rect.local_index(x, y);
                        if stamps[idx] != gen {
                            stamps[idx] = gen;
                            let src = shade(
                                li,
                                Frag {
                                    x,
                                    y,
                                    boundary: true,
                                },
                            );
                            tex[idx] = blend(tex[idx], src);
                            boundary.push((li, y * width + x));
                            fragments += 1;
                        }
                    });
                }
            }
            (t, tex, boundary, fragments)
        };
        pool.run_streaming(work.len(), produce, |_, (t, tex, boundary, fragments)| {
            let rect = grid.rect(t);
            unsafe { shared.write_rect(rect.x0, rect.y0, rect.w, rect.h, &tex) };
            all_boundary.extend(boundary);
            frag_total += fragments;
        });
        self.stats.fragments += frag_total;
        self.stats.boundary_fragments += frag_total;
        self.stats.blend_ops += frag_total;
        all_boundary
    }

    /// Parallel full-screen pass over row bands on the worker pool.
    ///
    /// Semantically identical to [`map_texels`](Self::map_texels) —
    /// bit-identical at any thread count, since each texel is rewritten
    /// independently — but requires a shareable `Fn` shader. The Value
    /// Transform operator `V[f]` compiles to this (fragment shading is
    /// embarrassingly parallel, which is the paper's whole point).
    pub fn par_map_texels<P, F>(&mut self, fb: &mut Texture<P>, f: F)
    where
        P: Copy + Default + Send,
        F: Fn(u32, u32, P) -> P + Sync,
    {
        self.begin_pass();
        self.stats.fullscreen_texels += fb.len() as u64;
        let w = fb.width() as usize;
        self.pool.for_each_band1(w, fb.texels_mut(), |row0, band| {
            for (j, t) in band.iter_mut().enumerate() {
                let x = (j % w) as u32;
                let y = (row0 + j / w) as u32;
                *t = f(x, y, *t);
            }
        });
    }

    /// [`par_map_texels`](Self::par_map_texels) for a built-in value
    /// transform, carried as an op tag so each band takes the SIMD
    /// row kernel (position-independent, so bands need no coordinate
    /// bookkeeping). Charges identical work counters.
    pub fn par_map_texels_tagged<P>(&mut self, fb: &mut Texture<P>, tag: ValueTag)
    where
        P: TexelWords + Send + Sync,
    {
        self.begin_pass();
        self.stats.fullscreen_texels += fb.len() as u64;
        let be = simd::active_backend();
        let w = fb.width() as usize;
        self.pool.for_each_band1(w, fb.texels_mut(), |_row0, band| {
            simd::value_rows_with(be, tag, band);
        });
    }

    /// Deterministic parallel scatter — the pool-backed form of
    /// [`scatter`](Self::scatter) for shareable (`Fn + Sync`) target
    /// functions. Source bands are claimed by workers, which evaluate
    /// `target` (the expensive part: the value-form γ of the Geometric
    /// Transform) and emit `(dst_pixel, value)` write lists; the
    /// calling thread applies the blends **in source row-major order**
    /// through the streaming merge, so the destination is bit-identical
    /// to the sequential scatter at any thread count. In-flight write
    /// lists are bounded by the pool's streaming window.
    pub fn scatter_shared<P, T, B>(
        &mut self,
        src: &Texture<P>,
        dst_vp: &Viewport,
        dst: &mut Texture<P>,
        target: T,
        blend: B,
    ) where
        P: Copy + Default + Send + Sync,
        T: Fn(u32, u32, &P) -> Option<Point> + Sync,
        B: Fn(P, P) -> P,
    {
        self.begin_pass();
        self.stats.scatter_reads += src.len() as u64;
        let w = src.width() as usize;
        let n = src.len();
        let mut writes = 0u64;
        let pool = Arc::clone(&self.pool);
        if !pool.should_parallelize(n) {
            // Below the minimum-work threshold: the exact sequential
            // loop `scatter` runs (one implementation, shared).
            writes = scatter_apply(src, dst_vp, dst, &mut |x, y, t| target(x, y, t), &blend);
        } else {
            // A few chunks per executor so the merge pipeline stays fed.
            let chunk = n.div_ceil(pool.threads() * 4).max(1);
            let n_chunks = n.div_ceil(chunk);
            let texels = src.texels();
            pool.run_streaming(
                n_chunks,
                |ci| {
                    let lo = ci * chunk;
                    let hi = (lo + chunk).min(n);
                    let mut local: Vec<(u32, u32, P)> = Vec::new();
                    for (i, t) in texels[lo..hi].iter().enumerate() {
                        let i = lo + i;
                        let x = (i % w) as u32;
                        let y = (i / w) as u32;
                        if let Some(world) = target(x, y, t) {
                            if let Some((dx, dy)) = dst_vp.world_to_pixel(world) {
                                local.push((dx, dy, *t));
                            }
                        }
                    }
                    local
                },
                |_, local| {
                    for (dx, dy, v) in local {
                        dst.update(dx, dy, |d| blend(d, v));
                        writes += 1;
                    }
                },
            );
        }
        self.stats.scatter_writes += writes;
        self.stats.blend_ops += writes;
    }

    /// Chunk-parallel fragment visitation over a polygon table — the
    /// aggregation kernel behind the RasterJoin plan. Polygons are cut
    /// into contiguous chunks (one per executor); each chunk gets a
    /// fresh accumulator from `init(range)` and rasterizes its polygons
    /// with the exact per-polygon exactly-once fragment semantics of
    /// [`draw_polygons_batch`](Self::draw_polygons_batch) (conservative
    /// boundary pass first, then interior fill), calling
    /// `visit(&mut acc, record, frag)` per fragment. Accumulators
    /// return in chunk order.
    ///
    /// Because each polygon's fragments are visited by exactly one
    /// executor in the sequential emission order, any per-record
    /// accumulation is bit-identical to the sequential run at every
    /// thread count (the caller's contract: `visit` must only fold
    /// state per record, never across records of different chunks).
    pub fn visit_polygon_fragments<A, I, V>(
        &mut self,
        vp: &Viewport,
        polys: &[Polygon],
        conservative: bool,
        init: I,
        visit: V,
    ) -> Vec<A>
    where
        A: Send,
        I: Fn(std::ops::Range<usize>) -> A + Sync,
        V: Fn(&mut A, u32, Frag) + Sync,
    {
        self.visit_polygon_fragments_impl(vp, polys, None, conservative, init, visit)
    }

    /// Subset form of
    /// [`visit_polygon_fragments`](Self::visit_polygon_fragments):
    /// rasterizes only `polys[records[k]]` for each position `k`,
    /// passing the *position* `k` as the record index to `init` ranges
    /// and `visit` — so index-pruned plans walk a table subset without
    /// cloning polygons into a contiguous slice. Identical chunking and
    /// determinism contract.
    pub fn visit_polygon_fragments_indexed<A, I, V>(
        &mut self,
        vp: &Viewport,
        polys: &[Polygon],
        records: &[u32],
        conservative: bool,
        init: I,
        visit: V,
    ) -> Vec<A>
    where
        A: Send,
        I: Fn(std::ops::Range<usize>) -> A + Sync,
        V: Fn(&mut A, u32, Frag) + Sync,
    {
        self.visit_polygon_fragments_impl(vp, polys, Some(records), conservative, init, visit)
    }

    fn visit_polygon_fragments_impl<A, I, V>(
        &mut self,
        vp: &Viewport,
        polys: &[Polygon],
        records: Option<&[u32]>,
        conservative: bool,
        init: I,
        visit: V,
    ) -> Vec<A>
    where
        A: Send,
        I: Fn(std::ops::Range<usize>) -> A + Sync,
        V: Fn(&mut A, u32, Frag) + Sync,
    {
        self.begin_pass();
        let n = records.map_or(polys.len(), <[u32]>::len);
        let sel = move |k: usize| records.map_or(k, |r| r[k] as usize);
        for k in 0..n {
            let poly = &polys[sel(k)];
            self.stats.vertices += poly.num_vertices() as u64;
            self.stats.primitives += 1 + poly.holes().len() as u64;
        }
        if n == 0 {
            return Vec::new();
        }
        let pool = Arc::clone(&self.pool);
        let chunk = n.div_ceil(pool.threads()).max(1);
        let n_chunks = n.div_ceil(chunk);
        let fb_len = (vp.width() as usize) * (vp.height() as usize);
        let width = vp.width();
        let scratch = &self.fragment_scratch;
        let results: Vec<(A, u64, u64)> = pool.run_indexed(n_chunks, |ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(n);
            let mut acc = init(lo..hi);
            // Check a stamp plane out of the shared pool (allocated and
            // zeroed at most once per concurrent executor, ever);
            // generations continue across calls so reuse never clears.
            let mut plane = scratch
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop()
                .unwrap_or_default();
            if plane.stamps.len() < fb_len {
                plane.stamps.resize(fb_len, 0);
            }
            let n_gens = (hi - lo) as u32;
            if plane.gen.checked_add(n_gens).is_none() {
                // Generation counter wrapped: clear once and restart.
                plane.stamps.fill(0);
                plane.gen = 0;
            }
            let base_gen = plane.gen;
            let stamps = &mut plane.stamps;
            let (mut fragments, mut boundary_fragments) = (0u64, 0u64);
            for k in lo..hi {
                let poly = &polys[sel(k)];
                let gen = base_gen + (k - lo) as u32 + 1;
                let record = k as u32;
                if conservative {
                    for edge in poly.edges() {
                        rasterize_line_supercover(vp, edge.a, edge.b, |x, y| {
                            let idx = (y * width + x) as usize;
                            if stamps[idx] != gen {
                                stamps[idx] = gen;
                                visit(
                                    &mut acc,
                                    record,
                                    Frag {
                                        x,
                                        y,
                                        boundary: true,
                                    },
                                );
                                fragments += 1;
                                boundary_fragments += 1;
                            }
                        });
                    }
                }
                rasterize_polygon_fill(vp, poly, |x, y| {
                    let idx = (y * width + x) as usize;
                    if stamps[idx] != gen {
                        stamps[idx] = gen;
                        visit(
                            &mut acc,
                            record,
                            Frag {
                                x,
                                y,
                                boundary: false,
                            },
                        );
                        fragments += 1;
                    }
                });
            }
            plane.gen = base_gen + n_gens;
            scratch
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(plane);
            (acc, fragments, boundary_fragments)
        });
        let mut out = Vec::with_capacity(results.len());
        for (acc, fragments, boundary_fragments) in results {
            self.stats.fragments += fragments;
            self.stats.boundary_fragments += boundary_fragments;
            // The GPU kernel this models blends each fragment into its
            // group slot, so fragments are charged as blend ops exactly
            // like the batch-draw formulation used to.
            self.stats.blend_ops += fragments;
            out.push(acc);
        }
        out
    }
}

/// The scatter inner loop — single home of the texel→world→pixel→blend
/// sequence, shared by [`Pipeline::scatter`] and the below-threshold
/// branch of [`Pipeline::scatter_shared`] so the two can never diverge.
/// Returns the write count (the caller charges stats).
fn scatter_apply<P, T, B>(
    src: &Texture<P>,
    dst_vp: &Viewport,
    dst: &mut Texture<P>,
    target: &mut T,
    blend: &B,
) -> u64
where
    P: Copy + Default,
    T: FnMut(u32, u32, &P) -> Option<Point>,
    B: Fn(P, P) -> P,
{
    let w = src.width() as usize;
    let mut writes = 0u64;
    for (i, t) in src.texels().iter().enumerate() {
        let x = (i % w) as u32;
        let y = (i / w) as u32;
        if let Some(world) = target(x, y, t) {
            if let Some((dx, dy)) = dst_vp.world_to_pixel(world) {
                dst.update(dx, dy, |d| blend(d, *t));
                writes += 1;
            }
        }
    }
    writes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::Policy;
    use canvas_geom::BBox;

    fn vp10() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn draw_points_accumulates_coincident() {
        let vp = vp10();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let mut pl = Pipeline::new();
        let pts = vec![
            Point::new(2.5, 2.5),
            Point::new(2.6, 2.4), // same pixel
            Point::new(7.5, 7.5),
        ];
        pl.draw_points(&vp, &mut fb, &pts, |_, _| 1u32, |d, s| d + s);
        assert_eq!(fb.get(2, 2), 2);
        assert_eq!(fb.get(7, 7), 1);
        let st = pl.stats();
        assert_eq!(st.vertices, 3);
        assert_eq!(st.fragments, 3);
        assert_eq!(st.blend_ops, 3);
        assert_eq!(st.passes, 1);
    }

    #[test]
    fn draw_polygon_exactly_once_per_pixel() {
        let vp = vp10();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let mut pl = Pipeline::new();
        let poly = Polygon::simple(vec![
            Point::new(1.0, 1.0),
            Point::new(8.0, 1.0),
            Point::new(8.0, 8.0),
            Point::new(1.0, 8.0),
        ])
        .unwrap();
        pl.draw_polygon(&vp, &mut fb, &poly, true, |_| 1u32, |d, s| d + s);
        // Every covered texel has value exactly 1 (no double emission
        // between boundary and interior passes).
        for (_, _, v) in fb.iter() {
            assert!(v <= 1, "pixel shaded {v} times");
        }
        let covered = fb.iter().filter(|&(_, _, v)| v == 1).count();
        assert!(covered >= 7 * 7, "interior must be covered, got {covered}");
        let st = pl.stats();
        assert_eq!(st.fragments as usize, covered);
        assert!(st.boundary_fragments > 0);
        assert!(st.boundary_fragments < st.fragments);
    }

    #[test]
    fn draw_polygon_conservative_covers_superset() {
        let vp = vp10();
        let poly = Polygon::simple(vec![
            Point::new(1.2, 1.3),
            Point::new(8.7, 1.9),
            Point::new(4.4, 8.2),
        ])
        .unwrap();
        let mut pl = Pipeline::new();
        let mut fb_std: Texture<u32> = Texture::new(10, 10);
        pl.draw_polygon(&vp, &mut fb_std, &poly, false, |_| 1u32, |d, s| d | s);
        let mut fb_cons: Texture<u32> = Texture::new(10, 10);
        pl.draw_polygon(&vp, &mut fb_cons, &poly, true, |_| 1u32, |d, s| d | s);
        for ((x, y, s), (_, _, c)) in fb_std.iter().zip(fb_cons.iter()) {
            assert!(c >= s, "conservative lost coverage at ({x},{y})");
        }
    }

    #[test]
    fn draw_polyline_dedups_shared_vertices() {
        let vp = vp10();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let mut pl = Pipeline::new();
        let line = Polyline::new(vec![
            Point::new(1.5, 1.5),
            Point::new(5.5, 1.5),
            Point::new(5.5, 6.5),
        ])
        .unwrap();
        pl.draw_polyline(&vp, &mut fb, &line, |_| 1u32, |d, s| d + s);
        for (_, _, v) in fb.iter() {
            assert!(v <= 1, "polyline pixel shaded {v} times");
        }
        // The corner pixel (5,1) appears once despite ending one segment
        // and starting the next.
        assert_eq!(fb.get(5, 1), 1);
    }

    #[test]
    fn blend_into_counts_and_merges() {
        let mut pl = Pipeline::new();
        let mut dst: Texture<u32> = Texture::filled(4, 4, 1);
        let src: Texture<u32> = Texture::filled(4, 4, 2);
        pl.blend_into(&mut dst, &src, |d, s| d + s);
        assert!(dst.iter().all(|(_, _, v)| v == 3));
        assert_eq!(pl.stats().fullscreen_texels, 16);
        assert_eq!(pl.stats().blend_ops, 16);
    }

    #[test]
    #[should_panic(expected = "same-size")]
    fn blend_size_mismatch_panics() {
        let mut pl = Pipeline::new();
        let mut dst: Texture<u32> = Texture::new(4, 4);
        let src: Texture<u32> = Texture::new(4, 5);
        pl.blend_into(&mut dst, &src, |d, _| d);
    }

    #[test]
    fn map_texels_visits_every_pixel_once() {
        let mut pl = Pipeline::new();
        let mut fb: Texture<u32> = Texture::new(5, 3);
        pl.map_texels(&mut fb, |_, _, v| v + 1);
        assert!(fb.iter().all(|(_, _, v)| v == 1));
        assert_eq!(pl.stats().fullscreen_texels, 15);
    }

    #[test]
    fn map_texels_coordinates_correct() {
        let mut pl = Pipeline::new();
        let mut fb: Texture<u32> = Texture::new(4, 4);
        pl.map_texels(&mut fb, |x, y, _| x + 10 * y);
        assert_eq!(fb.get(3, 2), 23);
        assert_eq!(fb.get(0, 0), 0);
    }

    #[test]
    fn scatter_moves_and_accumulates() {
        let vp = vp10();
        let mut pl = Pipeline::new();
        let mut src: Texture<u32> = Texture::new(10, 10);
        src.set(1, 1, 5);
        src.set(8, 8, 7);
        let mut dst: Texture<u32> = Texture::new(10, 10);
        // Send every non-zero texel to the world location (0.5, 0.5).
        pl.scatter(
            &src,
            &vp,
            &mut dst,
            |_, _, v| {
                if *v != 0 {
                    Some(Point::new(0.5, 0.5))
                } else {
                    None
                }
            },
            |d, s| d + s,
        );
        assert_eq!(dst.get(0, 0), 12);
        assert_eq!(pl.stats().scatter_reads, 100);
        assert_eq!(pl.stats().scatter_writes, 2);
    }

    #[test]
    fn scatter_drops_out_of_viewport_targets() {
        let vp = vp10();
        let mut pl = Pipeline::new();
        let mut src: Texture<u32> = Texture::new(10, 10);
        src.set(0, 0, 1);
        let mut dst: Texture<u32> = Texture::new(10, 10);
        pl.scatter(
            &src,
            &vp,
            &mut dst,
            |_, _, _| Some(Point::new(100.0, 100.0)),
            |d, s| d + s,
        );
        assert_eq!(pl.stats().scatter_writes, 0);
        assert!(dst.iter().all(|(_, _, v)| v == 0));
    }

    #[test]
    fn par_map_matches_sequential() {
        let mut pl = Pipeline::new();
        let mut a: Texture<u32> = Texture::new(16, 16);
        pl.map_texels(&mut a, |x, y, _| x * 31 + y * 7);
        let mut pp = Pipeline::new();
        pp.set_threads(3);
        let mut b: Texture<u32> = Texture::new(16, 16);
        pp.par_map_texels(&mut b, |x, y, _| x * 31 + y * 7);
        assert_eq!(a, b);
    }

    #[test]
    fn upload_download_counters() {
        let mut pl = Pipeline::new();
        pl.note_upload(1024);
        pl.note_download(256);
        pl.note_compute_edge_tests(99);
        let st = pl.stats();
        assert_eq!(st.bytes_uploaded, 1024);
        assert_eq!(st.bytes_downloaded, 256);
        assert_eq!(st.compute_edge_tests, 99);
        pl.reset_stats();
        assert_eq!(pl.stats(), PipelineStats::default());
    }

    fn vp_big() -> Viewport {
        // 3×2 tiles of 64px (with clipped edge tiles).
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            150,
            100,
        )
    }

    fn star(cx: f64, cy: f64, n: usize) -> Polygon {
        let verts: Vec<Point> = (0..n)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / n as f64;
                let r = if i % 2 == 0 { 40.0 } else { 22.0 };
                Point::new(cx + r * ang.cos(), cy + r * ang.sin())
            })
            .collect();
        Polygon::simple(verts).unwrap()
    }

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 110.0 - 5.0, next() * 110.0 - 5.0))
            .collect()
    }

    #[test]
    fn tiled_points_match_legacy_draw() {
        let vp = vp_big();
        let pts = pseudo_points(5_000, 41);
        let mut legacy: Texture<u32> = Texture::new(150, 100);
        let mut pl = Pipeline::new();
        pl.draw_points(
            &vp,
            &mut legacy,
            &pts,
            |i, _| i + 1,
            |d, s| d.wrapping_add(s),
        );
        let legacy_stats = pl.stats();
        for threads in [1usize, 4] {
            let mut tiled: Texture<u32> = Texture::new(150, 100);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            pt.draw_points_tiled(
                &vp,
                &mut tiled,
                &pts,
                |i, _| i + 1,
                |d, s| d.wrapping_add(s),
            );
            assert_eq!(legacy, tiled, "threads={threads}");
            assert_eq!(legacy_stats.fragments, pt.stats().fragments);
            assert_eq!(legacy_stats.blend_ops, pt.stats().blend_ops);
        }
    }

    #[test]
    fn tiled_polygons_match_legacy_draw() {
        let vp = vp_big();
        let polys = vec![
            star(40.0, 40.0, 17),
            star(70.0, 60.0, 23),
            star(20.0, 80.0, 9),
        ];
        // Legacy reference: batch draw plus manual cover/boundary
        // bookkeeping (what the canvas layer used to do inline).
        let mut legacy: Texture<u32> = Texture::new(150, 100);
        let mut legacy_cover: Texture<u16> = Texture::new(150, 100);
        let mut legacy_boundary: Vec<(u32, u32)> = Vec::new();
        let mut pl = Pipeline::new();
        pl.draw_polygons_batch(
            &vp,
            &mut legacy,
            &polys,
            true,
            |pi, frag| {
                if frag.boundary {
                    legacy_boundary.push((pi, frag.y * 150 + frag.x));
                } else {
                    legacy_cover.update(frag.x, frag.y, |c| c + 1);
                }
                pi + 1
            },
            |d, s| d.max(s),
        );
        for threads in [1usize, 4] {
            let mut tiled: Texture<u32> = Texture::new(150, 100);
            let mut cover: Texture<u16> = Texture::new(150, 100);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            let boundary = pt.draw_polygons_tiled(
                &vp,
                &mut tiled,
                &mut cover,
                &polys,
                true,
                |pi, _| pi + 1,
                |d, s| d.max(s),
            );
            assert_eq!(legacy, tiled, "texels, threads={threads}");
            assert_eq!(legacy_cover, cover, "cover, threads={threads}");
            // Same boundary pixel set per record (emission order differs:
            // legacy is per-polygon global, tiled is per-tile).
            let mut a = legacy_boundary.clone();
            let mut b = boundary;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "boundary entries, threads={threads}");
            assert_eq!(pl.stats().fragments, pt.stats().fragments);
            assert_eq!(pl.stats().boundary_fragments, pt.stats().boundary_fragments);
        }
    }

    #[test]
    fn tiled_polylines_match_legacy_draw() {
        let vp = vp_big();
        let lines = vec![
            Polyline::new(vec![
                Point::new(2.0, 3.0),
                Point::new(95.0, 40.0),
                Point::new(40.0, 95.0),
            ])
            .unwrap(),
            Polyline::new(vec![Point::new(-10.0, 50.0), Point::new(120.0, 55.0)]).unwrap(),
        ];
        let mut legacy: Texture<u32> = Texture::new(150, 100);
        let mut pl = Pipeline::new();
        for (li, line) in lines.iter().enumerate() {
            pl.draw_polyline(&vp, &mut legacy, line, |_| li as u32 + 1, |d, s| d | s);
        }
        for threads in [1usize, 4] {
            let mut tiled: Texture<u32> = Texture::new(150, 100);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            let boundary =
                pt.draw_polylines_tiled(&vp, &mut tiled, &lines, |li, _| li + 1, |d, s| d | s);
            assert_eq!(legacy, tiled, "threads={threads}");
            assert_eq!(pl.stats().fragments, pt.stats().fragments);
            // Every emitted pixel is boundary-linked exactly once per record.
            assert_eq!(boundary.len() as u64, pt.stats().fragments);
        }
    }

    #[test]
    fn tiled_parallel_identical_across_thread_counts() {
        let vp = vp_big();
        let pts = pseudo_points(3_000, 99);
        let polys = vec![star(50.0, 50.0, 31)];
        type Snapshot = (Texture<u32>, Texture<u16>, Vec<(u32, u32)>);
        let mut reference: Option<Snapshot> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut fb: Texture<u32> = Texture::new(150, 100);
            let mut cover: Texture<u16> = Texture::new(150, 100);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            pt.draw_points_tiled(&vp, &mut fb, &pts, |i, _| i, |d, s| d ^ s);
            let mut boundary = pt.draw_polygons_tiled(
                &vp,
                &mut fb,
                &mut cover,
                &polys,
                true,
                |_, f| (f.x + f.y) * 3,
                |d, s| d.wrapping_add(s),
            );
            // Raw emission order is record-major in the 1-thread fast
            // path and tile-major in parallel runs; canvases consume the
            // list pixel-sorted (record-ascending ties), so normalize
            // the same way before comparing.
            boundary.sort_unstable_by_key(|&(record, pixel)| (pixel, record));
            match &reference {
                None => reference = Some((fb, cover, boundary)),
                Some((rf, rc, rb)) => {
                    assert_eq!(rf, &fb, "texels diverge at {threads} threads");
                    assert_eq!(rc, &cover, "cover diverges at {threads} threads");
                    assert_eq!(rb, &boundary, "boundary diverges at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn map_planes_collects_in_row_major_order() {
        for threads in [1usize, 3] {
            let mut a: Texture<u32> = Texture::new(10, 9);
            let mut c: Texture<u16> = Texture::new(10, 9);
            let mut pl = Pipeline::new();
            pl.set_threads(threads);
            let collected = pl.map_planes(&mut a, &mut c, |x, y, t, cov, out| {
                *t = x + y;
                *cov = 1;
                if x == y {
                    out.push(y * 10 + x);
                }
            });
            assert_eq!(collected, vec![0, 11, 22, 33, 44, 55, 66, 77, 88]);
            assert_eq!(a.get(3, 5), 8);
            assert!(c.iter().all(|(_, _, v)| v == 1));
            assert_eq!(pl.stats().fullscreen_texels, 90);
        }
    }

    #[test]
    fn blend_into_parallel_matches_sequential() {
        let mut src: Texture<u32> = Texture::new(33, 21);
        let mut pl = Pipeline::new();
        pl.map_texels(&mut src, |x, y, _| x * 7 + y);
        let mut seq: Texture<u32> = Texture::filled(33, 21, 5);
        pl.blend_into(&mut seq, &src, |d, s| d.wrapping_mul(31).wrapping_add(s));
        let mut par: Texture<u32> = Texture::filled(33, 21, 5);
        let mut pp = Pipeline::new();
        pp.set_threads(4);
        pp.blend_into(&mut par, &src, |d, s| d.wrapping_mul(31).wrapping_add(s));
        assert_eq!(seq, par);
    }

    #[test]
    fn scatter_shared_matches_scatter_any_thread_count() {
        let vp = vp_big();
        let mut src: Texture<u32> = Texture::new(150, 100);
        let mut pl = Pipeline::new();
        pl.map_texels(&mut src, |x, y, _| (x * 7 + y * 13) % 5);
        let target = |x: u32, y: u32, v: &u32| {
            if *v == 0 {
                None
            } else {
                // Fold everything into a small square, with collisions.
                Some(Point::new((x % 7) as f64 + 0.5, (y % 7) as f64 + 0.5))
            }
        };
        let mut reference: Texture<u32> = Texture::new(150, 100);
        pl.scatter(&src, &vp, &mut reference, target, |d, s| {
            d.wrapping_mul(31).wrapping_add(s)
        });
        let ref_stats = pl.stats();
        for threads in [1usize, 2, 4] {
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            // Force the parallel path even on this small plane.
            let policy = Policy {
                min_parallel_items: 0,
                ..*pt.pool().policy()
            };
            pt.set_pool(Arc::new(WorkerPool::with_policy(threads, policy)));
            let mut dst: Texture<u32> = Texture::new(150, 100);
            pt.scatter_shared(&src, &vp, &mut dst, target, |d, s| {
                d.wrapping_mul(31).wrapping_add(s)
            });
            assert_eq!(reference, dst, "threads={threads}");
            assert_eq!(ref_stats.scatter_writes, pt.stats().scatter_writes);
            assert_eq!(ref_stats.scatter_reads, pt.stats().scatter_reads);
        }
    }

    #[test]
    fn visit_polygon_fragments_matches_batch_draw() {
        let vp = vp_big();
        let polys = vec![
            star(40.0, 40.0, 17),
            star(70.0, 60.0, 23),
            star(20.0, 80.0, 9),
        ];
        // Reference: per-record fragment tallies via the batch draw.
        let mut scratch: Texture<u32> = Texture::new(150, 100);
        let mut counts_ref = vec![(0u64, 0u64); polys.len()];
        let mut pl = Pipeline::new();
        pl.draw_polygons_batch(
            &vp,
            &mut scratch,
            &polys,
            true,
            |pi, frag| {
                let c = &mut counts_ref[pi as usize];
                if frag.boundary {
                    c.1 += 1;
                } else {
                    c.0 += 1;
                }
                0u32
            },
            |d, _| d,
        );
        for threads in [1usize, 3] {
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            let accs = pt.visit_polygon_fragments(
                &vp,
                &polys,
                true,
                |range| (range, Vec::<(u64, u64)>::new()),
                |acc, pi, frag| {
                    let local = (pi as usize) - acc.0.start;
                    if acc.1.len() <= local {
                        acc.1.resize(local + 1, (0, 0));
                    }
                    if frag.boundary {
                        acc.1[local].1 += 1;
                    } else {
                        acc.1[local].0 += 1;
                    }
                },
            );
            let mut counts = vec![(0u64, 0u64); polys.len()];
            for (range, local) in accs {
                for (k, c) in local.into_iter().enumerate() {
                    counts[range.start + k] = c;
                }
            }
            assert_eq!(counts, counts_ref, "threads={threads}");
            assert_eq!(pl.stats().fragments, pt.stats().fragments);
            assert_eq!(pl.stats().boundary_fragments, pt.stats().boundary_fragments);
            assert_eq!(pl.stats().blend_ops, pt.stats().blend_ops);
        }
    }

    #[test]
    fn fused_point_chain_matches_materialized_passes() {
        let vp = vp_big();
        let pts = pseudo_points(4_000, 7);
        let mut other: Texture<u32> = Texture::new(150, 100);
        let mut pl = Pipeline::new();
        pl.map_texels(&mut other, |x, y, _| (x * 5 + y * 3) % 11);

        // Materialized reference: draw, then one full-screen pass per
        // operator.
        let mut want: Texture<u32> = Texture::new(150, 100);
        let mut pm = Pipeline::new();
        pm.draw_points_tiled(&vp, &mut want, &pts, |i, _| i + 1, |d, s| d.wrapping_add(s));
        pm.par_map_texels(&mut want, |x, _, t| t.wrapping_mul(3) ^ x);
        pm.blend_into(&mut want, &other, |d, s| d.wrapping_add(s));
        // Coarse mask as a full-screen pass.
        pm.par_map_texels(&mut want, |_, _, t| if t.is_multiple_of(3) { t } else { 0 });
        let want_stats = pm.stats();

        for threads in [1usize, 2, 3, 8] {
            let mut fb: Texture<u32> = Texture::new(150, 100);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            let chain = OpChain::new()
                .map(|x, _, t: u32| t.wrapping_mul(3) ^ x)
                .blend(&other, |d, s| d.wrapping_add(s))
                .mask(|_, _, &t| t.is_multiple_of(3))
                .with_null_test(|&t| t == 0);
            let report = pt.run_chain_points(
                &vp,
                &mut fb,
                None,
                &pts,
                |i, _| i + 1,
                |d, s| d.wrapping_add(s),
                &chain,
            );
            assert_eq!(want, fb, "planes diverge at {threads} threads");
            assert_eq!(want_stats, pt.stats(), "stats diverge at {threads} threads");
            let window = pt.pool().policy().stream_window(pt.pool().worker_count());
            assert!(
                report.peak_tiles_in_flight <= window,
                "peak {} exceeds window {window} at {threads} threads",
                report.peak_tiles_in_flight
            );
            // The mask bitmap records exactly the nulled pixels.
            for (x, y, t) in fb.iter() {
                let pixel = y * 150 + x;
                assert_eq!(report.masked.is_null_after(0, pixel), t == 0);
            }
        }
    }

    #[test]
    fn fused_polygon_chain_matches_materialized_passes() {
        let vp = vp_big();
        let polys = vec![star(40.0, 40.0, 17), star(70.0, 60.0, 23)];
        let mut other: Texture<u32> = Texture::new(150, 100);
        let mut other_cover: Texture<u16> = Texture::new(150, 100);
        let mut pl = Pipeline::new();
        pl.map_texels(&mut other, |x, y, _| x + y);
        pl.map_texels(&mut other_cover, |x, _, _| (x % 3) as u16);

        let mut want: Texture<u32> = Texture::new(150, 100);
        let mut want_cover: Texture<u16> = Texture::new(150, 100);
        let mut pm = Pipeline::new();
        let mut want_boundary = pm.draw_polygons_tiled(
            &vp,
            &mut want,
            &mut want_cover,
            &polys,
            true,
            |pi, _| pi + 1,
            |d, s| d.max(s),
        );
        pm.blend_into(&mut want, &other, |d, s| d.wrapping_add(s));
        pm.blend_into(&mut want_cover, &other_cover, |d, s| d.saturating_add(s));
        // The reference coarse mask over both planes.
        pm.map_planes_inplace(&mut want, &mut want_cover, |x, y, t, cov| {
            if !(x + y).is_multiple_of(2) {
                *t = 0;
                *cov = 0;
            }
        });
        let want_stats = pm.stats();
        want_boundary.sort_unstable();

        for threads in [1usize, 2, 3, 8] {
            let mut fb: Texture<u32> = Texture::new(150, 100);
            let mut cover: Texture<u16> = Texture::new(150, 100);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            let chain = OpChain::new()
                .blend_with_cover(&other, &other_cover, |d, s| d.wrapping_add(s))
                .mask(|x, y, _| (x + y).is_multiple_of(2));
            let (mut boundary, report) = pt.run_chain_polygons(
                &vp,
                &mut fb,
                &mut cover,
                &polys,
                true,
                |pi, _| pi + 1,
                |d, s| d.max(s),
                &chain,
            );
            boundary.sort_unstable();
            assert_eq!(want, fb, "texels diverge at {threads} threads");
            assert_eq!(want_cover, cover, "cover diverges at {threads} threads");
            assert_eq!(
                want_boundary, boundary,
                "boundary diverges at {threads} threads"
            );
            assert_eq!(want_stats, pt.stats(), "stats diverge at {threads} threads");
            // Mask bitmap: without a null test, exactly the pixels the
            // keep-predicate rejected are recorded.
            for (x, y, _) in fb.iter() {
                let pixel = y * 150 + x;
                assert_eq!(
                    report.masked.is_null_after(0, pixel),
                    !(x + y).is_multiple_of(2)
                );
            }
        }
    }

    #[test]
    fn chain_on_empty_draw_still_runs_operators() {
        // 0 primitives: the draw contributes nothing, but the chain's
        // full-screen operators must still rewrite every texel.
        for threads in [1usize, 4] {
            let vp = vp_big();
            let mut fb: Texture<u32> = Texture::new(150, 100);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            let chain = OpChain::new().map(|x, y, _| x + 100 * y + 1);
            let report =
                pt.run_chain_points(&vp, &mut fb, None, &[], |_, _| 0u32, |d, s| d + s, &chain);
            assert!(fb.iter().all(|(x, y, t)| t == x + 100 * y + 1));
            assert_eq!(pt.stats().fragments, 0);
            if threads > 1 {
                assert_eq!(report.tiles, TileGrid::new(150, 100).num_tiles());
            }
        }
    }

    #[test]
    fn chain_on_single_tile_canvas() {
        // A canvas smaller than one tile exercises the 1-tile streaming
        // path end to end.
        let vp = vp10();
        let pts = vec![Point::new(2.5, 2.5), Point::new(7.5, 7.5)];
        let mut want: Texture<u32> = Texture::new(10, 10);
        let mut pm = Pipeline::new();
        pm.draw_points_tiled(&vp, &mut want, &pts, |_, _| 1, |d, s| d + s);
        pm.par_map_texels(&mut want, |_, _, t| t * 10 + 1);
        for threads in [1usize, 3] {
            let mut fb: Texture<u32> = Texture::new(10, 10);
            let mut pt = Pipeline::new();
            pt.set_threads(threads);
            let chain = OpChain::new().map(|_, _, t: u32| t * 10 + 1);
            let report =
                pt.run_chain_points(&vp, &mut fb, None, &pts, |_, _| 1, |d, s| d + s, &chain);
            assert_eq!(want, fb, "threads={threads}");
            assert!(report.peak_tiles_in_flight <= 1);
        }
    }

    #[test]
    fn generation_stamps_survive_many_draws() {
        let vp = vp10();
        let mut pl = Pipeline::new();
        let mut fb: Texture<u32> = Texture::new(10, 10);
        let poly = Polygon::simple(vec![
            Point::new(2.0, 2.0),
            Point::new(7.0, 2.0),
            Point::new(7.0, 7.0),
            Point::new(2.0, 7.0),
        ])
        .unwrap();
        // Repeated draws accumulate exactly once each.
        for _ in 0..10 {
            pl.draw_polygon(&vp, &mut fb, &poly, true, |_| 1u32, |d, s| d + s);
        }
        let max = fb.iter().map(|(_, _, v)| v).max().unwrap();
        assert_eq!(max, 10);
    }
}
