//! Device profiles and the GPU cost model.
//!
//! **Substitution note (see DESIGN.md §2).** The paper evaluates on two
//! physical GPUs — a discrete *Nvidia GTX 1070 Max-Q* and an integrated
//! *Intel UHD Graphics 630* — inside an i7-8750H laptop. This container
//! has one CPU core and no GPU, so hardware wall-clock cannot reproduce
//! those numbers. Instead, every pipeline operation counts its work
//! ([`PipelineStats`]) and a [`DeviceProfile`] converts the counts into
//! *modeled* execution time using published throughput figures for each
//! device. Wall-clock of the software pipeline is reported alongside the
//! model in every experiment, clearly labeled.
//!
//! The constants below are derived from vendor datasheets and common
//! measured rates:
//!
//! * GTX 1070 Max-Q: ~1.3 GHz × 2048 cores ≈ 5.3 TFLOP/s, 64 ROPs
//!   (≈80 Gpix/s theoretical fill; we model an effective shaded+blended
//!   fragment rate of 18 G/s), PCIe 3.0 ×16 ≈ 11 GB/s effective.
//! * UHD 630: 24 EUs ≈ 0.4 TFLOP/s, ~2–3 Gpix/s fill (modeled 1.4 G/s
//!   effective), shared DDR4 memory ≈ 8 GB/s effective for buffer "uploads".
//! * CPU figures model one core of the paper's i7-8750H (scalar) and all
//!   six cores with OpenMP-style scaling (parallel).
//!
//! Only *ratios* matter for the reproduction: the model must preserve who
//! wins and by roughly what factor (Figures 9 & 10), not absolute times.

use crate::stats::PipelineStats;
use std::borrow::Cow;
use std::fmt;

/// Throughput description of an execution device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name (appears in experiment output).
    pub name: Cow<'static, str>,
    /// Vertices transformed per second.
    pub vertex_rate: f64,
    /// Fragments shaded *and* blended per second (raster passes).
    pub fragment_rate: f64,
    /// Texels streamed per second in full-screen passes.
    pub fullscreen_rate: f64,
    /// Scatter operations per second (atomic-blend limited).
    pub scatter_rate: f64,
    /// Host↔device transfer bandwidth, bytes per second.
    pub transfer_bandwidth: f64,
    /// Fixed overhead per pass (driver/dispatch latency), seconds.
    pub pass_overhead: f64,
    /// Point-in-polygon edge tests per second in compute kernels
    /// (the traditional GPU baseline's work unit).
    pub edge_test_rate: f64,
}

impl DeviceProfile {
    /// The discrete laptop GPU of the paper's evaluation.
    pub fn nvidia_gtx_1070_max_q() -> Self {
        DeviceProfile {
            name: Cow::Borrowed("Nvidia GTX 1070 Max-Q (modeled)"),
            vertex_rate: 4.5e9,
            fragment_rate: 18.0e9,
            fullscreen_rate: 30.0e9,
            scatter_rate: 4.0e9,
            transfer_bandwidth: 11.0e9,
            pass_overhead: 25.0e-6,
            edge_test_rate: 25.0e9,
        }
    }

    /// The integrated GPU of the paper's evaluation.
    pub fn intel_uhd_630() -> Self {
        DeviceProfile {
            name: Cow::Borrowed("Intel UHD Graphics 630 (modeled)"),
            vertex_rate: 0.45e9,
            fragment_rate: 1.4e9,
            fullscreen_rate: 2.4e9,
            scatter_rate: 0.35e9,
            transfer_bandwidth: 8.0e9,
            pass_overhead: 40.0e-6,
            edge_test_rate: 1.6e9,
        }
    }

    /// One core of the paper's i7-8750H running the scalar refinement —
    /// the denominator of every speedup in Figures 9 & 10.
    pub fn cpu_scalar() -> Self {
        DeviceProfile {
            name: Cow::Borrowed("CPU 1 thread (modeled i7-8750H core)"),
            vertex_rate: 60.0e6,
            fragment_rate: 120.0e6,
            fullscreen_rate: 500.0e6,
            scatter_rate: 150.0e6,
            transfer_bandwidth: 25.0e9, // in-memory copy
            pass_overhead: 0.5e-6,
            edge_test_rate: 220.0e6,
        }
    }

    /// All six cores with OpenMP-style scaling (the paper's parallel
    /// CPU baseline); ~5.2× effective over one core.
    pub fn cpu_parallel() -> Self {
        let base = Self::cpu_scalar();
        DeviceProfile {
            name: Cow::Borrowed("CPU 12 threads OpenMP (modeled i7-8750H)"),
            vertex_rate: base.vertex_rate * 5.2,
            fragment_rate: base.fragment_rate * 5.2,
            fullscreen_rate: base.fullscreen_rate * 4.0, // memory bound
            scatter_rate: base.scatter_rate * 4.0,
            transfer_bandwidth: base.transfer_bandwidth,
            pass_overhead: 4.0e-6, // fork/join cost
            edge_test_rate: base.edge_test_rate * 5.2,
        }
    }

    /// `n`-thread CPU running the tiled software pipeline — the profile
    /// behind `Device::cpu_parallel(n)`. Compute rates scale with ~72%
    /// parallel efficiency per added thread (fork/join + binning
    /// overhead) and saturate at the 5.2× the calibrated 6-core
    /// [`cpu_parallel`](Self::cpu_parallel) profile tops out at, so
    /// thread counts beyond the modeled part's cores cannot out-model
    /// the hardware; memory-bound full-screen rates saturate at 4×
    /// likewise.
    pub fn cpu_parallel_n(threads: usize) -> Self {
        let threads = threads.max(1);
        let base = Self::cpu_scalar();
        let compute = (1.0 + 0.72 * (threads as f64 - 1.0)).min(5.2);
        let memory = (1.0 + 0.5 * (threads as f64 - 1.0)).min(4.0);
        let name = if threads == 1 {
            Cow::Borrowed("CPU 1 thread tiled (modeled)")
        } else {
            Cow::Owned(format!("CPU {threads} threads tiled (modeled)"))
        };
        DeviceProfile {
            name,
            vertex_rate: base.vertex_rate * compute,
            fragment_rate: base.fragment_rate * compute,
            fullscreen_rate: base.fullscreen_rate * memory,
            scatter_rate: base.scatter_rate * memory,
            transfer_bandwidth: base.transfer_bandwidth,
            pass_overhead: if threads == 1 {
                base.pass_overhead
            } else {
                4.0e-6
            },
            edge_test_rate: base.edge_test_rate * compute,
        }
    }

    /// Modeled execution time, in seconds, for the counted work.
    pub fn estimate(&self, stats: &PipelineStats) -> f64 {
        stats.passes as f64 * self.pass_overhead
            + stats.vertices as f64 / self.vertex_rate
            + stats.fragments as f64 / self.fragment_rate
            + stats.fullscreen_texels as f64 / self.fullscreen_rate
            + (stats.scatter_reads + stats.scatter_writes) as f64 / self.scatter_rate
            + (stats.bytes_uploaded + stats.bytes_downloaded) as f64 / self.transfer_bandwidth
            + stats.compute_edge_tests as f64 / self.edge_test_rate
    }

    /// Transfer-only component of the estimate (the paper highlights that
    /// CPU↔GPU transfer is a significant, approach-independent fraction).
    pub fn transfer_time(&self, stats: &PipelineStats) -> f64 {
        (stats.bytes_uploaded + stats.bytes_downloaded) as f64 / self.transfer_bandwidth
    }

    /// Compute-only component (estimate minus transfer).
    pub fn compute_time(&self, stats: &PipelineStats) -> f64 {
        self.estimate(stats) - self.transfer_time(stats)
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper-scale workload: hundreds of millions of point fragments
    /// (Figure 9 runs up to 571 M points in the query MBR).
    fn work() -> PipelineStats {
        PipelineStats {
            passes: 4,
            vertices: 500_000_000,
            fragments: 500_000_000,
            fullscreen_texels: 2_000_000,
            scatter_reads: 0,
            scatter_writes: 0,
            bytes_uploaded: 500_000_000 * 8,
            compute_edge_tests: 0,
            ..Default::default()
        }
    }

    #[test]
    fn gpu_faster_than_cpu_on_fragment_work() {
        let w = work();
        let nv_dev = DeviceProfile::nvidia_gtx_1070_max_q();
        let nv = nv_dev.estimate(&w);
        let intel = DeviceProfile::intel_uhd_630().estimate(&w);
        let cpu_dev = DeviceProfile::cpu_scalar();
        let cpu = cpu_dev.estimate(&w);
        assert!(nv < intel, "discrete beats integrated");
        assert!(intel < cpu, "integrated beats scalar CPU");
        // Pure compute ratio (identical fragment workload) is ~2 orders
        // of magnitude; the paper's end-to-end >100x additionally comes
        // from the CPU baseline doing K edge tests per point where the
        // canvas does one fragment — that is asserted in the experiment
        // harness, not here.
        let ratio = cpu_dev.compute_time(&w) / nv_dev.compute_time(&w);
        assert!(ratio > 80.0, "compute ratio was {ratio}");
        // Even with transfer included the discrete GPU wins big.
        assert!(cpu / nv > 20.0, "total speedup was {}", cpu / nv);
    }

    #[test]
    fn parallel_cpu_between_scalar_and_gpu() {
        let w = work();
        let par = DeviceProfile::cpu_parallel().estimate(&w);
        let scalar = DeviceProfile::cpu_scalar().estimate(&w);
        let nv = DeviceProfile::nvidia_gtx_1070_max_q().estimate(&w);
        assert!(par < scalar);
        assert!(nv < par);
        let speedup = scalar / par;
        assert!(
            (3.0..=6.0).contains(&speedup),
            "parallel speedup {speedup} outside OpenMP-plausible band"
        );
    }

    #[test]
    fn parallel_n_scales_monotonically_and_saturates() {
        let w = work();
        let t1 = DeviceProfile::cpu_parallel_n(1).estimate(&w);
        let t2 = DeviceProfile::cpu_parallel_n(2).estimate(&w);
        let t8 = DeviceProfile::cpu_parallel_n(8).estimate(&w);
        assert!(t2 < t1 && t8 < t2, "more threads must model faster");
        // ≥ 3x at 8 threads on fragment-dominated work (the tiled
        // pipeline's acceptance bar), but never beyond the calibrated
        // 6-core ceiling: 16 or 64 threads cannot out-model the
        // OpenMP-calibrated cpu_parallel() profile.
        assert!(t1 / t8 >= 3.0, "8-thread modeled speedup {}", t1 / t8);
        let t12 = DeviceProfile::cpu_parallel_n(12).estimate(&w);
        let t64 = DeviceProfile::cpu_parallel_n(64).estimate(&w);
        assert_eq!(t12, t64, "compute scaling must saturate");
        let calibrated = DeviceProfile::cpu_parallel().estimate(&w);
        assert!(
            (t12 - calibrated).abs() / calibrated < 0.25,
            "saturated tiled profile {t12} strays from calibrated {calibrated}"
        );
    }

    #[test]
    fn transfer_dominates_when_compute_tiny() {
        // 571M-point upload with negligible compute: transfer must be a
        // significant fraction (paper Section 6 observation).
        let stats = PipelineStats {
            passes: 2,
            bytes_uploaded: 571_000_000 * 8,
            fragments: 1_000_000,
            ..Default::default()
        };
        let nv = DeviceProfile::nvidia_gtx_1070_max_q();
        let total = nv.estimate(&stats);
        let transfer = nv.transfer_time(&stats);
        assert!(transfer / total > 0.5);
        assert!((nv.compute_time(&stats) + transfer - total).abs() < 1e-12);
    }

    #[test]
    fn edge_tests_charged_to_compute_kernel() {
        let stats = PipelineStats {
            compute_edge_tests: 1_000_000_000,
            ..Default::default()
        };
        let nv = DeviceProfile::nvidia_gtx_1070_max_q().estimate(&stats);
        let cpu = DeviceProfile::cpu_scalar().estimate(&stats);
        assert!(cpu / nv > 50.0);
    }

    #[test]
    fn zero_work_costs_zero() {
        let z = PipelineStats::default();
        assert_eq!(DeviceProfile::nvidia_gtx_1070_max_q().estimate(&z), 0.0);
    }
}
