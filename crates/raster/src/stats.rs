//! Pipeline work counters.
//!
//! Every pipeline operation increments these counters. They serve two
//! purposes: (1) white-box assertions in tests ("this plan shaded exactly
//! N fragments"), and (2) input to the [`device`](crate::device) cost
//! model that converts counted work into simulated GPU time — our
//! substitute for wall-clock measurements on the paper's physical GPUs.

/// Cumulative work performed by a [`Pipeline`](crate::pipeline::Pipeline).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Draw calls + full-screen passes + scatter passes issued.
    pub passes: u64,
    /// Vertices pushed through the vertex stage.
    pub vertices: u64,
    /// Primitives (points / segments / triangles / rings) rasterized.
    pub primitives: u64,
    /// Fragments produced by rasterization and shaded.
    pub fragments: u64,
    /// Fragments flagged as boundary (conservative coverage).
    pub boundary_fragments: u64,
    /// Framebuffer blend operations (fragment merged into a texel).
    pub blend_ops: u64,
    /// Texels touched by full-screen passes (map / mask / texture blend).
    pub fullscreen_texels: u64,
    /// Scatter-pass reads (source texels inspected).
    pub scatter_reads: u64,
    /// Scatter-pass writes (values landed in the target).
    pub scatter_writes: u64,
    /// Host→device bytes "uploaded" (geometry + attribute buffers).
    pub bytes_uploaded: u64,
    /// Device→host bytes "read back" (result extraction).
    pub bytes_downloaded: u64,
    /// Edge tests executed by compute-style kernels (the traditional
    /// GPU PIP baseline runs here, not in the raster stages).
    pub compute_edge_tests: u64,
}

impl PipelineStats {
    /// Difference `self - earlier`, for measuring a single operation.
    pub fn delta(&self, earlier: &PipelineStats) -> PipelineStats {
        PipelineStats {
            passes: self.passes - earlier.passes,
            vertices: self.vertices - earlier.vertices,
            primitives: self.primitives - earlier.primitives,
            fragments: self.fragments - earlier.fragments,
            boundary_fragments: self.boundary_fragments - earlier.boundary_fragments,
            blend_ops: self.blend_ops - earlier.blend_ops,
            fullscreen_texels: self.fullscreen_texels - earlier.fullscreen_texels,
            scatter_reads: self.scatter_reads - earlier.scatter_reads,
            scatter_writes: self.scatter_writes - earlier.scatter_writes,
            bytes_uploaded: self.bytes_uploaded - earlier.bytes_uploaded,
            bytes_downloaded: self.bytes_downloaded - earlier.bytes_downloaded,
            compute_edge_tests: self.compute_edge_tests - earlier.compute_edge_tests,
        }
    }

    /// Sum of two stat snapshots.
    pub fn merged(&self, other: &PipelineStats) -> PipelineStats {
        PipelineStats {
            passes: self.passes + other.passes,
            vertices: self.vertices + other.vertices,
            primitives: self.primitives + other.primitives,
            fragments: self.fragments + other.fragments,
            boundary_fragments: self.boundary_fragments + other.boundary_fragments,
            blend_ops: self.blend_ops + other.blend_ops,
            fullscreen_texels: self.fullscreen_texels + other.fullscreen_texels,
            scatter_reads: self.scatter_reads + other.scatter_reads,
            scatter_writes: self.scatter_writes + other.scatter_writes,
            bytes_uploaded: self.bytes_uploaded + other.bytes_uploaded,
            bytes_downloaded: self.bytes_downloaded + other.bytes_downloaded,
            compute_edge_tests: self.compute_edge_tests + other.compute_edge_tests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_merge() {
        let a = PipelineStats {
            passes: 3,
            fragments: 100,
            ..Default::default()
        };
        let b = PipelineStats {
            passes: 5,
            fragments: 150,
            blend_ops: 7,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.passes, 2);
        assert_eq!(d.fragments, 50);
        assert_eq!(d.blend_ops, 7);
        let m = a.merged(&d);
        assert_eq!(m, b);
    }
}
