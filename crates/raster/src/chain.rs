//! Fused streaming operator chains (`draw → [op]*` plans).
//!
//! The algebra composes canvas operators — Value Transform, Blend,
//! Mask — into query plans, but executing them one whole-canvas pass at
//! a time materializes a full intermediate framebuffer between every
//! operator. An [`OpChain`] instead describes the post-draw operators
//! of a linear plan as **tile-granular kernels**: the tiled draw
//! produces one finished tile at a time, and the executor's multi-stage
//! streaming hand-off (`WorkerPool::run_streaming_chain`) flows each
//! tile through every downstream operator while later tiles are still
//! rendering. Intermediate canvases are never materialized — at most
//! `Policy::stream_window(workers)` tile buffers are live at any
//! instant, and the blit into the output framebuffer happens exactly
//! once per tile, after the last operator.
//!
//! Every operator kernel is a pure per-texel function, so the fused
//! run is **bit-identical** to the materialized sequence of full-screen
//! passes (and to the sequential `Device::cpu` run) at any thread
//! count; `tests/chain_equivalence.rs` asserts this on random chains.

use crate::simd::{self, Backend, BlendTag, MaskTag, TexelWords, ValueTag};
use crate::texture::Texture;
use crate::tile::TileRect;

/// Boxed per-texel rewrite of a [`ChainOp::Map`] stage.
pub type MapFn<'a, P> = Box<dyn Fn(u32, u32, P) -> P + Sync + 'a>;
/// Boxed binary blend function of a [`ChainOp::Blend`] stage.
pub type BlendOpFn<'a, P> = Box<dyn Fn(P, P) -> P + Sync + 'a>;
/// Boxed keep-predicate of a [`ChainOp::Mask`] stage.
pub type MaskPred<'a, P> = Box<dyn Fn(u32, u32, &P) -> bool + Sync + 'a>;
/// Boxed nullity test (see [`OpChain::with_null_test`]).
type NullTest<'a, P> = Box<dyn Fn(&P) -> bool + Sync + 'a>;
/// Monomorphized row-kernel dispatcher of a [`ChainOp::MaskTagged`]
/// stage: texel row, optional cover row, null bitmap.
type MaskKernel<P> = fn(Backend, MaskTag, &mut [P], Option<&mut [u16]>, &mut [u64]);

/// One post-draw operator of a fused chain.
pub enum ChainOp<'a, P> {
    /// Per-texel rewrite — the Value Transform `V[f]`. Equivalent to a
    /// materialized `Pipeline::par_map_texels` pass.
    Map(MapFn<'a, P>),
    /// Pixel-wise blend with an already-materialized input texture —
    /// the Blend `B[⊙]` against an operand canvas. Equivalent to a
    /// materialized `Pipeline::blend_into` pass; when `src_cover` is
    /// given, the cover planes additionally merge with saturating
    /// addition (the canvas Blend contract), matching a second
    /// `blend_into` pass over the cover planes.
    Blend {
        src: &'a Texture<P>,
        src_cover: Option<&'a Texture<u16>>,
        f: BlendOpFn<'a, P>,
    },
    /// Per-texel keep-predicate — the coarse Mask `M[M]`. Texels
    /// failing the predicate are nulled to `P::default()` and their
    /// cover zeroed. Equivalent to a materialized
    /// `Pipeline::map_planes_inplace` pass.
    Mask(MaskPred<'a, P>),
    /// [`ChainOp::Map`] for a built-in value transform, carried as an
    /// op *tag* so the tile kernel takes the SIMD row-slice path. The
    /// `kernel` fn pointer is the monomorphized dispatcher captured by
    /// [`OpChain::map_tagged`] (where `P: TexelWords` is known).
    MapTagged {
        tag: ValueTag,
        kernel: fn(Backend, ValueTag, &mut [P]),
    },
    /// [`ChainOp::Blend`] for a built-in blend function, carried as a
    /// tag; the texel rows take the SIMD select kernel and the cover
    /// rows the SIMD saturating add.
    BlendTagged {
        src: &'a Texture<P>,
        src_cover: Option<&'a Texture<u16>>,
        tag: BlendTag,
        kernel: fn(Backend, BlendTag, &mut [P], &[P]),
    },
    /// [`ChainOp::Mask`] for a built-in predicate, carried as a tag.
    /// Implements the lowered canvas semantics directly (null texels
    /// pass; failures nulled, cover zeroed, word-0 nullity recorded),
    /// so it assumes the chain's null test is plain texel nullity.
    MaskTagged { tag: MaskTag, kernel: MaskKernel<P> },
}

impl<P> ChainOp<'_, P> {
    /// Short label for plan printing / debugging.
    pub fn label(&self) -> &'static str {
        match self {
            ChainOp::Map(_) | ChainOp::MapTagged { .. } => "V[f]",
            ChainOp::Blend { .. } | ChainOp::BlendTagged { .. } => "B[⊙]",
            ChainOp::Mask(_) | ChainOp::MaskTagged { .. } => "M[M]",
        }
    }
}

/// A linear fused plan `draw → op₁ → … → opₖ` (see module docs).
/// Built with the chaining constructors, executed by
/// `Pipeline::run_chain_points` / `Pipeline::run_chain_polygons`.
pub struct OpChain<'a, P> {
    ops: Vec<ChainOp<'a, P>>,
    /// Nullity test used to record, per Mask op, which pixels hold a
    /// null texel **after** that op (the exact set a materialized Mask
    /// pass would prune boundary entries for). Without it, only texels
    /// the Mask itself nulled are recorded.
    null_test: Option<NullTest<'a, P>>,
    /// SIMD backend override for the tagged kernels; `None` uses the
    /// process-wide [`simd::active_backend`]. Tests pin this to compare
    /// forced-scalar against auto dispatch in one process.
    backend: Option<Backend>,
}

impl<P> Default for OpChain<'_, P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, P> OpChain<'a, P> {
    /// The empty chain: a plain tiled draw.
    pub fn new() -> Self {
        OpChain {
            ops: Vec::new(),
            null_test: None,
            backend: None,
        }
    }

    /// Appends a Value Transform stage.
    pub fn map(mut self, f: impl Fn(u32, u32, P) -> P + Sync + 'a) -> Self {
        self.ops.push(ChainOp::Map(Box::new(f)));
        self
    }

    /// Appends a Blend stage against a materialized input texture.
    pub fn blend(mut self, src: &'a Texture<P>, f: impl Fn(P, P) -> P + Sync + 'a) -> Self {
        self.ops.push(ChainOp::Blend {
            src,
            src_cover: None,
            f: Box::new(f),
        });
        self
    }

    /// Appends a Blend stage that also merges the operand's cover plane
    /// (saturating add — the canvas Blend contract).
    pub fn blend_with_cover(
        mut self,
        src: &'a Texture<P>,
        src_cover: &'a Texture<u16>,
        f: impl Fn(P, P) -> P + Sync + 'a,
    ) -> Self {
        self.ops.push(ChainOp::Blend {
            src,
            src_cover: Some(src_cover),
            f: Box::new(f),
        });
        self
    }

    /// Appends a coarse Mask stage.
    pub fn mask(mut self, pred: impl Fn(u32, u32, &P) -> bool + Sync + 'a) -> Self {
        self.ops.push(ChainOp::Mask(Box::new(pred)));
        self
    }

    /// Sets the nullity test recorded after each Mask op (see
    /// [`MaskOutcome`]).
    pub fn with_null_test(mut self, f: impl Fn(&P) -> bool + Sync + 'a) -> Self {
        self.null_test = Some(Box::new(f));
        self
    }

    /// Pins the SIMD backend used by the tagged stages (default: the
    /// process-wide [`simd::active_backend`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// The backend the tagged stages (and the span-fill fast path in
    /// the pipeline) will run on.
    pub(crate) fn resolved_backend(&self) -> Backend {
        self.backend.unwrap_or_else(simd::active_backend)
    }

    /// Appends a Value Transform stage for a built-in transform,
    /// lowered to the SIMD row kernel.
    pub fn map_tagged(mut self, tag: ValueTag) -> Self
    where
        P: TexelWords,
    {
        self.ops.push(ChainOp::MapTagged {
            tag,
            kernel: simd::value_rows_with::<P>,
        });
        self
    }

    /// Appends a Blend stage for a built-in blend function, lowered to
    /// the SIMD row kernel; `src_cover`, when given, merges cover
    /// planes with the SIMD saturating add.
    pub fn blend_tagged(
        mut self,
        src: &'a Texture<P>,
        src_cover: Option<&'a Texture<u16>>,
        tag: BlendTag,
    ) -> Self
    where
        P: TexelWords,
    {
        self.ops.push(ChainOp::BlendTagged {
            src,
            src_cover,
            tag,
            kernel: simd::blend_rows_with::<P>,
        });
        self
    }

    /// Appends a coarse Mask stage for a built-in predicate, lowered to
    /// the SIMD row kernel. Assumes the chain's nullity notion is
    /// word-0 presence (the canvas `is_null`), which lowered chains
    /// always use.
    pub fn mask_tagged(mut self, tag: MaskTag) -> Self
    where
        P: TexelWords,
    {
        self.ops.push(ChainOp::MaskTagged {
            tag,
            kernel: simd::mask_rows_with::<P>,
        });
        self
    }

    pub fn ops(&self) -> &[ChainOp<'a, P>] {
        &self.ops
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of Mask ops (one [`MaskOutcome`] bitmap each).
    pub fn mask_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, ChainOp::Mask(_) | ChainOp::MaskTagged { .. }))
            .count()
    }

    /// True when any Blend op merges a cover plane (such chains require
    /// the run to carry a cover plane).
    pub fn blends_cover(&self) -> bool {
        self.ops.iter().any(|op| {
            matches!(
                op,
                ChainOp::Blend {
                    src_cover: Some(_),
                    ..
                } | ChainOp::BlendTagged {
                    src_cover: Some(_),
                    ..
                }
            )
        })
    }

    /// Ordinal of op `op_idx` among the Mask ops (its bitmap index).
    fn mask_ordinal(&self, op_idx: usize) -> usize {
        self.ops[..op_idx]
            .iter()
            .filter(|op| matches!(op, ChainOp::Mask(_) | ChainOp::MaskTagged { .. }))
            .count()
    }
}

impl<'a, P: Copy + Default> OpChain<'a, P> {
    /// Applies op `op_idx` to one tile in place: `tex`/`cov` are the
    /// tile's row-major local buffers for `rect`. Mask ops record their
    /// post-op null pixels into `bits[mask_ordinal]` (local bitset).
    ///
    /// This is the tile-granular kernel shared by the fused streaming
    /// run and the sequential in-place run — one implementation, so the
    /// two can never diverge.
    pub(crate) fn apply_tile(
        &self,
        op_idx: usize,
        rect: TileRect,
        tex: &mut [P],
        mut cov: Option<&mut [u16]>,
        bits: &mut [TileBits],
    ) {
        // Row-wise iteration: pixel coordinates advance by increments
        // instead of a div/mod pair per texel (these loops are the hot
        // kernels of every streamed tile). Tagged built-in ops take the
        // SIMD row-slice kernels; closure ops remain the fallback for
        // arbitrary user functions.
        let w = rect.w as usize;
        let be = self.resolved_backend();
        match &self.ops[op_idx] {
            ChainOp::Map(f) => {
                for (r, row) in tex.chunks_mut(w).enumerate() {
                    let y = rect.y0 + r as u32;
                    for (c, t) in row.iter_mut().enumerate() {
                        *t = f(rect.x0 + c as u32, y, *t);
                    }
                }
            }
            ChainOp::Blend { src, src_cover, f } => {
                for (r, row) in tex.chunks_mut(w).enumerate() {
                    let y = rect.y0 + r as u32;
                    let base = src.index(rect.x0, y);
                    let srow = &src.texels()[base..base + w];
                    for (t, s) in row.iter_mut().zip(srow) {
                        *t = f(*t, *s);
                    }
                }
                if let (Some(sc), Some(cov)) = (src_cover, cov.as_deref_mut()) {
                    for (r, row) in cov.chunks_mut(w).enumerate() {
                        let y = rect.y0 + r as u32;
                        let base = sc.index(rect.x0, y);
                        let srow = &sc.texels()[base..base + w];
                        for (c, s) in row.iter_mut().zip(srow) {
                            *c = c.saturating_add(*s);
                        }
                    }
                }
            }
            ChainOp::MapTagged { tag, kernel } => {
                // Built-in value transforms are position-independent,
                // so the whole contiguous tile buffer is one row.
                kernel(be, *tag, tex);
            }
            ChainOp::BlendTagged {
                src,
                src_cover,
                tag,
                kernel,
            } => {
                for (r, row) in tex.chunks_mut(w).enumerate() {
                    let y = rect.y0 + r as u32;
                    let base = src.index(rect.x0, y);
                    kernel(be, *tag, row, &src.texels()[base..base + w]);
                }
                if let (Some(sc), Some(cov)) = (src_cover, cov.as_deref_mut()) {
                    for (r, row) in cov.chunks_mut(w).enumerate() {
                        let y = rect.y0 + r as u32;
                        let base = sc.index(rect.x0, y);
                        simd::cover_add_rows_with(be, row, &sc.texels()[base..base + w]);
                    }
                }
            }
            ChainOp::MaskTagged { tag, kernel } => {
                let ordinal = self.mask_ordinal(op_idx);
                kernel(be, *tag, tex, cov.as_deref_mut(), &mut bits[ordinal].words);
            }
            ChainOp::Mask(pred) => {
                let ordinal = self.mask_ordinal(op_idx);
                let tile_bits = &mut bits[ordinal];
                let mut li = 0usize;
                for (r, row) in tex.chunks_mut(w).enumerate() {
                    let y = rect.y0 + r as u32;
                    for (c, t) in row.iter_mut().enumerate() {
                        let keep = pred(rect.x0 + c as u32, y, t);
                        if !keep {
                            *t = P::default();
                            if let Some(cov) = cov.as_deref_mut() {
                                cov[li] = 0;
                            }
                        }
                        let null_after = match &self.null_test {
                            Some(is_null) => is_null(t),
                            None => !keep,
                        };
                        if null_after {
                            tile_bits.set(li);
                        }
                        li += 1;
                    }
                }
            }
        }
    }
}

/// A per-tile bitset (one bit per texel of the tile, row-major local
/// order) carrying a Mask op's post-op null pixels to the merge.
#[derive(Clone, Debug)]
pub(crate) struct TileBits {
    words: Vec<u64>,
}

impl TileBits {
    pub(crate) fn new(len: usize) -> Self {
        TileBits {
            words: vec![0; len.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }
}

/// Per-Mask-op nulled-pixel bitmaps over the whole framebuffer
/// (row-major, one bit per pixel): bit set ⇔ the texel at that pixel is
/// null immediately **after** the Mask op ran. This is exactly the
/// pixel set whose boundary entries a materialized Mask pass would
/// prune, so canvas callers replay their boundary bookkeeping against
/// the fused run without ever materializing the intermediate planes.
#[derive(Clone, Debug, Default)]
pub struct MaskOutcome {
    width: u32,
    stages: Vec<TileBits>,
}

impl MaskOutcome {
    pub(crate) fn new(width: u32, pixels: usize, masks: usize) -> Self {
        MaskOutcome {
            width,
            stages: (0..masks).map(|_| TileBits::new(pixels)).collect(),
        }
    }

    /// Number of Mask ops the run contained.
    pub fn num_masks(&self) -> usize {
        self.stages.len()
    }

    /// True when the texel at row-major `pixel` was null right after
    /// the `mask`-th Mask op (0-based, in chain order).
    pub fn is_null_after(&self, mask: usize, pixel: u32) -> bool {
        self.stages[mask].get(pixel as usize)
    }

    /// Imports one tile's local bitset for Mask op `mask`. Runs on the
    /// serial merge thread, so it skips zero words and visits only set
    /// bits instead of walking every texel.
    pub(crate) fn import_tile(&mut self, mask: usize, rect: TileRect, tile: &TileBits) {
        let w = rect.w as usize;
        for (wi, &word) in tile.words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = wi * 64;
            let mut bits = word;
            while bits != 0 {
                let li = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let x = rect.x0 + (li % w) as u32;
                let y = rect.y0 + (li / w) as u32;
                self.stages[mask].set((y * self.width + x) as usize);
            }
        }
    }
}

/// Outcome of a fused chain run.
#[derive(Debug, Default)]
pub struct ChainRunReport {
    /// Tiles that flowed through the chain (all tiles when the chain
    /// has operators; only primitive-carrying tiles for a bare draw).
    pub tiles: usize,
    /// High-water mark of live tile buffers (claimed-but-unblitted).
    /// The fused-memory contract: never exceeds
    /// `Policy::stream_window(workers)`; 0 for sequential in-place
    /// runs, which hold no tile buffers at all.
    pub peak_tiles_in_flight: usize,
    /// Per-Mask-op nulled-pixel bitmaps (see [`MaskOutcome`]).
    pub masked: MaskOutcome,
}

/// Sequential in-place chain application over the whole framebuffer —
/// the 1-thread execution of a fused chain. Runs the *same* per-texel
/// kernels as the streamed tile run ([`OpChain::apply_tile`] over one
/// framebuffer-sized rect), so results are bit-identical by
/// construction, with zero tile buffers live.
pub(crate) fn apply_chain_inplace<P: Copy + Default>(
    chain: &OpChain<'_, P>,
    fb: &mut Texture<P>,
    cover: Option<&mut Texture<u16>>,
    masked: &mut MaskOutcome,
) {
    if chain.is_empty() || fb.is_empty() {
        return;
    }
    let rect = TileRect {
        x0: 0,
        y0: 0,
        w: fb.width(),
        h: fb.height(),
    };
    let mut bits: Vec<TileBits> = (0..chain.mask_count())
        .map(|_| TileBits::new(rect.len()))
        .collect();
    let mut cov = cover.map(|c| c.texels_mut());
    for op in 0..chain.len() {
        chain.apply_tile(op, rect, fb.texels_mut(), cov.as_deref_mut(), &mut bits);
    }
    for (m, tb) in bits.iter().enumerate() {
        masked.import_tile(m, rect, tb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_bits_set_get() {
        let mut b = TileBits::new(130);
        assert!(!b.get(0) && !b.get(129));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
    }

    #[test]
    fn chain_builder_counts_ops() {
        let src: Texture<u32> = Texture::new(4, 4);
        let chain = OpChain::new()
            .map(|_, _, t| t + 1)
            .blend(&src, |d, s| d + s)
            .mask(|_, _, &t| t > 0)
            .map(|_, _, t| t * 2)
            .mask(|_, _, &t| t < 100);
        assert_eq!(chain.len(), 5);
        assert_eq!(chain.mask_count(), 2);
        assert!(!chain.blends_cover());
        assert_eq!(chain.mask_ordinal(2), 0);
        assert_eq!(chain.mask_ordinal(4), 1);
        assert_eq!(chain.ops()[0].label(), "V[f]");
        assert_eq!(chain.ops()[1].label(), "B[⊙]");
        assert_eq!(chain.ops()[2].label(), "M[M]");
    }

    #[test]
    fn apply_tile_matches_fullscreen_semantics() {
        // One 4x4 tile at offset (4, 2) of an 8x8 "framebuffer".
        let rect = TileRect {
            x0: 4,
            y0: 2,
            w: 4,
            h: 4,
        };
        let mut src: Texture<u32> = Texture::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                src.set(x, y, 100 + 10 * y + x);
            }
        }
        let chain = OpChain::new()
            .map(|x, y, t: u32| t + x + y)
            .blend(&src, |d, s| d + s)
            .mask(|_, _, &t| t.is_multiple_of(2));
        let mut tex = vec![1u32; 16];
        let mut cov = vec![3u16; 16];
        let mut bits = vec![TileBits::new(16)];
        for op in 0..chain.len() {
            chain.apply_tile(op, rect, &mut tex, Some(&mut cov), &mut bits);
        }
        for li in 0..16 {
            let x = 4 + (li % 4) as u32;
            let y = 2 + (li / 4) as u32;
            let expect = 1 + x + y + src.get(x, y);
            if expect.is_multiple_of(2) {
                assert_eq!(tex[li], expect);
                assert_eq!(cov[li], 3);
                assert!(!bits[0].get(li));
            } else {
                assert_eq!(tex[li], 0, "masked texel nulled at ({x},{y})");
                assert_eq!(cov[li], 0, "masked cover zeroed at ({x},{y})");
                assert!(bits[0].get(li));
            }
        }
    }

    #[test]
    fn mask_outcome_imports_tile_bits() {
        let rect = TileRect {
            x0: 2,
            y0: 1,
            w: 3,
            h: 2,
        };
        let mut tile = TileBits::new(rect.len());
        tile.set(0); // local (0,0) => global (2,1) => pixel 1*8+2 = 10
        tile.set(4); // local (1,1) => global (3,2) => pixel 2*8+3 = 19
        let mut out = MaskOutcome::new(8, 64, 1);
        out.import_tile(0, rect, &tile);
        assert!(out.is_null_after(0, 10));
        assert!(out.is_null_after(0, 19));
        assert!(!out.is_null_after(0, 11));
        assert_eq!(out.num_masks(), 1);
    }
}
