//! Coverage kernels: which pixels does a primitive touch?
//!
//! Three rasterizers mirror the fixed-function stages the paper's
//! prototype relies on:
//!
//! * **points** — a point lands in exactly one pixel,
//! * **lines** — *supercover* traversal emits every pixel the segment
//!   touches; this is the "conservative rasterization" OpenGL extension
//!   the paper uses to tag boundary pixels without loss of accuracy,
//! * **triangles** — center-sample coverage with the top-left fill rule
//!   (standard mode, a pixel is drawn when its center is covered) and a
//!   conservative mode (every pixel whose square overlaps the triangle),
//! * **polygon scanline fill** — even–odd fill across all rings at pixel
//!   centers, the software analogue of stencil-based polygon filling and
//!   of the paper's "draw outer ring, negate hole pixels" strategy.
//!
//! All kernels emit `(x, y)` pixel coordinates through a callback so the
//! pipeline can fuse shading/blending without intermediate buffers.

use crate::viewport::Viewport;
use canvas_geom::polygon::Polygon;
use canvas_geom::{Point, Ring};

/// Rasterizes a point; emits at most one pixel.
#[inline]
pub fn rasterize_point(vp: &Viewport, p: Point, mut emit: impl FnMut(u32, u32)) {
    if let Some((x, y)) = vp.world_to_pixel(p) {
        emit(x, y);
    }
}

/// Supercover line rasterization: emits every pixel whose square the
/// world-space segment `a..b` passes through (conservative, no gaps,
/// no diagonal skips).
pub fn rasterize_line_supercover(
    vp: &Viewport,
    a: Point,
    b: Point,
    mut emit: impl FnMut(u32, u32),
) {
    // Work in continuous pixel space.
    let pa = vp.world_to_pixel_f(a);
    let pb = vp.world_to_pixel_f(b);
    let w = vp.width() as f64;
    let h = vp.height() as f64;

    // Liang–Barsky clip of the parametric segment to the pixel rect.
    let (mut t0, mut t1) = (0.0f64, 1.0f64);
    let d = pb - pa;
    let clips = [
        (-d.x, pa.x),    // x >= 0
        (d.x, w - pa.x), // x <= w
        (-d.y, pa.y),    // y >= 0
        (d.y, h - pa.y), // y <= h
    ];
    for (den, num) in clips {
        if den == 0.0 {
            if num < 0.0 {
                return; // parallel and outside
            }
        } else {
            let t = num / den;
            if den < 0.0 {
                t0 = t0.max(t);
            } else {
                t1 = t1.min(t);
            }
            if t0 > t1 {
                return;
            }
        }
    }
    let p0 = pa.lerp(pb, t0);
    let p1 = pa.lerp(pb, t1);

    // Amanatides–Woo grid traversal from the cell of p0 to the cell of p1.
    let clamp_cell = |v: f64, hi: u32| -> i64 { (v.floor() as i64).clamp(0, hi as i64 - 1) };
    let mut cx = clamp_cell(p0.x, vp.width());
    let mut cy = clamp_cell(p0.y, vp.height());
    let ex = clamp_cell(p1.x, vp.width());
    let ey = clamp_cell(p1.y, vp.height());

    let dir = p1 - p0;
    let step_x: i64 = if dir.x > 0.0 { 1 } else { -1 };
    let step_y: i64 = if dir.y > 0.0 { 1 } else { -1 };

    // Parametric distance to the next vertical / horizontal cell border.
    let mut t_max_x = if dir.x != 0.0 {
        let next = if step_x > 0 {
            cx as f64 + 1.0
        } else {
            cx as f64
        };
        (next - p0.x) / dir.x
    } else {
        f64::INFINITY
    };
    let mut t_max_y = if dir.y != 0.0 {
        let next = if step_y > 0 {
            cy as f64 + 1.0
        } else {
            cy as f64
        };
        (next - p0.y) / dir.y
    } else {
        f64::INFINITY
    };
    let t_delta_x = if dir.x != 0.0 {
        (1.0 / dir.x).abs()
    } else {
        f64::INFINITY
    };
    let t_delta_y = if dir.y != 0.0 {
        (1.0 / dir.y).abs()
    } else {
        f64::INFINITY
    };

    let max_steps = (vp.width() as i64 + vp.height() as i64) * 2 + 4;
    let mut steps = 0i64;
    loop {
        emit(cx as u32, cy as u32);
        if cx == ex && cy == ey {
            break;
        }
        if t_max_x < t_max_y {
            t_max_x += t_delta_x;
            cx += step_x;
        } else {
            t_max_y += t_delta_y;
            cy += step_y;
        }
        if cx < 0 || cy < 0 || cx >= vp.width() as i64 || cy >= vp.height() as i64 {
            break;
        }
        steps += 1;
        if steps > max_steps {
            debug_assert!(false, "supercover traversal did not terminate");
            break;
        }
    }
}

/// Triangle rasterization mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RasterMode {
    /// A pixel is covered when its center lies inside (top-left rule on
    /// ties) — OpenGL's default rasterization.
    Standard,
    /// A pixel is covered when its square overlaps the triangle at all —
    /// the conservative-rasterization extension the paper enables.
    Conservative,
}

/// Rasterizes a filled triangle given in world coordinates.
pub fn rasterize_triangle(
    vp: &Viewport,
    tri: [Point; 3],
    mode: RasterMode,
    mut emit: impl FnMut(u32, u32),
) {
    // Normalize to CCW in pixel space.
    let mut v = [
        vp.world_to_pixel_f(tri[0]),
        vp.world_to_pixel_f(tri[1]),
        vp.world_to_pixel_f(tri[2]),
    ];
    let area2 = (v[1] - v[0]).cross(v[2] - v[0]);
    if area2 == 0.0 {
        return;
    }
    if area2 < 0.0 {
        v.swap(1, 2);
    }

    let minx = v.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let maxx = v.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
    let miny = v.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let maxy = v.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);

    let x0 = (minx.floor() as i64).max(0);
    let y0 = (miny.floor() as i64).max(0);
    let x1 = (maxx.ceil() as i64).min(vp.width() as i64) - 1;
    let y1 = (maxy.ceil() as i64).min(vp.height() as i64) - 1;
    if x1 < x0 || y1 < y0 {
        return;
    }

    match mode {
        RasterMode::Standard => {
            let edges = [(v[0], v[1]), (v[1], v[2]), (v[2], v[0])];
            for py in y0..=y1 {
                for px in x0..=x1 {
                    let c = Point::new(px as f64 + 0.5, py as f64 + 0.5);
                    let mut inside = true;
                    for (a, b) in edges {
                        let e = (b - a).cross(c - a);
                        if e < 0.0 {
                            inside = false;
                            break;
                        }
                        if e == 0.0 && !is_top_left(a, b) {
                            inside = false;
                            break;
                        }
                    }
                    if inside {
                        emit(px as u32, py as u32);
                    }
                }
            }
        }
        RasterMode::Conservative => {
            for py in y0..=y1 {
                for px in x0..=x1 {
                    if triangle_overlaps_pixel(&v, px as f64, py as f64) {
                        emit(px as u32, py as u32);
                    }
                }
            }
        }
    }
}

/// Top-left fill rule: a pixel center exactly on an edge belongs to the
/// triangle only when the edge is a top or left edge (CCW convention).
#[inline]
fn is_top_left(a: Point, b: Point) -> bool {
    let d = b - a;
    // Left edge: goes down in a y-up CCW triangle... we use y-down pixel
    // space semantics-free: an edge is "top" when horizontal with d.x < 0,
    // "left" when d.y > 0 (consistent tie-break; exactness is restored by
    // the boundary refinement layer anyway).
    (d.y == 0.0 && d.x < 0.0) || d.y > 0.0
}

/// SAT overlap test between a CCW triangle and the unit pixel square at
/// `(px, py)` in pixel space.
fn triangle_overlaps_pixel(v: &[Point; 3], px: f64, py: f64) -> bool {
    let bx0 = px;
    let by0 = py;
    let bx1 = px + 1.0;
    let by1 = py + 1.0;

    // Axis X / Y.
    let tminx = v.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
    let tmaxx = v.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
    if tmaxx < bx0 || tminx > bx1 {
        return false;
    }
    let tminy = v.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let tmaxy = v.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
    if tmaxy < by0 || tminy > by1 {
        return false;
    }

    // Triangle edge normals.
    let corners = [
        Point::new(bx0, by0),
        Point::new(bx1, by0),
        Point::new(bx1, by1),
        Point::new(bx0, by1),
    ];
    for i in 0..3 {
        let a = v[i];
        let b = v[(i + 1) % 3];
        let n = (b - a).perp();
        let tri_proj: Vec<f64> = v.iter().map(|p| n.dot(*p)).collect();
        let box_proj: Vec<f64> = corners.iter().map(|p| n.dot(*p)).collect();
        let tmin = tri_proj.iter().copied().fold(f64::INFINITY, f64::min);
        let tmax = tri_proj.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let bmin = box_proj.iter().copied().fold(f64::INFINITY, f64::min);
        let bmax = box_proj.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if tmax < bmin || tmin > bmax {
            return false;
        }
    }
    true
}

/// Scanline even–odd fill of a polygon (outer ring + holes) at pixel
/// centers. Emits each covered pixel exactly once.
pub fn rasterize_polygon_fill(vp: &Viewport, poly: &Polygon, emit: impl FnMut(u32, u32)) {
    rasterize_polygon_fill_rect(vp, poly, 0, 0, vp.width() - 1, vp.height() - 1, emit);
}

/// [`rasterize_polygon_fill`] restricted to the inclusive pixel rect
/// `(rx0, ry0)..=(rx1, ry1)` — the tile-local fill of the tiled
/// pipeline. Emits exactly the pixels the unrestricted fill would emit
/// inside the rect: scanlines outside are skipped and spans are clamped
/// to the rect's columns in integer pixel space, so tiling introduces no
/// floating-point divergence at tile borders.
pub fn rasterize_polygon_fill_rect(
    vp: &Viewport,
    poly: &Polygon,
    rx0: u32,
    ry0: u32,
    rx1: u32,
    ry1: u32,
    mut emit: impl FnMut(u32, u32),
) {
    rasterize_polygon_fill_rect_spans(vp, poly, rx0, ry0, rx1, ry1, |py, first, last| {
        for px in first..=last {
            emit(px, py);
        }
    });
}

/// Span form of [`rasterize_polygon_fill_rect`]: emits each covered
/// scanline run as `(py, first_px, last_px)` (inclusive, already
/// clamped to the rect) instead of per-pixel callbacks. The tiled fill
/// path consumes spans so the stamp/cover updates can run as SIMD row
/// kernels; the per-pixel form above is a thin wrapper, so both emit
/// exactly the same pixel set in the same order.
pub fn rasterize_polygon_fill_rect_spans(
    vp: &Viewport,
    poly: &Polygon,
    rx0: u32,
    ry0: u32,
    rx1: u32,
    ry1: u32,
    mut emit_span: impl FnMut(u32, u32, u32),
) {
    let Some((_, by0, _, by1)) = vp.pixel_range(&poly.bbox()) else {
        return;
    };
    let y0 = by0.max(ry0);
    let y1 = by1.min(ry1);
    if y0 > y1 {
        return;
    }
    let rings: Vec<&Ring> = std::iter::once(poly.outer())
        .chain(poly.holes().iter())
        .collect();
    let mut crossings: Vec<f64> = Vec::with_capacity(16);
    for py in y0..=y1 {
        let yc = vp.pixel_center(0, py).y;
        crossings.clear();
        for ring in &rings {
            let verts = ring.vertices();
            let n = verts.len();
            let mut j = n - 1;
            for i in 0..n {
                let a = verts[j];
                let b = verts[i];
                // Half-open rule avoids double counting shared vertices.
                if (b.y > yc) != (a.y > yc) {
                    let t = (yc - b.y) / (a.y - b.y);
                    crossings.push(b.x + t * (a.x - b.x));
                }
                j = i;
            }
        }
        crossings.sort_by(|p, q| p.partial_cmp(q).unwrap_or(std::cmp::Ordering::Equal));
        let pw = vp.pixel_width();
        let wx0 = vp.world().min.x;
        for pair in crossings.chunks_exact(2) {
            let (xa, xb) = (pair[0], pair[1]);
            // Pixels whose center x lies in (xa, xb), clamped to the rect.
            let first = (((xa - wx0) / pw - 0.5).floor() as i64 + 1).max(rx0 as i64);
            let last = (((xb - wx0) / pw - 0.5).ceil() as i64 - 1)
                .min(vp.width() as i64 - 1)
                .min(rx1 as i64);
            if first <= last {
                emit_span(py, first as u32, last as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::BBox;
    use std::collections::BTreeSet;

    fn vp10() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    fn collect_line(vp: &Viewport, a: Point, b: Point) -> BTreeSet<(u32, u32)> {
        let mut out = BTreeSet::new();
        rasterize_line_supercover(vp, a, b, |x, y| {
            out.insert((x, y));
        });
        out
    }

    fn collect_tri(vp: &Viewport, tri: [Point; 3], mode: RasterMode) -> BTreeSet<(u32, u32)> {
        let mut out = BTreeSet::new();
        rasterize_triangle(vp, tri, mode, |x, y| {
            out.insert((x, y));
        });
        out
    }

    #[test]
    fn point_rasterization() {
        let vp = vp10();
        let mut hits = Vec::new();
        rasterize_point(&vp, Point::new(3.5, 7.5), |x, y| hits.push((x, y)));
        assert_eq!(hits, vec![(3, 7)]);
        hits.clear();
        rasterize_point(&vp, Point::new(-1.0, 0.0), |x, y| hits.push((x, y)));
        assert!(hits.is_empty());
    }

    #[test]
    fn horizontal_line() {
        let vp = vp10();
        let px = collect_line(&vp, Point::new(0.5, 2.5), Point::new(8.5, 2.5));
        assert_eq!(px.len(), 9);
        assert!(px.iter().all(|&(_, y)| y == 2));
    }

    #[test]
    fn vertical_line() {
        let vp = vp10();
        let px = collect_line(&vp, Point::new(4.5, 1.5), Point::new(4.5, 9.5));
        assert_eq!(px.len(), 9);
        assert!(px.iter().all(|&(x, _)| x == 4));
    }

    #[test]
    fn diagonal_supercover_has_no_gaps() {
        let vp = vp10();
        let px = collect_line(&vp, Point::new(0.2, 0.7), Point::new(9.8, 9.1));
        // 4-connectivity: consecutive cells along the traversal differ in
        // exactly one coordinate by one — supercover guarantees this.
        let cells: Vec<(u32, u32)> = {
            let mut v = Vec::new();
            rasterize_line_supercover(&vp, Point::new(0.2, 0.7), Point::new(9.8, 9.1), |x, y| {
                v.push((x, y))
            });
            v
        };
        for w in cells.windows(2) {
            let dx = w[0].0.abs_diff(w[1].0);
            let dy = w[0].1.abs_diff(w[1].1);
            assert_eq!(dx + dy, 1, "gap between {:?} and {:?}", w[0], w[1]);
        }
        assert!(px.contains(&(0, 0)));
        assert!(px.contains(&(9, 9)));
    }

    #[test]
    fn line_fully_outside() {
        let vp = vp10();
        let px = collect_line(&vp, Point::new(20.0, 20.0), Point::new(30.0, 25.0));
        assert!(px.is_empty());
    }

    #[test]
    fn line_clipped_at_viewport() {
        let vp = vp10();
        let px = collect_line(&vp, Point::new(-5.0, 5.5), Point::new(5.5, 5.5));
        assert!(px.contains(&(0, 5)));
        assert!(px.contains(&(5, 5)));
        assert!(px.iter().all(|&(x, _)| x <= 5));
    }

    #[test]
    fn line_touching_every_crossed_cell() {
        let vp = vp10();
        // A shallow diagonal crosses both cells in each column it spans.
        let cells = collect_line(&vp, Point::new(0.1, 0.9), Point::new(3.9, 1.1));
        assert!(cells.contains(&(0, 0)));
        assert!(cells.contains(&(3, 1)));
        // The segment's world trace passes through each claimed cell.
        for &(x, y) in &cells {
            assert!(x < 4 && y < 2, "unexpected cell ({x},{y})");
        }
    }

    #[test]
    fn triangle_standard_matches_center_test() {
        let vp = vp10();
        let tri = [
            Point::new(1.0, 1.0),
            Point::new(8.0, 2.0),
            Point::new(4.0, 9.0),
        ];
        let got = collect_tri(&vp, tri, RasterMode::Standard);
        for y in 0..10 {
            for x in 0..10 {
                let c = vp.pixel_center(x, y);
                let d1 = (tri[1] - tri[0]).cross(c - tri[0]);
                let d2 = (tri[2] - tri[1]).cross(c - tri[1]);
                let d3 = (tri[0] - tri[2]).cross(c - tri[2]);
                let strictly_in = d1 > 0.0 && d2 > 0.0 && d3 > 0.0;
                let strictly_out = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
                if strictly_in {
                    assert!(got.contains(&(x, y)), "missing interior pixel ({x},{y})");
                }
                if strictly_out {
                    assert!(!got.contains(&(x, y)), "extra exterior pixel ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn triangle_conservative_superset_of_standard() {
        let vp = vp10();
        let tri = [
            Point::new(1.2, 1.7),
            Point::new(8.9, 2.3),
            Point::new(4.4, 8.6),
        ];
        let std = collect_tri(&vp, tri, RasterMode::Standard);
        let cons = collect_tri(&vp, tri, RasterMode::Conservative);
        assert!(std.is_subset(&cons));
        assert!(cons.len() > std.len());
    }

    #[test]
    fn sliver_triangle_conservative_nonempty() {
        let vp = vp10();
        // Thin sliver that misses every pixel center.
        let tri = [
            Point::new(1.1, 1.26),
            Point::new(8.9, 1.26),
            Point::new(8.9, 1.30),
        ];
        let std = collect_tri(&vp, tri, RasterMode::Standard);
        let cons = collect_tri(&vp, tri, RasterMode::Conservative);
        assert!(std.is_empty());
        assert!(!cons.is_empty());
    }

    #[test]
    fn degenerate_triangle_emits_nothing() {
        let vp = vp10();
        let tri = [
            Point::new(1.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(9.0, 9.0),
        ];
        assert!(collect_tri(&vp, tri, RasterMode::Standard).is_empty());
    }

    #[test]
    fn adjacent_triangles_partition_shared_edge() {
        // Two triangles sharing a diagonal: every pixel of the covering
        // quad is emitted exactly once under the top-left rule.
        let vp = vp10();
        let a = Point::new(1.0, 1.0);
        let b = Point::new(9.0, 1.0);
        let c = Point::new(9.0, 9.0);
        let d = Point::new(1.0, 9.0);
        let mut count = std::collections::HashMap::new();
        for tri in [[a, b, c], [a, c, d]] {
            rasterize_triangle(&vp, tri, RasterMode::Standard, |x, y| {
                *count.entry((x, y)).or_insert(0u32) += 1;
            });
        }
        for (px, n) in &count {
            assert_eq!(*n, 1, "pixel {px:?} drawn {n} times across shared edge");
        }
    }

    #[test]
    fn polygon_fill_square() {
        let vp = vp10();
        let sq = Polygon::simple(vec![
            Point::new(2.0, 2.0),
            Point::new(7.0, 2.0),
            Point::new(7.0, 7.0),
            Point::new(2.0, 7.0),
        ])
        .unwrap();
        let mut got = BTreeSet::new();
        rasterize_polygon_fill(&vp, &sq, |x, y| {
            got.insert((x, y));
        });
        // Centers strictly inside: x,y in {2..6} → 25 pixels.
        assert_eq!(got.len(), 25);
        assert!(got.contains(&(2, 2)));
        assert!(got.contains(&(6, 6)));
        assert!(!got.contains(&(7, 7)));
    }

    #[test]
    fn polygon_fill_matches_exact_pip_at_centers() {
        let vp = vp10();
        let poly = Polygon::simple(vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 2.0),
            Point::new(7.5, 8.5),
            Point::new(3.0, 6.0),
        ])
        .unwrap();
        let mut got = BTreeSet::new();
        rasterize_polygon_fill(&vp, &poly, |x, y| {
            got.insert((x, y));
        });
        for y in 0..10 {
            for x in 0..10 {
                let inside = matches!(
                    poly.contains(vp.pixel_center(x, y)),
                    canvas_geom::Containment::Inside
                );
                assert_eq!(
                    got.contains(&(x, y)),
                    inside,
                    "fill disagrees with PIP at ({x},{y})"
                );
            }
        }
    }

    #[test]
    fn polygon_fill_with_hole() {
        let vp = vp10();
        let outer = Ring::new(vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(1.0, 9.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ])
        .unwrap();
        let donut = Polygon::new(outer, vec![hole]);
        let mut got = BTreeSet::new();
        rasterize_polygon_fill(&vp, &donut, |x, y| {
            got.insert((x, y));
        });
        assert!(got.contains(&(2, 2)));
        assert!(!got.contains(&(4, 4))); // hole pixel (center 4.5,4.5)
        assert!(!got.contains(&(5, 5)));
        assert!(got.contains(&(7, 5)));
    }

    #[test]
    fn rect_fill_equals_full_fill_intersection() {
        let vp = vp10();
        let poly = Polygon::simple(vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 2.0),
            Point::new(7.5, 8.5),
            Point::new(3.0, 6.0),
        ])
        .unwrap();
        let mut full = BTreeSet::new();
        rasterize_polygon_fill(&vp, &poly, |x, y| {
            full.insert((x, y));
        });
        // Quarter tiles: the union of rect-restricted fills must equal
        // the full fill, with no pixel emitted by two rects.
        let mut union = BTreeSet::new();
        for (rx0, ry0, rx1, ry1) in [(0, 0, 4, 4), (5, 0, 9, 4), (0, 5, 4, 9), (5, 5, 9, 9)] {
            rasterize_polygon_fill_rect(&vp, &poly, rx0, ry0, rx1, ry1, |x, y| {
                assert!(x >= rx0 && x <= rx1 && y >= ry0 && y <= ry1);
                assert!(union.insert((x, y)), "pixel ({x},{y}) emitted twice");
            });
        }
        assert_eq!(full, union);
    }

    #[test]
    fn polygon_outside_viewport() {
        let vp = vp10();
        let far = Polygon::simple(vec![
            Point::new(20.0, 20.0),
            Point::new(30.0, 20.0),
            Point::new(25.0, 30.0),
        ])
        .unwrap();
        let mut hits = 0;
        rasterize_polygon_fill(&vp, &far, |_, _| hits += 1);
        assert_eq!(hits, 0);
    }
}
