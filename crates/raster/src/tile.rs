//! Fixed-size framebuffer tiling for data-parallel rasterization.
//!
//! The GPU-authentic execution model of the paper's pipeline: the screen
//! is cut into fixed-size tiles, primitives are *binned* to the tiles
//! their bounding boxes overlap, and every tile is rasterized and shaded
//! independently — the software analogue of a tile-based GPU raster
//! backend, and the unit of CPU parallelism for
//! `Device::cpu_parallel(n)`. Tiles are processed in row-major tile
//! order when merging, so results are identical at any thread count.

/// Tile edge length in pixels. 64×64 texels keeps a tile's planes
/// (texel + cover + stamps) comfortably inside L1/L2 while leaving
/// enough tiles for parallelism at benchmark resolutions.
pub const TILE_SIZE: u32 = 64;

/// A rectangular pixel region `[x0, x0+w) × [y0, y0+h)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileRect {
    pub x0: u32,
    pub y0: u32,
    pub w: u32,
    pub h: u32,
}

impl TileRect {
    #[inline]
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x0 && x < self.x0 + self.w && y >= self.y0 && y < self.y0 + self.h
    }

    /// Row-major index within the tile's local buffer.
    #[inline]
    pub fn local_index(&self, x: u32, y: u32) -> usize {
        debug_assert!(self.contains(x, y));
        ((y - self.y0) as usize) * (self.w as usize) + (x - self.x0) as usize
    }

    /// True when the inclusive pixel range `(x0, y0)..=(x1, y1)` overlaps
    /// this tile — the per-primitive reject that keeps tile passes from
    /// walking geometry that cannot touch them.
    #[inline]
    pub fn intersects_range(&self, x0: u32, y0: u32, x1: u32, y1: u32) -> bool {
        x1 >= self.x0 && x0 < self.x0 + self.w && y1 >= self.y0 && y0 < self.y0 + self.h
    }

    /// Texels in the tile.
    #[inline]
    pub fn len(&self) -> usize {
        (self.w as usize) * (self.h as usize)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }
}

/// The tile decomposition of a framebuffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGrid {
    width: u32,
    height: u32,
    tile: u32,
    tiles_x: u32,
    tiles_y: u32,
}

impl TileGrid {
    pub fn new(width: u32, height: u32) -> Self {
        Self::with_tile_size(width, height, TILE_SIZE)
    }

    pub fn with_tile_size(width: u32, height: u32, tile: u32) -> Self {
        assert!(tile > 0, "tile size must be positive");
        TileGrid {
            width,
            height,
            tile,
            tiles_x: width.div_ceil(tile),
            tiles_y: height.div_ceil(tile),
        }
    }

    #[inline]
    pub fn num_tiles(&self) -> usize {
        (self.tiles_x as usize) * (self.tiles_y as usize)
    }

    #[inline]
    pub fn tiles_x(&self) -> u32 {
        self.tiles_x
    }

    #[inline]
    pub fn tiles_y(&self) -> u32 {
        self.tiles_y
    }

    /// Pixel rect of tile `idx` (edge tiles are clipped to the
    /// framebuffer).
    pub fn rect(&self, idx: usize) -> TileRect {
        debug_assert!(idx < self.num_tiles());
        let tx = (idx as u32) % self.tiles_x;
        let ty = (idx as u32) / self.tiles_x;
        let x0 = tx * self.tile;
        let y0 = ty * self.tile;
        TileRect {
            x0,
            y0,
            w: self.tile.min(self.width - x0),
            h: self.tile.min(self.height - y0),
        }
    }

    /// Tile index containing pixel `(x, y)`.
    #[inline]
    pub fn tile_of(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        ((y / self.tile) as usize) * (self.tiles_x as usize) + (x / self.tile) as usize
    }

    /// Tile indexes overlapping the inclusive pixel range
    /// `(x0, y0)..=(x1, y1)`, in row-major tile order.
    pub fn tiles_overlapping(
        &self,
        x0: u32,
        y0: u32,
        x1: u32,
        y1: u32,
    ) -> impl Iterator<Item = usize> + '_ {
        let tx0 = x0 / self.tile;
        let ty0 = y0 / self.tile;
        let tx1 = (x1 / self.tile).min(self.tiles_x.saturating_sub(1));
        let ty1 = (y1 / self.tile).min(self.tiles_y.saturating_sub(1));
        (ty0..=ty1).flat_map(move |ty| {
            (tx0..=tx1).map(move |tx| (ty as usize) * (self.tiles_x as usize) + tx as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rects_tile_the_framebuffer_exactly() {
        let g = TileGrid::with_tile_size(100, 70, 32);
        assert_eq!(g.tiles_x(), 4);
        assert_eq!(g.tiles_y(), 3);
        let mut covered = vec![0u32; 100 * 70];
        for t in 0..g.num_tiles() {
            let r = g.rect(t);
            assert!(!r.is_empty());
            for y in r.y0..r.y0 + r.h {
                for x in r.x0..r.x0 + r.w {
                    covered[(y * 100 + x) as usize] += 1;
                    assert_eq!(g.tile_of(x, y), t);
                    assert!(r.contains(x, y));
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "tiles must partition");
    }

    #[test]
    fn edge_tiles_clip() {
        let g = TileGrid::with_tile_size(100, 70, 64);
        let last = g.rect(g.num_tiles() - 1);
        assert_eq!(
            last,
            TileRect {
                x0: 64,
                y0: 64,
                w: 36,
                h: 6
            }
        );
        assert_eq!(last.len(), 36 * 6);
    }

    #[test]
    fn range_overlap() {
        let r = TileRect {
            x0: 64,
            y0: 64,
            w: 64,
            h: 64,
        };
        assert!(r.intersects_range(0, 0, 64, 64)); // touches corner
        assert!(r.intersects_range(100, 100, 200, 200));
        assert!(!r.intersects_range(0, 0, 63, 200)); // left of tile
        assert!(!r.intersects_range(128, 0, 200, 200)); // right of tile
        assert!(!r.intersects_range(0, 0, 200, 63)); // above tile
    }

    #[test]
    fn local_index_row_major() {
        let r = TileRect {
            x0: 10,
            y0: 20,
            w: 4,
            h: 4,
        };
        assert_eq!(r.local_index(10, 20), 0);
        assert_eq!(r.local_index(13, 20), 3);
        assert_eq!(r.local_index(10, 21), 4);
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn overlap_query_row_major_order() {
        let g = TileGrid::with_tile_size(256, 256, 64);
        let tiles: Vec<usize> = g.tiles_overlapping(60, 60, 130, 70).collect();
        // x spans tiles 0..=2, y spans tiles 0..=1.
        assert_eq!(tiles, vec![0, 1, 2, 4, 5, 6]);
        // Degenerate single-pixel query.
        let one: Vec<usize> = g.tiles_overlapping(65, 65, 65, 65).collect();
        assert_eq!(one, vec![5]);
    }

    #[test]
    fn small_framebuffer_single_tile() {
        let g = TileGrid::new(10, 10);
        assert_eq!(g.num_tiles(), 1);
        assert_eq!(
            g.rect(0),
            TileRect {
                x0: 0,
                y0: 0,
                w: 10,
                h: 10
            }
        );
    }
}
