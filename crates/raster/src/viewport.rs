//! World ↔ pixel coordinate mapping.
//!
//! A [`Viewport`] plays the role of the projection + viewport transform of
//! the graphics pipeline: it embeds a rectangular world-coordinate window
//! onto a `width × height` pixel grid. Pixel `(i, j)` covers the world
//! square `[min + i·s, min + (i+1)·s) × [min + j·s, min + (j+1)·s)` and is
//! *sampled* at its center, matching OpenGL rasterization conventions.

use canvas_geom::{BBox, Point};

/// A mapping from a world-space window onto a pixel grid.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Viewport {
    world: BBox,
    width: u32,
    height: u32,
}

impl Viewport {
    /// Creates a viewport; panics on an empty world box or zero pixel
    /// dimensions (programmer error, not data error).
    pub fn new(world: BBox, width: u32, height: u32) -> Self {
        assert!(!world.is_empty(), "viewport world box must be non-empty");
        assert!(width > 0 && height > 0, "viewport must have pixels");
        Viewport {
            world,
            width,
            height,
        }
    }

    /// Square-pixel viewport: fits `world` inside a grid whose larger side
    /// is `max_dim`, preserving aspect ratio (at least 1 pixel per side).
    pub fn square_pixels(world: BBox, max_dim: u32) -> Self {
        let (w, h) = (world.width(), world.height());
        let (pw, ph) = if w >= h {
            let pw = max_dim.max(1);
            let ph = ((max_dim as f64) * h / w).ceil().max(1.0) as u32;
            (pw, ph)
        } else {
            let ph = max_dim.max(1);
            let pw = ((max_dim as f64) * w / h).ceil().max(1.0) as u32;
            (pw, ph)
        };
        Viewport::new(world, pw, ph)
    }

    pub fn world(&self) -> &BBox {
        &self.world
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn num_pixels(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// World width of one pixel.
    #[inline]
    pub fn pixel_width(&self) -> f64 {
        self.world.width() / self.width as f64
    }

    /// World height of one pixel.
    #[inline]
    pub fn pixel_height(&self) -> f64 {
        self.world.height() / self.height as f64
    }

    /// Continuous world → pixel-space transform (pixel units, unclamped).
    #[inline]
    pub fn world_to_pixel_f(&self, p: Point) -> Point {
        Point::new(
            (p.x - self.world.min.x) / self.pixel_width(),
            (p.y - self.world.min.y) / self.pixel_height(),
        )
    }

    /// World point → containing pixel, or `None` outside the grid.
    /// The world max edge maps into the last row/column (closed box).
    #[inline]
    pub fn world_to_pixel(&self, p: Point) -> Option<(u32, u32)> {
        if !self.world.contains(p) {
            return None;
        }
        let f = self.world_to_pixel_f(p);
        let x = (f.x as u32).min(self.width - 1);
        let y = (f.y as u32).min(self.height - 1);
        Some((x, y))
    }

    /// Center of pixel `(x, y)` in world coordinates.
    #[inline]
    pub fn pixel_center(&self, x: u32, y: u32) -> Point {
        Point::new(
            self.world.min.x + (x as f64 + 0.5) * self.pixel_width(),
            self.world.min.y + (y as f64 + 0.5) * self.pixel_height(),
        )
    }

    /// World-space box covered by pixel `(x, y)`.
    pub fn pixel_box(&self, x: u32, y: u32) -> BBox {
        let min = Point::new(
            self.world.min.x + x as f64 * self.pixel_width(),
            self.world.min.y + y as f64 * self.pixel_height(),
        );
        BBox::new(
            min,
            Point::new(min.x + self.pixel_width(), min.y + self.pixel_height()),
        )
    }

    /// Pixel-index range `(x0, y0, x1, y1)` (inclusive) covering a world
    /// box, or `None` when disjoint from the viewport.
    pub fn pixel_range(&self, b: &BBox) -> Option<(u32, u32, u32, u32)> {
        let clipped = b.intersection(&self.world);
        if clipped.is_empty() {
            return None;
        }
        let (x0, y0) = self.world_to_pixel(clipped.min)?;
        let (x1, y1) = self.world_to_pixel(clipped.max)?;
        Some((x0, y0, x1, y1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            10,
            10,
        )
    }

    #[test]
    fn world_to_pixel_basic() {
        let v = vp();
        assert_eq!(v.world_to_pixel(Point::new(0.5, 0.5)), Some((0, 0)));
        assert_eq!(v.world_to_pixel(Point::new(9.5, 9.5)), Some((9, 9)));
        assert_eq!(v.world_to_pixel(Point::new(5.0, 5.0)), Some((5, 5)));
        assert_eq!(v.world_to_pixel(Point::new(-0.1, 5.0)), None);
    }

    #[test]
    fn max_edge_maps_inside() {
        let v = vp();
        assert_eq!(v.world_to_pixel(Point::new(10.0, 10.0)), Some((9, 9)));
    }

    #[test]
    fn pixel_center_roundtrip() {
        let v = vp();
        for y in 0..10 {
            for x in 0..10 {
                let c = v.pixel_center(x, y);
                assert_eq!(v.world_to_pixel(c), Some((x, y)));
            }
        }
    }

    #[test]
    fn pixel_box_tiles_world() {
        let v = vp();
        let b = v.pixel_box(3, 7);
        assert_eq!(b.min, Point::new(3.0, 7.0));
        assert_eq!(b.max, Point::new(4.0, 8.0));
    }

    #[test]
    fn pixel_range_clipping() {
        let v = vp();
        let r = v.pixel_range(&BBox::new(Point::new(2.5, 3.5), Point::new(4.5, 6.5)));
        assert_eq!(r, Some((2, 3, 4, 6)));
        assert_eq!(
            v.pixel_range(&BBox::new(Point::new(20.0, 20.0), Point::new(30.0, 30.0))),
            None
        );
        // Partially outside clips to the grid.
        let r = v.pixel_range(&BBox::new(Point::new(-5.0, -5.0), Point::new(1.5, 1.5)));
        assert_eq!(r, Some((0, 0, 1, 1)));
    }

    #[test]
    fn square_pixels_aspect() {
        let wide = BBox::new(Point::new(0.0, 0.0), Point::new(20.0, 10.0));
        let v = Viewport::square_pixels(wide, 100);
        assert_eq!(v.width(), 100);
        assert_eq!(v.height(), 50);
        let tall = BBox::new(Point::new(0.0, 0.0), Point::new(5.0, 10.0));
        let v = Viewport::square_pixels(tall, 100);
        assert_eq!(v.height(), 100);
        assert_eq!(v.width(), 50);
    }

    #[test]
    fn nonuniform_grid() {
        let v = Viewport::new(
            BBox::new(Point::new(-5.0, 0.0), Point::new(5.0, 4.0)),
            20,
            8,
        );
        assert_eq!(v.pixel_width(), 0.5);
        assert_eq!(v.pixel_height(), 0.5);
        assert_eq!(v.world_to_pixel(Point::new(-5.0, 0.0)), Some((0, 0)));
        assert_eq!(v.world_to_pixel(Point::new(4.9, 3.9)), Some((19, 7)));
    }
}
