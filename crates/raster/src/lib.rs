//! # canvas-raster
//!
//! A from-scratch **software graphics pipeline** standing in for the
//! OpenGL pipeline used by the prototype in *"A GPU-friendly Geometric
//! Data Model and Algebra for Spatial Queries"* (Doraiswamy & Freire,
//! SIGMOD 2020).
//!
//! The paper's whole thesis is that spatial operators become fast when
//! they lower onto the handful of operations GPUs are built for:
//! rendering geometry into textures, blending textures, and running
//! per-pixel passes. This crate provides exactly those operations in
//! software, with the same dataflow and the same conservative-
//! rasterization accuracy story, so the algebra layer (`canvas-core`)
//! is written against a faithful pipeline even though this machine has
//! no GPU:
//!
//! * [`texture::Texture`] — off-screen framebuffers of generic texels,
//! * [`viewport::Viewport`] — the projection/viewport transform,
//! * [`rasterize`] — point / supercover-line / triangle / scanline-fill
//!   coverage kernels (standard + conservative modes),
//! * [`pipeline::Pipeline`] — draw calls with programmable fragment
//!   shading and blending, full-screen passes, scatter passes,
//! * [`tile`] + [`par`] — the fixed-size tile decomposition and the
//!   deterministic executor behind the tiled draw paths
//!   (`draw_points_tiled`, `draw_polygons_tiled`, `draw_polylines_tiled`):
//!   primitives are binned to 64×64 tiles and each tile is rasterized
//!   independently on a **persistent worker pool** (the
//!   `canvas-executor` crate — spawned once per `Device`, parked
//!   between passes, joined on drop), with finished tiles streamed
//!   through a bounded channel and blitted in fixed tile order so
//!   results are bit-identical at any thread count and peak memory
//!   stays capped at huge resolutions,
//! * [`stats::PipelineStats`] + [`device::DeviceProfile`] — work
//!   counting and the calibrated cost model that substitutes for the
//!   paper's two physical GPUs (see DESIGN.md §2 for the substitution
//!   rationale).

pub mod chain;
pub mod device;
pub mod par;
pub mod pipeline;
pub mod rasterize;
pub mod simd;
pub mod stats;
pub mod texture;
pub mod tile;
pub mod viewport;

pub use chain::{ChainOp, ChainRunReport, MaskOutcome, OpChain};
pub use device::DeviceProfile;
pub use par::{live_worker_count, Calibration, Policy, SchedulerStats, TicketId, WorkerPool};
pub use pipeline::{Frag, PatchReport, Pipeline};
pub use rasterize::RasterMode;
pub use simd::{Backend, BlendTag, MaskTag, TexelWords, ValueTag};
pub use stats::PipelineStats;
pub use texture::Texture;
pub use tile::{TileGrid, TileRect, TILE_SIZE};
pub use viewport::Viewport;
