//! Runtime-dispatched SIMD row kernels for the tile pipeline.
//!
//! The paper's thesis is that spatial operators become fast when they
//! lower onto dense per-texel raster passes — exactly the shape SIMD
//! units eat. This module supplies **row-slice kernels** for the
//! built-in canvas operators (blend, value transform, mask, cover
//! merge, span fill) with three interchangeable backends:
//!
//! * **Scalar** — the reference implementation: a straight per-texel
//!   transliteration of the operator semantics (`BlendFn::apply` et
//!   al.). Always available, always correct, and the oracle every
//!   vector path is tested against.
//! * **Sse2** — the x86_64 baseline (guaranteed by the architecture),
//!   mask-select blends over 128-bit lanes.
//! * **Avx2** — detected at runtime via `is_x86_feature_detected!`,
//!   256-bit selects plus gathered mask/bitmap construction.
//!
//! The backend is chosen **once** per process ([`active_backend`],
//! overridable with `CANVAS_SIMD=scalar|sse2|avx2` for CI's
//! forced-scalar job) and recorded by the serving engine's metrics.
//! Every kernel also has a `*_with(backend, …)` form taking an explicit
//! backend so tests can compare forced-scalar against the active
//! vector path in-process, without racing on the environment.
//!
//! # Bit-identity contract
//!
//! Pointwise kernels (blend, value, mask) are order-free — each output
//! texel depends only on the corresponding input texel(s) — so the
//! vector paths must be **bit-identical** to the scalar reference, not
//! merely close. This extends the repo's streamed ≡ materialized ≡
//! sequential equivalence oracle with a fourth axis: SIMD ≡ scalar.
//! Two rules keep f32 bits exact:
//!
//! * texels that pass through unchanged are copied **verbatim by mask
//!   select**, never re-derived arithmetically (`x + 0.0` would turn
//!   `-0.0` into `+0.0`);
//! * the few genuine float additions (the accumulate blends' `v1`/`v2`
//!   sums) are executed as scalar `f32` adds with the same operand
//!   order on every backend, so rounding and NaN propagation match.
//!
//! # What vectorizes, and what deliberately does not
//!
//! * **Blend rows** — fully vectorized. Presence bits index a 64-entry
//!   LUT of 40-byte word masks; the output is `(a & mask_a) | (b &
//!   mask_b)` plus a scalar patch for the accumulate sums.
//! * **Cover rows** — `_mm(256)_adds_epu16` saturating adds.
//! * **Mask rows** — AVX2 gathers the strided presence words, computes
//!   keep/null lanes branchlessly, and packs the null bitmap 8 texels
//!   per `movemask`. SSE2 (no gather) uses the scalar body.
//! * **Span fill** — stamp-fill, stale-stamp scan, and cover increment
//!   are vectorized; the texel blend inside a span stays a per-pixel
//!   call because the draw path's blend is caller-supplied.
//! * **Value rows** — kept scalar on every backend: the built-in value
//!   transforms are `ln(1 + v1)`-dominated and bit-exact `ln` has no
//!   vector form, so a vector path would add complexity for noise.
//! * **Scatter/aggregation** (`Pipeline::scatter*`) is untouched: its
//!   accumulation order is part of the bit-identity contract, and
//!   reordering f32 sums into lanes would change results.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;
use std::sync::OnceLock;
use std::time::Instant;

/// `u32` words per texel: `[presence, (id, v1, v2) × 3 dims]`.
pub const TEXEL_WORDS: usize = 10;

/// Layout contract linking a texel type to the word-level kernels.
///
/// # Safety
///
/// Implementors must be `#[repr(C)]`, exactly `4 * TEXEL_WORDS` bytes
/// with alignment 4 and **no padding**, laid out as ten `u32` words:
/// word 0 is the presence bitmask (bit `d` set ⇔ dimension `d` holds
/// information), and words `1 + 3d .. 4 + 3d` are dimension `d`'s
/// `(id, v1, v2)` with `v1`/`v2` stored as `f32` bit patterns. Every
/// bit pattern must be a valid value of the type (no niches).
pub unsafe trait TexelWords: Copy + Default {}

/// Instruction-set backend the row kernels dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Reference per-texel implementation; always available.
    Scalar,
    /// 128-bit `core::arch` path (x86_64 baseline).
    Sse2,
    /// 256-bit `core::arch` path (runtime-detected).
    Avx2,
}

impl Backend {
    /// Nominal vector width in 32-bit lanes (1 for scalar).
    pub fn width(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 => 4,
            Backend::Avx2 => 8,
        }
    }

    /// Stable lowercase name for metrics / bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// True when this backend actually uses vector lanes (width ≥ 4) —
    /// the condition arming the bench speedup gates.
    pub fn is_vector(self) -> bool {
        self.width() >= 4
    }
}

#[cfg(target_arch = "x86_64")]
fn best_available() -> Backend {
    if std::arch::is_x86_feature_detected!("avx2") {
        Backend::Avx2
    } else {
        // SSE2 is part of the x86_64 baseline — always present.
        Backend::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn best_available() -> Backend {
    Backend::Scalar
}

fn detect() -> Backend {
    let best = best_available();
    match std::env::var("CANVAS_SIMD").as_deref() {
        Ok("scalar") | Ok("off") => Backend::Scalar,
        Ok("sse2") => {
            if cfg!(target_arch = "x86_64") {
                Backend::Sse2
            } else {
                Backend::Scalar
            }
        }
        Ok("avx2") => {
            if best == Backend::Avx2 {
                Backend::Avx2
            } else {
                best
            }
        }
        _ => best,
    }
}

/// The process-wide backend, selected once on first use. Honors the
/// `CANVAS_SIMD` environment variable (`scalar` / `sse2` / `avx2`);
/// unavailable requests fall back to the best supported backend.
pub fn active_backend() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(detect)
}

#[inline(always)]
fn assert_layout<P: TexelWords>() {
    const {
        assert!(std::mem::size_of::<P>() == 4 * TEXEL_WORDS);
        assert!(std::mem::align_of::<P>() == 4);
    }
}

/// Word view of one texel (read).
#[inline(always)]
pub fn texel_words<P: TexelWords>(t: &P) -> &[u32; TEXEL_WORDS] {
    assert_layout::<P>();
    // SAFETY: TexelWords guarantees size/align/layout and no niches.
    unsafe { &*(t as *const P as *const [u32; TEXEL_WORDS]) }
}

/// Word view of one texel (write).
#[inline(always)]
pub fn texel_words_mut<P: TexelWords>(t: &mut P) -> &mut [u32; TEXEL_WORDS] {
    assert_layout::<P>();
    // SAFETY: as above; all bit patterns are valid values of P.
    unsafe { &mut *(t as *mut P as *mut [u32; TEXEL_WORDS]) }
}

#[inline(always)]
fn row_words_mut<P: TexelWords>(row: &mut [P]) -> &mut [u32] {
    assert_layout::<P>();
    // SAFETY: contiguous repr(C) texels reinterpret as 10 words each.
    unsafe { std::slice::from_raw_parts_mut(row.as_mut_ptr() as *mut u32, row.len() * TEXEL_WORDS) }
}

#[inline(always)]
fn row_words<P: TexelWords>(row: &[P]) -> &[u32] {
    assert_layout::<P>();
    // SAFETY: as above, shared view.
    unsafe { std::slice::from_raw_parts(row.as_ptr() as *const u32, row.len() * TEXEL_WORDS) }
}

/// Built-in blend operators, mirrored from the algebra layer's
/// `BlendFn` so chains can pass an op *tag* instead of a closure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlendTag {
    /// Per-dimension first-non-∅, left preferring.
    Over,
    /// Keep left 0-row and right 2-row; 1-row ∅.
    PointOverArea,
    /// 2-row `(id₁, count₁+count₂, meta₁)`, ∅ as zero count.
    AreaCount,
    /// 0-row sums `v1`/`v2` with id zeroed; 2-row right-first.
    Accumulate,
    /// 0-row `(id₁, v1₁+v1₂, v2₁+v2₂)`; 2-row left-first.
    PointAccumulate,
}

/// Built-in value transforms (the heatmap queries' `V[f]` stages).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ValueTag {
    /// Dim-0 `v2 ← ln(1 + v1)` (point heat shading).
    HeatLog,
    /// Dim-2 `v1 ← v1 - tag` then `v2 ← ln(1 + v1)` (density untag).
    DensityLog {
        /// The query-region count offset subtracted before the log.
        tag: f32,
    },
}

/// Built-in mask predicates (the heatmap queries' `M[M]` stages). The
/// kernels implement the *lowered* canvas semantics: null texels pass
/// (`keep = is_null ∨ pred`), failing texels are nulled and their
/// cover zeroed, and the post-op null bitmap records `presence == 0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MaskTag {
    /// Keep texels holding both a 0-row and a 2-row.
    PointAndArea,
    /// Keep texels whose 2-row `v1` exceeds `threshold`.
    AreaV1Above {
        /// Exclusive lower bound on the 2-row `v1`.
        threshold: f32,
    },
}

// ---------------------------------------------------------------------
// Blend kernels
// ---------------------------------------------------------------------

#[inline(always)]
fn fadd(x: u32, y: u32) -> u32 {
    (f32::from_bits(x) + f32::from_bits(y)).to_bits()
}

/// Scalar reference blend of one texel pair — a word-level
/// transliteration of `BlendFn::apply`, branch structure and all.
#[inline]
fn blend_texel_scalar(
    tag: BlendTag,
    a: &[u32; TEXEL_WORDS],
    b: &[u32; TEXEL_WORDS],
) -> [u32; TEXEL_WORDS] {
    let (pa, pb) = (a[0], b[0]);
    match tag {
        BlendTag::Over => {
            let mut out = *a;
            let take = !pa & pb & 0b111;
            let mut d = 0;
            while d < 3 {
                if take >> d & 1 != 0 {
                    let w = 1 + 3 * d as usize;
                    out[w] = b[w];
                    out[w + 1] = b[w + 1];
                    out[w + 2] = b[w + 2];
                }
                d += 1;
            }
            out[0] = pa | take;
            out
        }
        BlendTag::PointOverArea => {
            let mut out = [0u32; TEXEL_WORDS];
            if pa & 1 != 0 {
                out[1] = a[1];
                out[2] = a[2];
                out[3] = a[3];
            }
            if pb & 4 != 0 {
                out[7] = b[7];
                out[8] = b[8];
                out[9] = b[9];
            }
            out[0] = (pa & 1) | (pb & 4);
            out
        }
        BlendTag::AreaCount => {
            let mut out = [0u32; TEXEL_WORDS];
            match (pa & 4 != 0, pb & 4 != 0) {
                (true, true) => {
                    out[7] = a[7];
                    out[8] = fadd(a[8], b[8]);
                    out[9] = a[9];
                }
                (true, false) => {
                    out[7] = a[7];
                    out[8] = a[8];
                    out[9] = a[9];
                }
                (false, true) => {
                    out[7] = b[7];
                    out[8] = b[8];
                    out[9] = b[9];
                }
                (false, false) => {}
            }
            out[0] = (pa | pb) & 4;
            out
        }
        BlendTag::Accumulate => {
            let mut out = [0u32; TEXEL_WORDS];
            match (pa & 1 != 0, pb & 1 != 0) {
                (true, true) => {
                    out[2] = fadd(a[2], b[2]);
                    out[3] = fadd(a[3], b[3]);
                }
                (true, false) => {
                    out[2] = a[2];
                    out[3] = a[3];
                }
                (false, true) => {
                    out[2] = b[2];
                    out[3] = b[3];
                }
                (false, false) => {}
            }
            if pb & 4 != 0 {
                out[7] = b[7];
                out[8] = b[8];
                out[9] = b[9];
            } else if pa & 4 != 0 {
                out[7] = a[7];
                out[8] = a[8];
                out[9] = a[9];
            }
            out[0] = (pa | pb) & 0b101;
            out
        }
        BlendTag::PointAccumulate => {
            let mut out = [0u32; TEXEL_WORDS];
            match (pa & 1 != 0, pb & 1 != 0) {
                (true, true) => {
                    out[1] = a[1];
                    out[2] = fadd(a[2], b[2]);
                    out[3] = fadd(a[3], b[3]);
                }
                (true, false) => {
                    out[1] = a[1];
                    out[2] = a[2];
                    out[3] = a[3];
                }
                (false, true) => {
                    out[1] = b[1];
                    out[2] = b[2];
                    out[3] = b[3];
                }
                (false, false) => {}
            }
            if pa & 4 != 0 {
                out[7] = a[7];
                out[8] = a[8];
                out[9] = a[9];
            } else if pb & 4 != 0 {
                out[7] = b[7];
                out[8] = b[8];
                out[9] = b[9];
            }
            out[0] = (pa | pb) & 0b101;
            out
        }
    }
}

fn blend_rows_scalar<P: TexelWords>(tag: BlendTag, dst: &mut [P], src: &[P]) {
    for (d, s) in dst.iter_mut().zip(src) {
        let a = *texel_words(d);
        let b = *texel_words(s);
        *texel_words_mut(d) = blend_texel_scalar(tag, &a, &b);
    }
}

/// One 40-byte word mask, padded to a full cache line so the kernels'
/// 256-bit mask loads never straddle a line boundary (the blend loop is
/// load-port-bound; unpadded 80-byte pairs made most mask loads split).
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Mask10 {
    w: [u32; TEXEL_WORDS],
}

/// A pair of 40-byte word masks: `out = (a & a_mask) | (b & b_mask)`.
#[derive(Clone, Copy)]
struct MaskPair {
    a: Mask10,
    b: Mask10,
}

const ZERO_PAIR: MaskPair = MaskPair {
    a: Mask10 {
        w: [0; TEXEL_WORDS],
    },
    b: Mask10 {
        w: [0; TEXEL_WORDS],
    },
};

const fn add_dim(mut m: [u32; TEXEL_WORDS], d: usize, include_id: bool) -> [u32; TEXEL_WORDS] {
    let base = 1 + 3 * d;
    if include_id {
        m[base] = !0;
    }
    m[base + 1] = !0;
    m[base + 2] = !0;
    m
}

/// 64-entry select LUT for one blend tag, indexed by
/// `(pa & 7) << 3 | (pb & 7)`. The presence word (word 0) is always
/// masked out and patched scalar afterwards; the accumulate sums are
/// patched scalar too (see module docs).
const fn blend_lut(tag: BlendTag) -> [MaskPair; 64] {
    let mut lut = [ZERO_PAIR; 64];
    let mut idx = 0usize;
    while idx < 64 {
        let pa = (idx >> 3) as u32;
        let pb = (idx & 7) as u32;
        let mut m = ZERO_PAIR;
        match tag {
            BlendTag::Over => {
                let take = !pa & pb & 0b111;
                let mut d = 0;
                while d < 3 {
                    if take >> d & 1 != 0 {
                        m.b.w = add_dim(m.b.w, d, true);
                    } else {
                        m.a.w = add_dim(m.a.w, d, true);
                    }
                    d += 1;
                }
            }
            BlendTag::PointOverArea => {
                if pa & 1 != 0 {
                    m.a.w = add_dim(m.a.w, 0, true);
                }
                if pb & 4 != 0 {
                    m.b.w = add_dim(m.b.w, 2, true);
                }
            }
            BlendTag::AreaCount => {
                if pa & 4 != 0 {
                    m.a.w = add_dim(m.a.w, 2, true);
                } else if pb & 4 != 0 {
                    m.b.w = add_dim(m.b.w, 2, true);
                }
            }
            BlendTag::Accumulate => {
                // Dim 0 never takes the id word — the paper's `+` zeroes it.
                if pa & 1 != 0 {
                    m.a.w = add_dim(m.a.w, 0, false);
                } else if pb & 1 != 0 {
                    m.b.w = add_dim(m.b.w, 0, false);
                }
                if pb & 4 != 0 {
                    m.b.w = add_dim(m.b.w, 2, true);
                } else if pa & 4 != 0 {
                    m.a.w = add_dim(m.a.w, 2, true);
                }
            }
            BlendTag::PointAccumulate => {
                if pa & 1 != 0 {
                    m.a.w = add_dim(m.a.w, 0, true);
                } else if pb & 1 != 0 {
                    m.b.w = add_dim(m.b.w, 0, true);
                }
                if pa & 4 != 0 {
                    m.a.w = add_dim(m.a.w, 2, true);
                } else if pb & 4 != 0 {
                    m.b.w = add_dim(m.b.w, 2, true);
                }
            }
        }
        lut[idx] = m;
        idx += 1;
    }
    lut
}

static LUT_OVER: [MaskPair; 64] = blend_lut(BlendTag::Over);
static LUT_POA: [MaskPair; 64] = blend_lut(BlendTag::PointOverArea);
static LUT_AREA_COUNT: [MaskPair; 64] = blend_lut(BlendTag::AreaCount);
static LUT_ACC: [MaskPair; 64] = blend_lut(BlendTag::Accumulate);
static LUT_PACC: [MaskPair; 64] = blend_lut(BlendTag::PointAccumulate);

fn lut_for(tag: BlendTag) -> &'static [MaskPair; 64] {
    match tag {
        BlendTag::Over => &LUT_OVER,
        BlendTag::PointOverArea => &LUT_POA,
        BlendTag::AreaCount => &LUT_AREA_COUNT,
        BlendTag::Accumulate => &LUT_ACC,
        BlendTag::PointAccumulate => &LUT_PACC,
    }
}

#[inline(always)]
fn out_presence(tag: BlendTag, pa: u32, pb: u32) -> u32 {
    match tag {
        // `a.over(b)` starts from `a`, so a's (possibly non-canonical)
        // high presence bits survive; only b's low bits are merged.
        BlendTag::Over => pa | (!pa & pb & 0b111),
        BlendTag::PointOverArea => (pa & 1) | (pb & 4),
        BlendTag::AreaCount => (pa | pb) & 4,
        BlendTag::Accumulate | BlendTag::PointAccumulate => (pa | pb) & 0b101,
    }
}

impl BlendTag {
    /// Const-generic discriminant for the tag-specialized x86 loops
    /// ([`from_idx`](Self::from_idx) is its inverse).
    const fn idx(self) -> u8 {
        match self {
            BlendTag::Over => 0,
            BlendTag::PointOverArea => 1,
            BlendTag::AreaCount => 2,
            BlendTag::Accumulate => 3,
            BlendTag::PointAccumulate => 4,
        }
    }

    const fn from_idx(i: u8) -> Self {
        match i {
            0 => BlendTag::Over,
            1 => BlendTag::PointOverArea,
            2 => BlendTag::AreaCount,
            3 => BlendTag::Accumulate,
            4 => BlendTag::PointAccumulate,
            _ => panic!("invalid BlendTag index"),
        }
    }
}

/// Words of the left/right operand that the scalar sum patch must read
/// *before* the vector select overwrites `dst`. The tag is const in the
/// specialized loops, so the untaken arms (and for the pure-select tags
/// the whole stash) compile out.
#[inline(always)]
unsafe fn stash_sum_inputs(tag: BlendTag, a: *const u32, b: *const u32) -> [u32; 4] {
    match tag {
        BlendTag::AreaCount => [*a.add(8), *b.add(8), 0, 0],
        BlendTag::Accumulate | BlendTag::PointAccumulate => {
            [*a.add(2), *a.add(3), *b.add(2), *b.add(3)]
        }
        _ => [0; 4],
    }
}

/// Scalar patch for the accumulate sums, identical on every backend —
/// fixed-order f32 adds keep NaN/−0.0 payloads bit-identical to the
/// scalar reference. `s` is the pre-store stash from
/// [`stash_sum_inputs`].
#[inline(always)]
unsafe fn apply_sum_patch(tag: BlendTag, pa: u32, pb: u32, s: [u32; 4], out: *mut u32) {
    match tag {
        BlendTag::AreaCount if pa & pb & 4 != 0 => {
            *out.add(8) = fadd(s[0], s[1]);
        }
        BlendTag::Accumulate | BlendTag::PointAccumulate if pa & pb & 1 != 0 => {
            *out.add(2) = fadd(s[0], s[2]);
            *out.add(3) = fadd(s[1], s[3]);
        }
        _ => {}
    }
}

/// # Safety
/// `dst`/`src` must point at `n` texels' worth of words (`n * 10`
/// u32s) in non-overlapping allocations; SSE2 must be available.
/// `TAG` must be a valid [`BlendTag::idx`] value.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn blend_rows_sse2_t<const TAG: u8>(dst: *mut u32, src: *const u32, n: usize) {
    let tag = BlendTag::from_idx(TAG);
    match tag {
        // The two gated pointwise blends get arithmetic select masks
        // derived from the broadcast presence words — the generic LUT
        // loop below is load-port-bound and the mask loads are what it
        // spends its budget on.
        BlendTag::Over => {
            // `a.over(b)` keeps `a` verbatim except the dims `b` fills
            // (`take`); the per-word governing-bit table turns the
            // broadcast take mask into a full select. Word 0's sentinel
            // keeps it on the `a` side; the presence patch overwrites
            // it regardless.
            let bits_lo = _mm_setr_epi32(i32::MIN, 1, 1, 1);
            let bits_mid = _mm_setr_epi32(2, 2, 2, 4);
            for i in 0..n {
                let a = dst.add(i * TEXEL_WORDS);
                let b = src.add(i * TEXEL_WORDS);
                let pa = *a;
                let pb = *b;
                let take = !pa & pb & 0b111;
                let vt = _mm_set1_epi32(take as i32);
                let m_lo = _mm_cmpeq_epi32(_mm_and_si128(vt, bits_lo), bits_lo);
                let m_mid = _mm_cmpeq_epi32(_mm_and_si128(vt, bits_mid), bits_mid);
                let a_lo = _mm_loadu_si128(a as *const __m128i);
                let b_lo = _mm_loadu_si128(b as *const __m128i);
                let a_mid = _mm_loadu_si128(a.add(4) as *const __m128i);
                let b_mid = _mm_loadu_si128(b.add(4) as *const __m128i);
                let lo = _mm_xor_si128(a_lo, _mm_and_si128(_mm_xor_si128(a_lo, b_lo), m_lo));
                let mid = _mm_xor_si128(a_mid, _mm_and_si128(_mm_xor_si128(a_mid, b_mid), m_mid));
                let a_hi = (a.add(8) as *const u64).read_unaligned();
                let b_hi = (b.add(8) as *const u64).read_unaligned();
                let m_hi = (((take >> 2) & 1) as u64).wrapping_neg();
                _mm_storeu_si128(a as *mut __m128i, lo);
                _mm_storeu_si128(a.add(4) as *mut __m128i, mid);
                (a.add(8) as *mut u64).write_unaligned(a_hi ^ ((a_hi ^ b_hi) & m_hi));
                *a = pa | take;
            }
        }
        BlendTag::PointOverArea => {
            // Start-from-∅ semantics: a's 0-row under the point mask,
            // b's 2-row under the area mask, 1-row always ∅.
            let keep_id2 = _mm_setr_epi32(0, 0, 0, -1);
            for i in 0..n {
                let a = dst.add(i * TEXEL_WORDS);
                let b = src.add(i * TEXEL_WORDS);
                let pa = *a;
                let pb = *b;
                let m0 = (pa & 1).wrapping_neg() as i32;
                let m2 = ((pb >> 2) & 1).wrapping_neg() as i32;
                // Words 0..4: a's 0-row (word 0 re-patched below).
                let lo = _mm_and_si128(_mm_loadu_si128(a as *const __m128i), _mm_set1_epi32(m0));
                // Words 4..8: 1-row ∅; id₂ from b under the area mask.
                let mid = _mm_and_si128(
                    _mm_loadu_si128(b.add(4) as *const __m128i),
                    _mm_and_si128(_mm_set1_epi32(m2), keep_id2),
                );
                let b_hi = (b.add(8) as *const u64).read_unaligned();
                _mm_storeu_si128(a as *mut __m128i, lo);
                _mm_storeu_si128(a.add(4) as *mut __m128i, mid);
                (a.add(8) as *mut u64).write_unaligned(b_hi & (m2 as i64 as u64));
                *a = (pa & 1) | (pb & 4);
            }
        }
        _ => {
            let lut = lut_for(tag);
            for i in 0..n {
                let a = dst.add(i * TEXEL_WORDS);
                let b = src.add(i * TEXEL_WORDS);
                let pa = *a;
                let pb = *b;
                let stash = stash_sum_inputs(tag, a, b);
                let m = &lut[(((pa & 7) << 3) | (pb & 7)) as usize];
                // Words 0..4 and 4..8 as two 128-bit selects.
                let lo = _mm_or_si128(
                    _mm_and_si128(
                        _mm_loadu_si128(a as *const __m128i),
                        _mm_loadu_si128(m.a.w.as_ptr() as *const __m128i),
                    ),
                    _mm_and_si128(
                        _mm_loadu_si128(b as *const __m128i),
                        _mm_loadu_si128(m.b.w.as_ptr() as *const __m128i),
                    ),
                );
                let mid = _mm_or_si128(
                    _mm_and_si128(
                        _mm_loadu_si128(a.add(4) as *const __m128i),
                        _mm_loadu_si128(m.a.w.as_ptr().add(4) as *const __m128i),
                    ),
                    _mm_and_si128(
                        _mm_loadu_si128(b.add(4) as *const __m128i),
                        _mm_loadu_si128(m.b.w.as_ptr().add(4) as *const __m128i),
                    ),
                );
                // Words 8..10 as one scalar u64 select.
                let a_hi = (a.add(8) as *const u64).read_unaligned();
                let b_hi = (b.add(8) as *const u64).read_unaligned();
                let ma_hi = (m.a.w.as_ptr().add(8) as *const u64).read_unaligned();
                let mb_hi = (m.b.w.as_ptr().add(8) as *const u64).read_unaligned();
                _mm_storeu_si128(a as *mut __m128i, lo);
                _mm_storeu_si128(a.add(4) as *mut __m128i, mid);
                (a.add(8) as *mut u64).write_unaligned((a_hi & ma_hi) | (b_hi & mb_hi));
                *a = out_presence(tag, pa, pb);
                apply_sum_patch(tag, pa, pb, stash, a);
            }
        }
    }
}

/// Runtime-tag front for the specialized SSE2 loops (see
/// [`blend_rows_sse2_t`] for the safety contract).
///
/// # Safety
/// As [`blend_rows_sse2_t`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn blend_rows_sse2(tag: BlendTag, dst: *mut u32, src: *const u32, n: usize) {
    match tag {
        BlendTag::Over => blend_rows_sse2_t::<{ BlendTag::Over.idx() }>(dst, src, n),
        BlendTag::PointOverArea => {
            blend_rows_sse2_t::<{ BlendTag::PointOverArea.idx() }>(dst, src, n)
        }
        BlendTag::AreaCount => blend_rows_sse2_t::<{ BlendTag::AreaCount.idx() }>(dst, src, n),
        BlendTag::Accumulate => blend_rows_sse2_t::<{ BlendTag::Accumulate.idx() }>(dst, src, n),
        BlendTag::PointAccumulate => {
            blend_rows_sse2_t::<{ BlendTag::PointAccumulate.idx() }>(dst, src, n)
        }
    }
}

/// # Safety
/// As [`blend_rows_sse2_t`], and AVX2 must be available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn blend_rows_avx2_t<const TAG: u8>(dst: *mut u32, src: *const u32, n: usize) {
    let tag = BlendTag::from_idx(TAG);
    match tag {
        // See the SSE2 twin for why the two gated pointwise blends use
        // arithmetic masks instead of the LUT.
        BlendTag::Over => {
            let bits = _mm256_setr_epi32(i32::MIN, 1, 1, 1, 2, 2, 2, 4);
            for i in 0..n {
                let a = dst.add(i * TEXEL_WORDS);
                let b = src.add(i * TEXEL_WORDS);
                let pa = *a;
                let pb = *b;
                let take = !pa & pb & 0b111;
                let vt = _mm256_set1_epi32(take as i32);
                let m = _mm256_cmpeq_epi32(_mm256_and_si256(vt, bits), bits);
                let av = _mm256_loadu_si256(a as *const __m256i);
                let bv = _mm256_loadu_si256(b as *const __m256i);
                let lo = _mm256_xor_si256(av, _mm256_and_si256(_mm256_xor_si256(av, bv), m));
                let a_hi = (a.add(8) as *const u64).read_unaligned();
                let b_hi = (b.add(8) as *const u64).read_unaligned();
                let m_hi = (((take >> 2) & 1) as u64).wrapping_neg();
                _mm256_storeu_si256(a as *mut __m256i, lo);
                (a.add(8) as *mut u64).write_unaligned(a_hi ^ ((a_hi ^ b_hi) & m_hi));
                *a = pa | take;
            }
        }
        BlendTag::PointOverArea => {
            // 128-bit body (VEX-encoded here): see the SSE2 twin.
            let keep_id2 = _mm_setr_epi32(0, 0, 0, -1);
            for i in 0..n {
                let a = dst.add(i * TEXEL_WORDS);
                let b = src.add(i * TEXEL_WORDS);
                let pa = *a;
                let pb = *b;
                let m0 = (pa & 1).wrapping_neg() as i32;
                let m2 = ((pb >> 2) & 1).wrapping_neg() as i32;
                let lo = _mm_and_si128(_mm_loadu_si128(a as *const __m128i), _mm_set1_epi32(m0));
                let mid = _mm_and_si128(
                    _mm_loadu_si128(b.add(4) as *const __m128i),
                    _mm_and_si128(_mm_set1_epi32(m2), keep_id2),
                );
                let b_hi = (b.add(8) as *const u64).read_unaligned();
                _mm_storeu_si128(a as *mut __m128i, lo);
                _mm_storeu_si128(a.add(4) as *mut __m128i, mid);
                (a.add(8) as *mut u64).write_unaligned(b_hi & (m2 as i64 as u64));
                *a = (pa & 1) | (pb & 4);
            }
        }
        _ => {
            let lut = lut_for(tag);
            for i in 0..n {
                let a = dst.add(i * TEXEL_WORDS);
                let b = src.add(i * TEXEL_WORDS);
                let pa = *a;
                let pb = *b;
                let stash = stash_sum_inputs(tag, a, b);
                let m = &lut[(((pa & 7) << 3) | (pb & 7)) as usize];
                // Words 0..8 as one 256-bit select, words 8..10 scalar u64.
                let lo = _mm256_or_si256(
                    _mm256_and_si256(
                        _mm256_loadu_si256(a as *const __m256i),
                        _mm256_loadu_si256(m.a.w.as_ptr() as *const __m256i),
                    ),
                    _mm256_and_si256(
                        _mm256_loadu_si256(b as *const __m256i),
                        _mm256_loadu_si256(m.b.w.as_ptr() as *const __m256i),
                    ),
                );
                let a_hi = (a.add(8) as *const u64).read_unaligned();
                let b_hi = (b.add(8) as *const u64).read_unaligned();
                let ma_hi = (m.a.w.as_ptr().add(8) as *const u64).read_unaligned();
                let mb_hi = (m.b.w.as_ptr().add(8) as *const u64).read_unaligned();
                _mm256_storeu_si256(a as *mut __m256i, lo);
                (a.add(8) as *mut u64).write_unaligned((a_hi & ma_hi) | (b_hi & mb_hi));
                *a = out_presence(tag, pa, pb);
                apply_sum_patch(tag, pa, pb, stash, a);
            }
        }
    }
}

/// Runtime-tag front for the specialized AVX2 loops.
///
/// # Safety
/// As [`blend_rows_avx2_t`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn blend_rows_avx2(tag: BlendTag, dst: *mut u32, src: *const u32, n: usize) {
    match tag {
        BlendTag::Over => blend_rows_avx2_t::<{ BlendTag::Over.idx() }>(dst, src, n),
        BlendTag::PointOverArea => {
            blend_rows_avx2_t::<{ BlendTag::PointOverArea.idx() }>(dst, src, n)
        }
        BlendTag::AreaCount => blend_rows_avx2_t::<{ BlendTag::AreaCount.idx() }>(dst, src, n),
        BlendTag::Accumulate => blend_rows_avx2_t::<{ BlendTag::Accumulate.idx() }>(dst, src, n),
        BlendTag::PointAccumulate => {
            blend_rows_avx2_t::<{ BlendTag::PointAccumulate.idx() }>(dst, src, n)
        }
    }
}

/// Pointwise blend of two texel rows with an explicit backend:
/// `dst[i] = tag ⊙ (dst[i], src[i])`. Bit-identical across backends.
pub fn blend_rows_with<P: TexelWords>(backend: Backend, tag: BlendTag, dst: &mut [P], src: &[P]) {
    assert_eq!(dst.len(), src.len(), "blend rows must match");
    match backend {
        Backend::Scalar => blend_rows_scalar(tag, dst, src),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe {
            blend_rows_sse2(
                tag,
                row_words_mut(dst).as_mut_ptr(),
                row_words(src).as_ptr(),
                src.len(),
            )
        },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe {
            blend_rows_avx2(
                tag,
                row_words_mut(dst).as_mut_ptr(),
                row_words(src).as_ptr(),
                src.len(),
            )
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => blend_rows_scalar(tag, dst, src),
    }
}

/// [`blend_rows_with`] on the process-wide [`active_backend`].
pub fn blend_rows<P: TexelWords>(tag: BlendTag, dst: &mut [P], src: &[P]) {
    blend_rows_with(active_backend(), tag, dst, src)
}

// ---------------------------------------------------------------------
// Value kernels
// ---------------------------------------------------------------------

/// Built-in value transform over a texel row. Deliberately scalar on
/// every backend: both transforms are `ln`-dominated and the
/// bit-identity contract forbids a vector `ln` approximation (see
/// module docs), so the `backend` parameter only keeps the dispatch
/// surface uniform.
pub fn value_rows_with<P: TexelWords>(backend: Backend, tag: ValueTag, texels: &mut [P]) {
    let _ = backend;
    let w = row_words_mut(texels);
    match tag {
        ValueTag::HeatLog => {
            for t in w.chunks_exact_mut(TEXEL_WORDS) {
                if t[0] & 1 != 0 {
                    t[3] = (1.0 + f32::from_bits(t[2])).ln().to_bits();
                }
            }
        }
        ValueTag::DensityLog { tag } => {
            for t in w.chunks_exact_mut(TEXEL_WORDS) {
                if t[0] & 4 != 0 {
                    let v1 = f32::from_bits(t[8]) - tag;
                    t[8] = v1.to_bits();
                    t[9] = (1.0 + v1).ln().to_bits();
                }
            }
        }
    }
}

/// [`value_rows_with`] on the process-wide [`active_backend`].
pub fn value_rows<P: TexelWords>(tag: ValueTag, texels: &mut [P]) {
    value_rows_with(active_backend(), tag, texels)
}

/// The raw keep-predicate of a mask tag (without the null-pass rule) —
/// what the algebra layer's materialized mask pass and boundary replay
/// evaluate per texel.
#[inline]
pub fn mask_pred<P: TexelWords>(tag: MaskTag, t: &P) -> bool {
    let w = texel_words(t);
    match tag {
        MaskTag::PointAndArea => w[0] & 0b101 == 0b101,
        MaskTag::AreaV1Above { threshold } => w[0] & 4 != 0 && f32::from_bits(w[8]) > threshold,
    }
}

// ---------------------------------------------------------------------
// Mask kernels
// ---------------------------------------------------------------------

/// Scalar mask of one texel. Returns `(killed, null_after)`.
#[inline]
fn mask_texel_scalar(tag: MaskTag, t: &mut [u32]) -> (bool, bool) {
    let p = t[0];
    let pred = match tag {
        MaskTag::PointAndArea => p & 0b101 == 0b101,
        MaskTag::AreaV1Above { threshold } => p & 4 != 0 && f32::from_bits(t[8]) > threshold,
    };
    let keep = p == 0 || pred;
    if !keep {
        t[..TEXEL_WORDS].fill(0);
    }
    (!keep, t[0] == 0)
}

fn mask_rows_scalar<P: TexelWords>(
    tag: MaskTag,
    texels: &mut [P],
    mut cov: Option<&mut [u16]>,
    bits: &mut [u64],
) {
    let w = row_words_mut(texels);
    for (i, t) in w.chunks_exact_mut(TEXEL_WORDS).enumerate() {
        let (killed, null_after) = mask_texel_scalar(tag, t);
        if killed {
            if let Some(cov) = cov.as_deref_mut() {
                cov[i] = 0;
            }
        }
        if null_after {
            bits[i / 64] |= 1 << (i % 64);
        }
    }
}

/// AVX2 mask pass: gathers the strided presence words (and, for the
/// threshold tag, the 2-row `v1` words) for 8 texels at a time,
/// evaluates keep/null lanes branchlessly, and packs the null bitmap
/// via `movemask`. Failing texels are zeroed scalar per lane.
///
/// # Safety
/// `w` must point at `n * 10` valid u32 words; AVX2 must be available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mask_rows_avx2(
    tag: MaskTag,
    w: *mut u32,
    n: usize,
    mut cov: Option<&mut [u16]>,
    bits: &mut [u64],
) {
    let stride = _mm256_setr_epi32(0, 10, 20, 30, 40, 50, 60, 70);
    let zero = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 8 <= n {
        let base = _mm256_add_epi32(stride, _mm256_set1_epi32((i * TEXEL_WORDS) as i32));
        let vp = _mm256_i32gather_epi32::<4>(w as *const i32, base);
        let vnull = _mm256_cmpeq_epi32(vp, zero);
        let vpred = match tag {
            MaskTag::PointAndArea => {
                let five = _mm256_set1_epi32(0b101);
                _mm256_cmpeq_epi32(_mm256_and_si256(vp, five), five)
            }
            MaskTag::AreaV1Above { threshold } => {
                let v1idx = _mm256_add_epi32(base, _mm256_set1_epi32(8));
                let v1 = _mm256_i32gather_ps::<4>(w as *const f32, v1idx);
                let gt = _mm256_castps_si256(_mm256_cmp_ps::<{ _CMP_GT_OQ }>(
                    v1,
                    _mm256_set1_ps(threshold),
                ));
                let four = _mm256_set1_epi32(4);
                _mm256_and_si256(_mm256_cmpeq_epi32(_mm256_and_si256(vp, four), four), gt)
            }
        };
        let vkeep = _mm256_or_si256(vnull, vpred);
        // null_after = null ∨ ¬keep; with keep = null ∨ pred this is
        // null ∨ ¬pred.
        let kill = !(_mm256_movemask_ps(_mm256_castsi256_ps(vkeep)) as u32) & 0xFF;
        let nulls = (_mm256_movemask_ps(_mm256_castsi256_ps(vnull)) as u32 | kill) & 0xFF;
        if kill != 0 {
            let mut lanes = kill;
            while lanes != 0 {
                let j = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                std::ptr::write_bytes(w.add((i + j) * TEXEL_WORDS), 0, TEXEL_WORDS);
                if let Some(cov) = cov.as_deref_mut() {
                    cov[i + j] = 0;
                }
            }
        }
        // i is a multiple of 8, so all 8 bits land in one u64 word.
        bits[i / 64] |= (nulls as u64) << (i % 64);
        i += 8;
    }
    // Remainder lanes: scalar reference.
    while i < n {
        let t = std::slice::from_raw_parts_mut(w.add(i * TEXEL_WORDS), TEXEL_WORDS);
        let (killed, null_after) = mask_texel_scalar(tag, t);
        if killed {
            if let Some(cov) = cov.as_deref_mut() {
                cov[i] = 0;
            }
        }
        if null_after {
            bits[i / 64] |= 1 << (i % 64);
        }
        i += 1;
    }
}

/// Built-in mask over a texel row with an explicit backend: texels
/// failing `keep = is_null ∨ pred` are nulled and their cover zeroed;
/// `bits` (a local row-major bitset, `⌈n/64⌉` words, bit `i` for texel
/// `i`) accumulates the post-op null set. SSE2 has no gather, so only
/// AVX2 takes the vector path.
pub fn mask_rows_with<P: TexelWords>(
    backend: Backend,
    tag: MaskTag,
    texels: &mut [P],
    cov: Option<&mut [u16]>,
    bits: &mut [u64],
) {
    if let Some(c) = cov.as_deref() {
        assert_eq!(c.len(), texels.len(), "mask cover row must match");
    }
    assert!(
        bits.len() >= texels.len().div_ceil(64),
        "mask bitset too short"
    );
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe {
            let n = texels.len();
            mask_rows_avx2(tag, row_words_mut(texels).as_mut_ptr(), n, cov, bits)
        },
        _ => mask_rows_scalar(tag, texels, cov, bits),
    }
}

/// [`mask_rows_with`] on the process-wide [`active_backend`].
pub fn mask_rows<P: TexelWords>(
    tag: MaskTag,
    texels: &mut [P],
    cov: Option<&mut [u16]>,
    bits: &mut [u64],
) {
    mask_rows_with(active_backend(), tag, texels, cov, bits)
}

// ---------------------------------------------------------------------
// Cover / span kernels
// ---------------------------------------------------------------------

/// # Safety
/// SSE2 must be available; slices already length-checked by caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn cover_add_sse2(dst: &mut [u16], src: &[u16]) {
    let n = dst.len();
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        let vd = _mm_loadu_si128(d.add(i) as *const __m128i);
        let vs = _mm_loadu_si128(s.add(i) as *const __m128i);
        _mm_storeu_si128(d.add(i) as *mut __m128i, _mm_adds_epu16(vd, vs));
        i += 8;
    }
    while i < n {
        *d.add(i) = (*d.add(i)).saturating_add(*s.add(i));
        i += 1;
    }
}

/// # Safety
/// AVX2 must be available; slices already length-checked by caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cover_add_avx2(dst: &mut [u16], src: &[u16]) {
    let n = dst.len();
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let mut i = 0usize;
    while i + 16 <= n {
        let vd = _mm256_loadu_si256(d.add(i) as *const __m256i);
        let vs = _mm256_loadu_si256(s.add(i) as *const __m256i);
        _mm256_storeu_si256(d.add(i) as *mut __m256i, _mm256_adds_epu16(vd, vs));
        i += 16;
    }
    while i < n {
        *d.add(i) = (*d.add(i)).saturating_add(*s.add(i));
        i += 1;
    }
}

/// Saturating add of two cover rows: `dst[i] ⊕= src[i]` (the canvas
/// Blend contract for certain-cover planes).
pub fn cover_add_rows_with(backend: Backend, dst: &mut [u16], src: &[u16]) {
    assert_eq!(dst.len(), src.len(), "cover rows must match");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => unsafe { cover_add_sse2(dst, src) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => unsafe { cover_add_avx2(dst, src) },
        _ => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = d.saturating_add(*s);
            }
        }
    }
}

/// [`cover_add_rows_with`] on the process-wide [`active_backend`].
pub fn cover_add_rows(dst: &mut [u16], src: &[u16]) {
    cover_add_rows_with(active_backend(), dst, src)
}

/// Saturating `+1` across a cover span (scanline fill coverage).
pub fn cover_inc_with(backend: Backend, dst: &mut [u16]) {
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 | Backend::Avx2 => unsafe { cover_inc_x86(dst) },
        _ => {
            for d in dst.iter_mut() {
                *d = d.saturating_add(1);
            }
        }
    }
}

/// # Safety
/// SSE2 must be available (x86_64 baseline — always true here).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn cover_inc_x86(dst: &mut [u16]) {
    let n = dst.len();
    let d = dst.as_mut_ptr();
    let one = _mm_set1_epi16(1);
    let mut i = 0usize;
    while i + 8 <= n {
        let vd = _mm_loadu_si128(d.add(i) as *const __m128i);
        _mm_storeu_si128(d.add(i) as *mut __m128i, _mm_adds_epu16(vd, one));
        i += 8;
    }
    while i < n {
        *d.add(i) = (*d.add(i)).saturating_add(1);
        i += 1;
    }
}

/// Fills a stamp span with `v` (polygon fill's per-record generation
/// marker). `slice::fill` already lowers to a vector loop, so every
/// backend shares it; kept in the kernel surface so the span fill path
/// reads as one dispatch site.
pub fn fill_u32_with(backend: Backend, dst: &mut [u32], v: u32) {
    let _ = backend;
    dst.fill(v);
}

/// True when any element of `hay` equals `needle` — the stale-stamp
/// scan deciding whether a fill span can take the fresh-span fast path.
pub fn any_equals_with(backend: Backend, hay: &[u32], needle: u32) -> bool {
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 | Backend::Avx2 => unsafe { any_equals_x86(hay, needle) },
        _ => hay.contains(&needle),
    }
}

/// # Safety
/// SSE2 must be available (x86_64 baseline — always true here).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn any_equals_x86(hay: &[u32], needle: u32) -> bool {
    let n = hay.len();
    let p = hay.as_ptr();
    let vn = _mm_set1_epi32(needle as i32);
    let mut i = 0usize;
    while i + 4 <= n {
        let v = _mm_loadu_si128(p.add(i) as *const __m128i);
        if _mm_movemask_epi8(_mm_cmpeq_epi32(v, vn)) != 0 {
            return true;
        }
        i += 4;
    }
    while i < n {
        if *p.add(i) == needle {
            return true;
        }
        i += 1;
    }
    false
}

/// Fills a texel row with one value (span fill of shaded texels).
pub fn fill_rows_with<P: TexelWords>(backend: Backend, dst: &mut [P], value: P) {
    let _ = backend;
    dst.fill(value);
}

// ---------------------------------------------------------------------
// Calibration probe
// ---------------------------------------------------------------------

/// Measures the per-texel cost (ns) of the dispatched `Over` blend
/// kernel on an L1-resident row with mixed presence — the
/// representative per-item work the executor's min-parallel-items
/// recalibration feeds on, so the threshold tracks the *SIMD* texel
/// cost instead of the boot-time synthetic one.
pub fn per_texel_probe_ns<P: TexelWords>() -> f64 {
    let backend = active_backend();
    const N: usize = 4096;
    const REPS: usize = 8;
    let mut template = vec![P::default(); N];
    let mut src = vec![P::default(); N];
    let mut seed = 0x9E37_79B9u32;
    {
        let tw = row_words_mut(&mut template);
        let sw = row_words_mut(&mut src);
        for i in 0..N {
            seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            tw[i * TEXEL_WORDS] = seed >> 13 & 7;
            tw[i * TEXEL_WORDS + 2] = 1.0f32.to_bits();
            seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            sw[i * TEXEL_WORDS] = seed >> 13 & 7;
            sw[i * TEXEL_WORDS + 2] = 2.0f32.to_bits();
        }
    }
    let mut dst = template.clone();
    // Warm the LUT and instruction cache.
    blend_rows_with(backend, BlendTag::Over, &mut dst, &src);
    dst.copy_from_slice(&template);
    let start = Instant::now();
    for _ in 0..REPS {
        blend_rows_with(backend, BlendTag::Over, &mut dst, &src);
        std::hint::black_box(&mut dst);
    }
    let per_item = start.elapsed().as_nanos() as f64 / (REPS * N) as f64;
    per_item.max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bare ten-word texel satisfying the layout contract.
    #[repr(C)]
    #[derive(Clone, Copy, Debug, Default, PartialEq)]
    struct T10([u32; TEXEL_WORDS]);

    // SAFETY: repr(C) [u32; 10] is 40 bytes, align 4, no padding, and
    // every bit pattern is valid.
    unsafe impl TexelWords for T10 {}

    fn backends() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            v.push(Backend::Sse2);
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(Backend::Avx2);
            }
        }
        v
    }

    const ALL_BLENDS: [BlendTag; 5] = [
        BlendTag::Over,
        BlendTag::PointOverArea,
        BlendTag::AreaCount,
        BlendTag::Accumulate,
        BlendTag::PointAccumulate,
    ];

    /// Texel with the given presence whose payload words are derived
    /// from `seed`, mixing in awkward float bit patterns (-0.0, NaN,
    /// denormals) so verbatim-copy violations surface.
    fn texel(presence: u32, seed: u32) -> T10 {
        let specials = [
            1.5f32.to_bits(),
            (-0.0f32).to_bits(),
            f32::NAN.to_bits(),
            1.0e-40f32.to_bits(), // denormal
            (-3.25f32).to_bits(),
            3.0e38f32.to_bits(),
        ];
        let mut w = [0u32; TEXEL_WORDS];
        w[0] = presence;
        let mut s = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        for (i, word) in w.iter_mut().enumerate().skip(1) {
            s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            *word = if i % 3 == 1 {
                s // id word: arbitrary bits
            } else {
                specials[(s as usize) % specials.len()]
            };
        }
        T10(w)
    }

    #[test]
    fn blend_backends_bit_identical_exhaustive_presence() {
        for tag in ALL_BLENDS {
            for pa in 0..8u32 {
                for pb in 0..8u32 {
                    for seed in 0..4u32 {
                        let a = texel(pa, seed * 2 + 1);
                        let b = texel(pb, seed * 2 + 2);
                        let mut want = [a];
                        blend_rows_with(Backend::Scalar, tag, &mut want, &[b]);
                        for be in backends() {
                            let mut got = [a];
                            blend_rows_with(be, tag, &mut got, &[b]);
                            assert_eq!(
                                got[0].0, want[0].0,
                                "{tag:?} {be:?} pa={pa:03b} pb={pb:03b} seed={seed}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn blend_remainder_lanes_and_long_rows() {
        for tag in ALL_BLENDS {
            for len in [1usize, 2, 3, 7, 8, 9, 16, 17, 67] {
                let dst: Vec<T10> = (0..len).map(|i| texel(i as u32 % 8, i as u32)).collect();
                let src: Vec<T10> = (0..len)
                    .map(|i| texel((i as u32 + 3) % 8, 99 + i as u32))
                    .collect();
                let mut want = dst.clone();
                blend_rows_with(Backend::Scalar, tag, &mut want, &src);
                for be in backends() {
                    let mut got = dst.clone();
                    blend_rows_with(be, tag, &mut got, &src);
                    assert_eq!(got, want, "{tag:?} {be:?} len={len}");
                }
            }
        }
    }

    #[test]
    fn over_keeps_left_and_preserves_absent_words() {
        // a has dim0; b has dim0+dim2. Over keeps a's dim0 verbatim,
        // takes b's dim2, and leaves a's absent-dim garbage words alone.
        let mut a = texel(0b001, 7);
        a.0[4] = 0xDEAD_BEEF; // garbage in absent dim1
        let b = texel(0b101, 8);
        for be in backends() {
            let mut out = [a];
            blend_rows_with(be, BlendTag::Over, &mut out, &[b]);
            let w = out[0].0;
            assert_eq!(w[0], 0b101);
            assert_eq!(&w[1..4], &a.0[1..4], "left dim0 kept ({be:?})");
            assert_eq!(w[4], 0xDEAD_BEEF, "absent dim words verbatim ({be:?})");
            assert_eq!(&w[7..10], &b.0[7..10], "right dim2 taken ({be:?})");
        }
    }

    #[test]
    fn accumulate_zeroes_id_and_sums() {
        let a = T10([1, 77, 2.0f32.to_bits(), 10.0f32.to_bits(), 0, 0, 0, 0, 0, 0]);
        let b = T10([1, 88, 3.0f32.to_bits(), 20.0f32.to_bits(), 0, 0, 0, 0, 0, 0]);
        for be in backends() {
            let mut out = [a];
            blend_rows_with(be, BlendTag::Accumulate, &mut out, &[b]);
            let w = out[0].0;
            assert_eq!(w[0], 1);
            assert_eq!(w[1], 0, "id zeroed ({be:?})");
            assert_eq!(f32::from_bits(w[2]), 5.0);
            assert_eq!(f32::from_bits(w[3]), 30.0);
        }
    }

    #[test]
    fn value_rows_heat_and_density() {
        let mut row: Vec<T10> = (0..13).map(|i| texel(i % 8, 1000 + i)).collect();
        // Make v1 words finite so ln(1 + v1) is well-defined.
        for t in &mut row {
            t.0[2] = (t.0[0] & 1) as f32 as u32; // placeholder, overwritten below
        }
        for (i, t) in row.iter_mut().enumerate() {
            t.0[2] = (i as f32).to_bits();
            t.0[8] = (i as f32 + 7.0).to_bits();
        }
        let before = row.clone();
        let mut heat = row.clone();
        value_rows_with(Backend::Scalar, ValueTag::HeatLog, &mut heat);
        for (t, b) in heat.iter().zip(&before) {
            if b.0[0] & 1 != 0 {
                assert_eq!(f32::from_bits(t.0[3]), (1.0 + f32::from_bits(b.0[2])).ln());
            } else {
                assert_eq!(t.0, b.0);
            }
        }
        let mut dens = row.clone();
        value_rows_with(
            Backend::Scalar,
            ValueTag::DensityLog { tag: 5.0 },
            &mut dens,
        );
        for (t, b) in dens.iter().zip(&before) {
            if b.0[0] & 4 != 0 {
                let v1 = f32::from_bits(b.0[8]) - 5.0;
                assert_eq!(f32::from_bits(t.0[8]), v1);
                assert_eq!(f32::from_bits(t.0[9]), (1.0 + v1).ln());
            } else {
                assert_eq!(t.0, b.0);
            }
        }
    }

    #[test]
    fn mask_backends_bit_identical() {
        for tag in [
            MaskTag::PointAndArea,
            MaskTag::AreaV1Above { threshold: 4.5 },
        ] {
            for len in [1usize, 7, 8, 9, 64, 65, 130] {
                let row: Vec<T10> = (0..len)
                    .map(|i| {
                        let mut t = texel(i as u32 % 8, 31 * i as u32);
                        t.0[8] = ((i % 11) as f32).to_bits();
                        t
                    })
                    .collect();
                let cov0: Vec<u16> = (0..len).map(|i| (i + 1) as u16).collect();
                let words = len.div_ceil(64);
                let mut want_t = row.clone();
                let mut want_c = cov0.clone();
                let mut want_b = vec![0u64; words];
                mask_rows_with(
                    Backend::Scalar,
                    tag,
                    &mut want_t,
                    Some(&mut want_c),
                    &mut want_b,
                );
                for be in backends() {
                    let mut got_t = row.clone();
                    let mut got_c = cov0.clone();
                    let mut got_b = vec![0u64; words];
                    mask_rows_with(be, tag, &mut got_t, Some(&mut got_c), &mut got_b);
                    assert_eq!(got_t, want_t, "{tag:?} {be:?} len={len} texels");
                    assert_eq!(got_c, want_c, "{tag:?} {be:?} len={len} cover");
                    assert_eq!(got_b, want_b, "{tag:?} {be:?} len={len} bits");
                }
            }
        }
    }

    #[test]
    fn mask_semantics_null_passes_and_failures_null() {
        let null = T10::default();
        let point = {
            let mut t = T10::default();
            t.0[0] = 0b001;
            t
        };
        let both = {
            let mut t = T10::default();
            t.0[0] = 0b101;
            t
        };
        let mut row = [null, point, both];
        let mut cov = [5u16, 5, 5];
        let mut bits = [0u64; 1];
        mask_rows_with(
            Backend::Scalar,
            MaskTag::PointAndArea,
            &mut row,
            Some(&mut cov),
            &mut bits,
        );
        assert_eq!(row[0], null, "null passes untouched");
        assert_eq!(row[1], null, "point-only killed");
        assert_eq!(row[2], both, "point∧area kept");
        assert_eq!(cov, [5, 0, 5]);
        assert_eq!(bits[0], 0b011, "null-after bits: null + killed");
    }

    #[test]
    fn cover_kernels_saturate_identically() {
        for len in [1usize, 7, 8, 15, 16, 33] {
            let dst0: Vec<u16> = (0..len)
                .map(|i| if i % 3 == 0 { u16::MAX - 1 } else { 40_000 })
                .collect();
            let src: Vec<u16> = (0..len).map(|i| (i as u16) * 7 + 3).collect();
            let mut want = dst0.clone();
            for (d, s) in want.iter_mut().zip(&src) {
                *d = d.saturating_add(*s);
            }
            for be in backends() {
                let mut got = dst0.clone();
                cover_add_rows_with(be, &mut got, &src);
                assert_eq!(got, want, "{be:?} len={len}");
                let mut inc = dst0.clone();
                cover_inc_with(be, &mut inc);
                let want_inc: Vec<u16> = dst0.iter().map(|d| d.saturating_add(1)).collect();
                assert_eq!(inc, want_inc, "{be:?} len={len} inc");
            }
        }
    }

    #[test]
    fn any_equals_scans() {
        for be in backends() {
            let hay: Vec<u32> = (0..37).map(|i| i * 2).collect();
            assert!(any_equals_with(be, &hay, 36), "{be:?}");
            assert!(any_equals_with(be, &hay, 72), "{be:?} tail element");
            assert!(!any_equals_with(be, &hay, 35), "{be:?}");
            assert!(!any_equals_with(be, &[], 0), "{be:?} empty");
        }
    }

    #[test]
    fn backend_shape() {
        assert_eq!(Backend::Scalar.width(), 1);
        assert_eq!(Backend::Sse2.width(), 4);
        assert_eq!(Backend::Avx2.width(), 8);
        assert!(!Backend::Scalar.is_vector());
        assert!(Backend::Avx2.is_vector());
        assert_eq!(Backend::Avx2.name(), "avx2");
        // Whatever the host, the selected backend must be usable.
        let be = active_backend();
        assert!(be.width() >= 1);
        let mut row = [texel(3, 1)];
        blend_rows_with(be, BlendTag::Over, &mut row, &[texel(5, 2)]);
    }

    #[test]
    fn probe_returns_positive_cost() {
        let ns = per_texel_probe_ns::<T10>();
        assert!(ns > 0.0 && ns.is_finite());
    }
}
