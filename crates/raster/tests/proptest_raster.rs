//! Property-based tests for the rasterization kernels' coverage
//! invariants — the guarantees the canvas layer's exactness rests on.

use canvas_geom::{BBox, Point, Polygon};
use canvas_raster::rasterize::{
    rasterize_line_supercover, rasterize_point, rasterize_polygon_fill, rasterize_triangle,
    RasterMode,
};
use canvas_raster::{Pipeline, Texture, Viewport};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn vp(n: u32) -> Viewport {
    Viewport::new(
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        n,
        n,
    )
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-20.0f64..120.0, -20.0f64..120.0).prop_map(|(x, y)| Point::new(x, y))
}

fn in_extent_point() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The supercover line visits the cells of both (clamped) endpoints
    /// and is 4-connected (no diagonal gaps).
    #[test]
    fn supercover_connected_and_complete(a in in_extent_point(), b in in_extent_point()) {
        let v = vp(64);
        let mut cells: Vec<(u32, u32)> = Vec::new();
        rasterize_line_supercover(&v, a, b, |x, y| cells.push((x, y)));
        prop_assert!(!cells.is_empty());
        let set: BTreeSet<_> = cells.iter().copied().collect();
        prop_assert!(set.contains(&v.world_to_pixel(a).unwrap()));
        prop_assert!(set.contains(&v.world_to_pixel(b).unwrap()));
        for w in cells.windows(2) {
            let dx = w[0].0.abs_diff(w[1].0);
            let dy = w[0].1.abs_diff(w[1].1);
            prop_assert_eq!(dx + dy, 1, "gap between {:?} and {:?}", w[0], w[1]);
        }
    }

    /// Every pixel the segment's world trace passes through is emitted:
    /// sample points along the segment and check their pixels are
    /// covered.
    #[test]
    fn supercover_covers_samples(a in in_extent_point(), b in in_extent_point()) {
        let v = vp(64);
        let mut set = BTreeSet::new();
        rasterize_line_supercover(&v, a, b, |x, y| { set.insert((x, y)); });
        for i in 0..=50 {
            let p = a.lerp(b, i as f64 / 50.0);
            if let Some(cell) = v.world_to_pixel(p) {
                prop_assert!(set.contains(&cell), "sample {p} in uncovered cell {cell:?}");
            }
        }
    }

    /// Conservative triangle coverage is a superset of standard coverage,
    /// and both are clipped to the viewport.
    #[test]
    fn triangle_conservative_superset(
        a in arb_point(), b in arb_point(), c in arb_point(),
    ) {
        let v = vp(48);
        let mut std_set = BTreeSet::new();
        rasterize_triangle(&v, [a, b, c], RasterMode::Standard, |x, y| {
            std_set.insert((x, y));
        });
        let mut cons_set = BTreeSet::new();
        rasterize_triangle(&v, [a, b, c], RasterMode::Conservative, |x, y| {
            cons_set.insert((x, y));
        });
        prop_assert!(std_set.is_subset(&cons_set));
        for &(x, y) in &cons_set {
            prop_assert!(x < 48 && y < 48);
        }
    }

    /// Standard triangle coverage contains every strictly-interior pixel
    /// center and no strictly-exterior pixel center.
    #[test]
    fn triangle_standard_center_exact(
        a in in_extent_point(), b in in_extent_point(), c in in_extent_point(),
    ) {
        let v = vp(32);
        let mut set = BTreeSet::new();
        rasterize_triangle(&v, [a, b, c], RasterMode::Standard, |x, y| {
            set.insert((x, y));
        });
        for y in 0..32 {
            for x in 0..32 {
                let p = v.pixel_center(x, y);
                let d1 = (b - a).cross(p - a);
                let d2 = (c - b).cross(p - b);
                let d3 = (a - c).cross(p - c);
                let strictly_in =
                    (d1 > 0.0 && d2 > 0.0 && d3 > 0.0) || (d1 < 0.0 && d2 < 0.0 && d3 < 0.0);
                let strictly_out = (d1 > 0.0 || d2 > 0.0 || d3 > 0.0)
                    && (d1 < 0.0 || d2 < 0.0 || d3 < 0.0);
                if strictly_in {
                    prop_assert!(set.contains(&(x, y)), "missing interior pixel ({x},{y})");
                }
                if strictly_out && set.contains(&(x, y)) {
                    prop_assert!(false, "exterior pixel ({x},{y}) covered");
                }
            }
        }
    }

    /// Scanline polygon fill equals the exact strict-interior test at
    /// pixel centers for star-shaped polygons.
    #[test]
    fn polygon_fill_center_exact(n in 3usize..16, seed in 0u64..100_000) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / n as f64;
                let r = 15.0 + 30.0 * next();
                Point::new(50.0 + r * ang.cos(), 50.0 + r * ang.sin())
            })
            .collect();
        let poly = Polygon::simple(pts).unwrap();
        let v = vp(40);
        let mut set = BTreeSet::new();
        rasterize_polygon_fill(&v, &poly, |x, y| { set.insert((x, y)); });
        for y in 0..40 {
            for x in 0..40 {
                let inside = matches!(
                    poly.contains(v.pixel_center(x, y)),
                    canvas_geom::Containment::Inside
                );
                prop_assert_eq!(
                    set.contains(&(x, y)),
                    inside,
                    "fill disagrees at ({}, {})", x, y
                );
            }
        }
    }

    /// Point rasterization hits exactly the pixel containing the point.
    #[test]
    fn point_raster_exact(p in arb_point()) {
        let v = vp(64);
        let mut hits = Vec::new();
        rasterize_point(&v, p, |x, y| hits.push((x, y)));
        match v.world_to_pixel(p) {
            Some(cell) => prop_assert_eq!(hits, vec![cell]),
            None => prop_assert!(hits.is_empty()),
        }
    }

    /// Pipeline stats: draw_points counts one fragment per in-viewport
    /// point; blend_into counts every texel exactly once.
    #[test]
    fn stats_accounting(pts in prop::collection::vec(arb_point(), 0..100)) {
        let v = vp(32);
        let mut pl = Pipeline::new();
        let mut fb: Texture<u32> = Texture::new(32, 32);
        pl.draw_points(&v, &mut fb, &pts, |_, _| 1u32, |d, s| d + s);
        let inside = pts.iter().filter(|p| v.world_to_pixel(**p).is_some()).count() as u64;
        let st = pl.stats();
        prop_assert_eq!(st.fragments, inside);
        prop_assert_eq!(st.vertices, pts.len() as u64);
        let total: u32 = fb.texels().iter().sum();
        prop_assert_eq!(total as u64, inside);
    }
}
