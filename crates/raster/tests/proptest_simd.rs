//! SIMD ≡ scalar bit-identity properties — the fourth axis of the
//! repo's streamed ≡ materialized ≡ sequential equivalence oracle.
//!
//! The row kernels (`canvas_raster::simd`) promise that every vector
//! backend produces the *same bits* as the scalar reference, including
//! NaN payloads, `-0.0`, denormals, non-canonical presence bits, and
//! garbage words under absent dimensions. These properties fuzz that
//! promise directly on the kernels, then on the fused chain pipeline
//! across thread counts and dispatch modes.

use canvas_geom::{BBox, Point, Polygon};
use canvas_raster::{
    simd, Backend, BlendTag, MaskTag, OpChain, Pipeline, TexelWords, Texture, ValueTag, Viewport,
};
use proptest::prelude::*;

/// Test-local 40-byte texel honoring the [`TexelWords`] layout (the
/// raster crate cannot name the canvas layer's `Texel`; any conforming
/// type exercises the same kernels).
#[repr(C)]
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
struct T10([u32; 10]);

// SAFETY: repr(C) array of exactly ten u32 words — 40 bytes, align 4,
// no padding, no niches. Word 0 serves as the presence mask.
unsafe impl TexelWords for T10 {}

/// Backends guaranteed present on this host: the scalar reference, the
/// process-wide dispatched backend, and (on x86_64) the baseline SSE2
/// path. Never names AVX2 directly — that only arrives via
/// `active_backend()` when the CPU actually has it.
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar, simd::active_backend()];
    if cfg!(target_arch = "x86_64") && !v.contains(&Backend::Sse2) {
        v.push(Backend::Sse2);
    }
    v
}

/// Payload words biased toward adversarial f32 bit patterns: NaNs with
/// payload bits, `-0.0`, denormals, infinities, plus arbitrary words.
fn arb_word() -> impl Strategy<Value = u32> {
    (0u32..5, 0u32..u32::MAX).prop_map(|(k, r)| match k {
        0 => f32::NAN.to_bits() | (r & 0x3F_FFFF),
        1 => (-0.0f32).to_bits(),
        2 => 1, // smallest positive denormal
        3 => f32::NEG_INFINITY.to_bits(),
        _ => r,
    })
}

/// A full texel: presence `0..16` exercises a non-canonical high bit
/// (the keep-left tags must preserve it), and payload words are
/// arbitrary — including nonzero words under *absent* dims, which the
/// keep-verbatim tags copy and the start-from-∅ tags drop.
fn arb_texel() -> impl Strategy<Value = T10> {
    (0u32..16, prop::collection::vec(arb_word(), 9..10)).prop_map(|(p, w)| {
        let mut t = [0u32; 10];
        t[0] = p;
        t[1..10].copy_from_slice(&w);
        T10(t)
    })
}

/// Rows from one texel up to several vector widths plus a remainder, so
/// sub-lane rows and non-multiple-of-8 tails are always exercised.
fn arb_row() -> impl Strategy<Value = Vec<T10>> {
    prop::collection::vec(arb_texel(), 1..35)
}

/// Covers biased toward the saturation boundary.
fn arb_cover_row() -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(
        (0u32..3, 0u32..65_536).prop_map(|(k, r)| match k {
            0 => u16::MAX - (r as u16 & 7),
            _ => r as u16,
        }),
        1..67,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every blend tag on every backend is bit-identical to scalar.
    #[test]
    fn blend_rows_bit_identity(a in arb_row(), b in arb_row()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        for tag in [
            BlendTag::Over,
            BlendTag::PointOverArea,
            BlendTag::AreaCount,
            BlendTag::Accumulate,
            BlendTag::PointAccumulate,
        ] {
            let mut want = a.to_vec();
            simd::blend_rows_with(Backend::Scalar, tag, &mut want, b);
            for be in backends() {
                let mut got = a.to_vec();
                simd::blend_rows_with(be, tag, &mut got, b);
                prop_assert_eq!(&got, &want, "tag {:?} backend {:?}", tag, be);
            }
        }
    }

    /// Value transforms are bit-identical on every backend (they are
    /// deliberately scalar inside, but the dispatch surface must agree).
    #[test]
    fn value_rows_bit_identity(row in arb_row()) {
        for tag in [ValueTag::HeatLog, ValueTag::DensityLog { tag: 4.0 }] {
            let mut want = row.clone();
            simd::value_rows_with(Backend::Scalar, tag, &mut want);
            for be in backends() {
                let mut got = row.clone();
                simd::value_rows_with(be, tag, &mut got);
                prop_assert_eq!(&got, &want, "tag {:?} backend {:?}", tag, be);
            }
        }
    }

    /// Mask kernels agree on kept/nulled texels, the zeroed cover
    /// lanes, and every bit of the null bitmap.
    #[test]
    fn mask_rows_bit_identity(row in arb_row()) {
        let n = row.len();
        let cov0: Vec<u16> = (0..n).map(|i| (i as u16).wrapping_mul(31) | 1).collect();
        for tag in [
            MaskTag::PointAndArea,
            MaskTag::AreaV1Above { threshold: 0.5 },
            MaskTag::AreaV1Above { threshold: -1.0e-40 },
        ] {
            let mut want = row.clone();
            let mut want_cov = cov0.clone();
            let mut want_bits = vec![0u64; n.div_ceil(64)];
            simd::mask_rows_with(
                Backend::Scalar,
                tag,
                &mut want,
                Some(&mut want_cov),
                &mut want_bits,
            );
            for be in backends() {
                let mut got = row.clone();
                let mut got_cov = cov0.clone();
                let mut got_bits = vec![0u64; n.div_ceil(64)];
                simd::mask_rows_with(be, tag, &mut got, Some(&mut got_cov), &mut got_bits);
                prop_assert_eq!(&got, &want, "texels: tag {:?} backend {:?}", tag, be);
                prop_assert_eq!(&got_cov, &want_cov, "cover: tag {:?} backend {:?}", tag, be);
                prop_assert_eq!(&got_bits, &want_bits, "bits: tag {:?} backend {:?}", tag, be);
            }
        }
    }

    /// u16 cover merge saturates (never wraps) and is backend-agnostic.
    #[test]
    fn cover_add_saturates_bit_identical(a in arb_cover_row(), b in arb_cover_row()) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut want = a.to_vec();
        simd::cover_add_rows_with(Backend::Scalar, &mut want, b);
        for (i, w) in want.iter().enumerate() {
            prop_assert_eq!(*w, a[i].saturating_add(b[i]));
        }
        for be in backends() {
            let mut got = a.to_vec();
            simd::cover_add_rows_with(be, &mut got, b);
            prop_assert_eq!(&got, &want, "backend {:?}", be);
        }
    }
}

/// One full fused-chain run; returns every observable output.
#[allow(clippy::type_complexity)]
fn run_chain(
    threads: usize,
    forced: Option<Backend>,
    polys: &[Polygon],
    src: &Texture<T10>,
    src_cover: &Texture<u16>,
) -> (
    Texture<T10>,
    Texture<u16>,
    Vec<(u32, u32)>,
    Vec<bool>,
    (u64, u64, u64),
) {
    let (w, h) = (src.width(), src.height());
    let vp = Viewport::new(
        BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        w,
        h,
    );
    let mut chain = OpChain::new()
        .blend_tagged(src, Some(src_cover), BlendTag::Over)
        .mask_tagged(MaskTag::PointAndArea)
        .map_tagged(ValueTag::HeatLog);
    if let Some(be) = forced {
        chain = chain.with_backend(be);
    }
    let mut pl = Pipeline::new();
    pl.set_threads(threads);
    let mut fb: Texture<T10> = Texture::new(w, h);
    let mut cover: Texture<u16> = Texture::new(w, h);
    let (mut boundary, report) = pl.run_chain_polygons(
        &vp,
        &mut fb,
        &mut cover,
        polys,
        true,
        |pi, frag| {
            let mut t = [0u32; 10];
            t[0] = 0b001;
            t[1] = pi + 1;
            t[2] = (frag.x as f32).to_bits();
            t[3] = (frag.y as f32 + 0.5).to_bits();
            T10(t)
        },
        |d: T10, s: T10| if d.0[0] == 0 { s } else { d },
        &chain,
    );
    // Emission order is tile-dependent; the pixel sets must match.
    boundary.sort_unstable();
    let nulls: Vec<bool> = (0..w * h)
        .map(|p| report.masked.is_null_after(0, p))
        .collect();
    let st = pl.stats();
    (
        fb,
        cover,
        boundary,
        nulls,
        (st.fragments, st.boundary_fragments, st.blend_ops),
    )
}

proptest! {
    // The pipeline property is heavy (eight full runs per case), so it
    // gets a smaller case budget than the kernel-row properties.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fused chain produces bit-identical planes, cover, boundary
    /// pixel sets, mask bitmaps, and work stats at every thread count,
    /// under forced-scalar and auto dispatch alike.
    #[test]
    fn chain_polygons_equivalent_across_threads_and_dispatch(
        n in 3usize..12,
        seed in 0u64..100_000,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / n as f64;
                let r = 15.0 + 30.0 * next();
                Point::new(50.0 + r * ang.cos(), 50.0 + r * ang.sin())
            })
            .collect();
        let polys = vec![Polygon::simple(pts).unwrap()];

        let (w, h) = (48u32, 48u32);
        let mut src: Texture<T10> = Texture::new(w, h);
        for (i, t) in src.texels_mut().iter_mut().enumerate() {
            let mut words = [0u32; 10];
            words[0] = (i as u32) % 8;
            for (d, word) in words.iter_mut().enumerate().skip(1) {
                *word = ((i * 9 + d) as f32 * 0.25).to_bits();
            }
            *t = T10(words);
        }
        let mut src_cover: Texture<u16> = Texture::new(w, h);
        for (i, c) in src_cover.texels_mut().iter_mut().enumerate() {
            *c = (i % 5) as u16;
        }

        let reference = run_chain(1, Some(Backend::Scalar), &polys, &src, &src_cover);
        for threads in [1usize, 2, 3, 8] {
            for forced in [Some(Backend::Scalar), None] {
                let got = run_chain(threads, forced, &polys, &src, &src_cover);
                prop_assert_eq!(
                    &got.0, &reference.0,
                    "texel plane: threads {} forced {:?}", threads, forced
                );
                prop_assert_eq!(
                    &got.1, &reference.1,
                    "cover plane: threads {} forced {:?}", threads, forced
                );
                prop_assert_eq!(
                    &got.2, &reference.2,
                    "boundary pixels: threads {} forced {:?}", threads, forced
                );
                prop_assert_eq!(
                    &got.3, &reference.3,
                    "mask bitmap: threads {} forced {:?}", threads, forced
                );
                prop_assert_eq!(
                    got.4, reference.4,
                    "work stats: threads {} forced {:?}", threads, forced
                );
            }
        }
    }
}
