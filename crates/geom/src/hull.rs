//! Convex hull (Andrew's monotone chain) — one of the paper's
//! "computational geometry queries" (Section 4.5).

use crate::point::Point;

/// Convex hull of a point set, returned as a CCW ring without a repeated
/// closing vertex. Collinear boundary points are dropped.
///
/// Returns fewer than 3 points when the input is degenerate (empty,
/// single point, or all collinear).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.y.partial_cmp(&b.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup();
    let n = pts.len();
    if n < 3 {
        return pts;
    }

    let cross = |o: Point, a: Point, b: Point| (a - o).cross(b - o);
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);

    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull
}

/// True if `p` is inside or on the convex hull given as a CCW ring.
pub fn hull_contains(hull: &[Point], p: Point) -> bool {
    let n = hull.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        let a = hull[i];
        let b = hull[(i + 1) % n];
        if (b - a).cross(p - a) < -crate::EPS {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::is_ccw;

    #[test]
    fn square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(is_ccw(&h));
        for p in &pts {
            assert!(hull_contains(&h, *p));
        }
        assert!(!hull_contains(&h, Point::new(5.0, 5.0)));
    }

    #[test]
    fn collinear_input() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        let h = convex_hull(&pts);
        assert!(h.len() < 3);
    }

    #[test]
    fn collinear_boundary_points_dropped() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(4.0, 0.0), // collinear on bottom edge
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 4);
        assert!(!h.contains(&Point::new(2.0, 0.0)));
    }

    #[test]
    fn duplicates_handled() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ];
        let h = convex_hull(&pts);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn tiny_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::ORIGIN]).len(), 1);
        assert_eq!(convex_hull(&[Point::ORIGIN, Point::new(1.0, 1.0)]).len(), 2);
    }
}
