//! Edge BVH: ray-casting point-in-polygon in `O(log E)` per query.
//!
//! The paper's Section 5 notes an *alternate implementation* of the
//! operators on ray-tracing hardware ("the native ray tracing support
//! provided by the latest RTX-based Nvidia GPUs"), where containment
//! tests become ray casts against an acceleration structure. This module
//! is that structure in software: a bounding-volume hierarchy over a
//! polygon's edges supporting
//!
//! * [`EdgeBvh::crossings`] — count edges crossed by the +x ray from a
//!   point (the crossing-number kernel),
//! * [`EdgeBvh::contains_closed`] — exact closed PIP equivalent to
//!   [`Polygon::contains_closed`], visiting only `O(log E + answer)`
//!   edges instead of all of them.
//!
//! Baselines use it as the "optimized CPU/RTX refinement" variant; the
//! `ablations` bench compares kernels.

use crate::bbox::BBox;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::predicates::on_segment;

/// One polygon edge, preprocessed for ray tests.
#[derive(Clone, Copy, Debug)]
struct Edge {
    a: Point,
    b: Point,
}

#[derive(Clone, Debug)]
struct Node {
    bbox: BBox,
    /// Leaf: range into `edges`; internal: indexes of the two children.
    kind: NodeKind,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf { start: u32, end: u32 },
    Internal { left: u32, right: u32 },
}

const LEAF_SIZE: usize = 8;

/// A BVH over all edges (outer ring + holes) of one polygon.
#[derive(Clone, Debug)]
pub struct EdgeBvh {
    edges: Vec<Edge>,
    nodes: Vec<Node>,
    root: u32,
    /// Number of edge tests performed since construction (observability
    /// for the cost comparisons; interior mutability-free: updated via
    /// `&mut self` query variants or returned per call).
    total_edges: usize,
}

impl EdgeBvh {
    /// Builds the BVH over a polygon's edges (median split on the longer
    /// bbox axis).
    pub fn build(poly: &Polygon) -> Self {
        let mut edges: Vec<Edge> = poly.edges().map(|s| Edge { a: s.a, b: s.b }).collect();
        let mut nodes = Vec::with_capacity(2 * edges.len() / LEAF_SIZE + 2);
        let n = edges.len();
        let root = build_node(&mut edges, 0, n, &mut nodes);
        EdgeBvh {
            total_edges: edges.len(),
            edges,
            nodes,
            root,
        }
    }

    /// Total number of edges indexed.
    pub fn num_edges(&self) -> usize {
        self.total_edges
    }

    /// Counts crossings of the +x ray from `p` with indexed edges, and
    /// reports whether `p` lies exactly on some edge. Returns
    /// `(crossings, on_boundary, edges_visited)`.
    pub fn crossings(&self, p: Point) -> (u32, bool, u32) {
        let mut crossings = 0u32;
        let mut on_boundary = false;
        let mut visited = 0u32;
        let mut stack = vec![self.root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            // The +x ray interacts with a box only if the box's x-range
            // ends at/after p.x and its y-range straddles p.y.
            let b = &node.bbox;
            if b.max.x < p.x || p.y < b.min.y || p.y > b.max.y {
                continue;
            }
            match node.kind {
                NodeKind::Leaf { start, end } => {
                    for e in &self.edges[start as usize..end as usize] {
                        visited += 1;
                        if on_segment(p, e.a, e.b) {
                            on_boundary = true;
                        }
                        let (a, b) = (e.a, e.b);
                        if (b.y > p.y) != (a.y > p.y) {
                            let t = (p.y - b.y) / (a.y - b.y);
                            if p.x < b.x + t * (a.x - b.x) {
                                crossings += 1;
                            }
                        }
                    }
                }
                NodeKind::Internal { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        (crossings, on_boundary, visited)
    }

    /// Exact closed point-in-polygon via the BVH: boundary counts as
    /// inside; even–odd crossings across *all* rings (outer + holes)
    /// give hole-aware containment, matching `Polygon::contains_closed`.
    pub fn contains_closed(&self, p: Point) -> bool {
        let (crossings, on_boundary, _) = self.crossings(p);
        on_boundary || crossings % 2 == 1
    }
}

fn build_node(edges: &mut [Edge], start: usize, end: usize, nodes: &mut Vec<Node>) -> u32 {
    let bbox = edges[start..end]
        .iter()
        .fold(BBox::EMPTY, |b, e| b.union_point(e.a).union_point(e.b));
    if end - start <= LEAF_SIZE {
        nodes.push(Node {
            bbox,
            kind: NodeKind::Leaf {
                start: start as u32,
                end: end as u32,
            },
        });
        return (nodes.len() - 1) as u32;
    }
    // Median split on the longer axis by edge midpoint.
    let slice = &mut edges[start..end];
    let use_x = bbox.width() >= bbox.height();
    let mid = slice.len() / 2;
    slice.select_nth_unstable_by(mid, |l, r| {
        let key = |e: &Edge| {
            if use_x {
                e.a.x + e.b.x
            } else {
                e.a.y + e.b.y
            }
        };
        key(l)
            .partial_cmp(&key(r))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let split = start + mid;
    let left = build_node(edges, start, split, nodes);
    let right = build_node(edges, split, end, nodes);
    nodes.push(Node {
        bbox,
        kind: NodeKind::Internal { left, right },
    });
    (nodes.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;

    fn star(n: usize, seed: u64) -> Polygon {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / n as f64;
                let r = 20.0 + 25.0 * next();
                Point::new(50.0 + r * ang.cos(), 50.0 + r * ang.sin())
            })
            .collect();
        Polygon::simple(pts).unwrap()
    }

    #[test]
    fn agrees_with_linear_pip_everywhere() {
        let poly = star(200, 7);
        let bvh = EdgeBvh::build(&poly);
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..2000 {
            let p = Point::new(next() * 100.0, next() * 100.0);
            assert_eq!(
                bvh.contains_closed(p),
                poly.contains_closed(p),
                "disagree at {p}"
            );
        }
    }

    #[test]
    fn boundary_points_inside() {
        let poly = star(32, 3);
        let bvh = EdgeBvh::build(&poly);
        for v in poly.outer().vertices() {
            assert!(bvh.contains_closed(*v), "vertex {v} must be inside");
        }
        // Edge midpoints too.
        for e in poly.edges() {
            assert!(bvh.contains_closed(e.midpoint()));
        }
    }

    #[test]
    fn holes_respected() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ])
        .unwrap();
        let donut = Polygon::new(outer, vec![hole]);
        let bvh = EdgeBvh::build(&donut);
        assert!(bvh.contains_closed(Point::new(2.0, 2.0)));
        assert!(!bvh.contains_closed(Point::new(5.0, 5.0)));
        assert!(bvh.contains_closed(Point::new(4.0, 5.0))); // hole edge
        assert!(!bvh.contains_closed(Point::new(20.0, 5.0)));
    }

    #[test]
    fn visits_sublinear_edge_count() {
        // On a large polygon the ray should touch far fewer edges than
        // the total — the whole point of the acceleration structure.
        let poly = star(2048, 5);
        let bvh = EdgeBvh::build(&poly);
        let (_, _, visited) = bvh.crossings(Point::new(50.0, 50.0));
        assert!(
            (visited as usize) < poly.num_vertices() / 4,
            "visited {visited} of {} edges",
            poly.num_vertices()
        );
    }

    #[test]
    fn far_away_point_touches_almost_nothing() {
        let poly = star(512, 9);
        let bvh = EdgeBvh::build(&poly);
        let (c, ob, visited) = bvh.crossings(Point::new(50.0, 500.0));
        assert_eq!(c, 0);
        assert!(!ob);
        assert_eq!(visited, 0, "ray misses every node bbox");
    }

    #[test]
    fn tiny_polygon() {
        let tri = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        ])
        .unwrap();
        let bvh = EdgeBvh::build(&tri);
        assert_eq!(bvh.num_edges(), 3);
        assert!(bvh.contains_closed(Point::new(2.0, 1.0)));
        assert!(!bvh.contains_closed(Point::new(2.0, 4.0)));
    }
}
