//! Well-Known Text (WKT) reading and writing.
//!
//! Spatial systems the paper positions itself against (PostGIS, Oracle
//! Spatial, SQL Server) exchange geometry as WKT; a credible open-source
//! release needs the same door. Supported: `POINT`, `LINESTRING`,
//! `POLYGON` (with holes), `MULTIPOINT`, `MULTIPOLYGON`,
//! `GEOMETRYCOLLECTION` — mapped onto [`GeomObject`]s.

use crate::object::{GeomObject, Primitive};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::polyline::Polyline;

/// WKT parse errors with byte-offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WktError {
    pub message: String,
    pub offset: usize,
}

impl std::fmt::Display for WktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WKT error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WktError {}

/// Parses one WKT geometry into a [`GeomObject`].
pub fn parse_wkt(input: &str) -> Result<GeomObject, WktError> {
    let mut p = Parser::new(input);
    let obj = p.geometry()?;
    p.skip_ws();
    if !p.eof() {
        return Err(p.err("trailing characters after geometry"));
    }
    Ok(obj)
}

/// Formats a [`GeomObject`] as WKT. Single-primitive objects use the
/// plain tagged form; mixed objects become a `GEOMETRYCOLLECTION`.
pub fn to_wkt(obj: &GeomObject) -> String {
    let prims = obj.primitives();
    match prims {
        [] => "GEOMETRYCOLLECTION EMPTY".to_string(),
        [single] => primitive_wkt(single),
        many => {
            let parts: Vec<String> = many.iter().map(primitive_wkt).collect();
            format!("GEOMETRYCOLLECTION ({})", parts.join(", "))
        }
    }
}

fn primitive_wkt(p: &Primitive) -> String {
    match p {
        Primitive::Point(pt) => format!("POINT ({} {})", pt.x, pt.y),
        Primitive::Line(line) => {
            let coords: Vec<String> = line
                .vertices()
                .iter()
                .map(|v| format!("{} {}", v.x, v.y))
                .collect();
            format!("LINESTRING ({})", coords.join(", "))
        }
        Primitive::Area(poly) => {
            let ring_wkt = |r: &Ring| {
                let mut coords: Vec<String> = r
                    .vertices()
                    .iter()
                    .map(|v| format!("{} {}", v.x, v.y))
                    .collect();
                // WKT rings repeat the first coordinate last.
                coords.push(coords[0].clone());
                format!("({})", coords.join(", "))
            };
            let mut rings = vec![ring_wkt(poly.outer())];
            rings.extend(poly.holes().iter().map(ring_wkt));
            format!("POLYGON ({})", rings.join(", "))
        }
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn err(&self, message: &str) -> WktError {
        WktError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: char) -> Result<(), WktError> {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len_utf8();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{token}'")))
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_alphabetic() {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[start..self.pos].to_ascii_uppercase()
    }

    fn number(&mut self) -> Result<f64, WktError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected a number"))
    }

    fn coord(&mut self) -> Result<Point, WktError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    fn coord_list(&mut self) -> Result<Vec<Point>, WktError> {
        self.eat('(')?;
        let mut pts = vec![self.coord()?];
        loop {
            self.skip_ws();
            if self.rest().starts_with(',') {
                self.pos += 1;
                pts.push(self.coord()?);
            } else {
                break;
            }
        }
        self.eat(')')?;
        Ok(pts)
    }

    fn ring(&mut self) -> Result<Ring, WktError> {
        let pts = self.coord_list()?;
        Ring::new(pts).map_err(|e| self.err(&format!("invalid ring: {e}")))
    }

    fn polygon_body(&mut self) -> Result<Polygon, WktError> {
        self.eat('(')?;
        let outer = self.ring()?;
        let mut holes = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with(',') {
                self.pos += 1;
                holes.push(self.ring()?);
            } else {
                break;
            }
        }
        self.eat(')')?;
        Ok(Polygon::new(outer, holes))
    }

    fn geometry(&mut self) -> Result<GeomObject, WktError> {
        let tag = self.keyword();
        match tag.as_str() {
            "POINT" => {
                self.eat('(')?;
                let p = self.coord()?;
                self.eat(')')?;
                Ok(GeomObject::point(p))
            }
            "LINESTRING" => {
                let pts = self.coord_list()?;
                let line =
                    Polyline::new(pts).ok_or_else(|| self.err("linestring needs 2+ points"))?;
                Ok(GeomObject::line(line))
            }
            "POLYGON" => Ok(GeomObject::polygon(self.polygon_body()?)),
            "MULTIPOINT" => {
                self.eat('(')?;
                let mut prims = Vec::new();
                loop {
                    self.skip_ws();
                    // Coordinates may be bare or parenthesized.
                    let p = if self.rest().starts_with('(') {
                        self.eat('(')?;
                        let p = self.coord()?;
                        self.eat(')')?;
                        p
                    } else {
                        self.coord()?
                    };
                    prims.push(Primitive::Point(p));
                    self.skip_ws();
                    if self.rest().starts_with(',') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.eat(')')?;
                Ok(GeomObject::new(prims))
            }
            "MULTIPOLYGON" => {
                self.eat('(')?;
                let mut prims = Vec::new();
                loop {
                    prims.push(Primitive::Area(self.polygon_body()?));
                    self.skip_ws();
                    if self.rest().starts_with(',') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.eat(')')?;
                Ok(GeomObject::new(prims))
            }
            "GEOMETRYCOLLECTION" => {
                self.skip_ws();
                if self.rest().to_ascii_uppercase().starts_with("EMPTY") {
                    self.pos += "EMPTY".len();
                    return Ok(GeomObject::default());
                }
                self.eat('(')?;
                let mut prims = Vec::new();
                loop {
                    let inner = self.geometry()?;
                    prims.extend(inner.primitives().iter().cloned());
                    self.skip_ws();
                    if self.rest().starts_with(',') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.eat(')')?;
                Ok(GeomObject::new(prims))
            }
            other => Err(self.err(&format!("unknown geometry tag '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let obj = parse_wkt("POINT (3.5 -2)").unwrap();
        assert_eq!(obj.primitives().len(), 1);
        assert!(matches!(
            obj.primitives()[0],
            Primitive::Point(p) if p == Point::new(3.5, -2.0)
        ));
        assert_eq!(to_wkt(&obj), "POINT (3.5 -2)");
    }

    #[test]
    fn linestring_roundtrip() {
        let src = "LINESTRING (0 0, 1 1, 2 0)";
        let obj = parse_wkt(src).unwrap();
        assert_eq!(to_wkt(&obj), src);
        match &obj.primitives()[0] {
            Primitive::Line(l) => assert_eq!(l.vertices().len(), 3),
            other => panic!("expected line, got {other:?}"),
        }
    }

    #[test]
    fn polygon_with_hole() {
        let src = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))";
        let obj = parse_wkt(src).unwrap();
        match &obj.primitives()[0] {
            Primitive::Area(p) => {
                assert_eq!(p.holes().len(), 1);
                assert_eq!(p.area(), 100.0 - 4.0);
            }
            other => panic!("expected polygon, got {other:?}"),
        }
        // Round trip reparses to the same area.
        let again = parse_wkt(&to_wkt(&obj)).unwrap();
        match &again.primitives()[0] {
            Primitive::Area(p) => assert_eq!(p.area(), 96.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn multipoint_both_syntaxes() {
        for src in ["MULTIPOINT (1 2, 3 4)", "MULTIPOINT ((1 2), (3 4))"] {
            let obj = parse_wkt(src).unwrap();
            assert_eq!(obj.primitives().len(), 2, "{src}");
        }
    }

    #[test]
    fn multipolygon() {
        let src = "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)), ((5 5, 6 5, 6 6, 5 5)))";
        let obj = parse_wkt(src).unwrap();
        assert_eq!(obj.of_dim(2).count(), 2);
    }

    #[test]
    fn geometry_collection_mixed() {
        let src = "GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 2 2), POLYGON ((0 0, 3 0, 3 3, 0 0)))";
        let obj = parse_wkt(src).unwrap();
        assert_eq!(obj.of_dim(0).count(), 1);
        assert_eq!(obj.of_dim(1).count(), 1);
        assert_eq!(obj.of_dim(2).count(), 1);
        // Mixed objects print as a collection.
        assert!(to_wkt(&obj).starts_with("GEOMETRYCOLLECTION ("));
    }

    #[test]
    fn empty_collection() {
        let obj = parse_wkt("GEOMETRYCOLLECTION EMPTY").unwrap();
        assert!(obj.is_empty());
        assert_eq!(to_wkt(&obj), "GEOMETRYCOLLECTION EMPTY");
    }

    #[test]
    fn case_insensitive_and_whitespace() {
        let obj = parse_wkt("  point(1   2)  ").unwrap();
        assert!(matches!(obj.primitives()[0], Primitive::Point(_)));
    }

    #[test]
    fn scientific_notation() {
        let obj = parse_wkt("POINT (1e3 -2.5E-2)").unwrap();
        match obj.primitives()[0] {
            Primitive::Point(p) => {
                assert_eq!(p.x, 1000.0);
                assert_eq!(p.y, -0.025);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_wkt("TRIANGLE (0 0)").unwrap_err();
        assert!(e.message.contains("unknown geometry tag"));
        let e = parse_wkt("POINT 1 2").unwrap_err();
        assert!(e.message.contains("expected '('"));
        let e = parse_wkt("POINT (1 2) garbage").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_wkt("LINESTRING (1 1)").unwrap_err();
        assert!(e.message.contains("2+ points"));
        let e = parse_wkt("POLYGON ((0 0, 1 1, 2 2, 0 0))").unwrap_err();
        assert!(e.message.contains("invalid ring"));
    }
}
