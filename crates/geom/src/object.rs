//! Geometric objects: heterogeneous collections of d-primitives
//! (paper Definitions 1–3).
//!
//! A spatial record's geometry attribute is a [`GeomObject`] — any mix of
//! points (0-primitives), polylines (1-primitives) and polygons
//! (2-primitives). The canvas representation (`canvas-core`) renders each
//! primitive into the object-information row matching its dimension.

use crate::bbox::BBox;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::polyline::Polyline;
use crate::predicates::Containment;

/// One geometric primitive of dimension 0, 1 or 2 (paper Definition 2).
#[derive(Clone, Debug, PartialEq)]
pub enum Primitive {
    /// 0-primitive.
    Point(Point),
    /// 1-primitive (a piecewise-linear embedding of a line).
    Line(Polyline),
    /// 2-primitive (a polygonal region, possibly with holes).
    Area(Polygon),
}

impl Primitive {
    /// The manifold dimension `d` of the primitive.
    pub fn dim(&self) -> usize {
        match self {
            Primitive::Point(_) => 0,
            Primitive::Line(_) => 1,
            Primitive::Area(_) => 2,
        }
    }

    pub fn bbox(&self) -> BBox {
        match self {
            Primitive::Point(p) => BBox::new(*p, *p),
            Primitive::Line(l) => l.bbox(),
            Primitive::Area(a) => a.bbox(),
        }
    }

    /// True when the primitive intersects (touches) the given location —
    /// the incidence test in the canvas definition (Definition 6:
    /// `gᵢ intersects (x, y)`).
    pub fn touches(&self, p: Point) -> bool {
        match self {
            Primitive::Point(q) => *q == p,
            Primitive::Line(l) => l.segments().any(|s| s.contains(p)),
            Primitive::Area(a) => a.contains(p) != Containment::Outside,
        }
    }
}

/// A geometric object: a collection of primitives (paper Definition 1).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct GeomObject {
    primitives: Vec<Primitive>,
}

impl GeomObject {
    pub fn new(primitives: Vec<Primitive>) -> Self {
        GeomObject { primitives }
    }

    /// Object consisting of a single point.
    pub fn point(p: Point) -> Self {
        GeomObject {
            primitives: vec![Primitive::Point(p)],
        }
    }

    /// Object consisting of a single polyline.
    pub fn line(l: Polyline) -> Self {
        GeomObject {
            primitives: vec![Primitive::Line(l)],
        }
    }

    /// Object consisting of a single polygon.
    pub fn polygon(poly: Polygon) -> Self {
        GeomObject {
            primitives: vec![Primitive::Area(poly)],
        }
    }

    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    pub fn push(&mut self, p: Primitive) {
        self.primitives.push(p);
    }

    pub fn is_empty(&self) -> bool {
        self.primitives.is_empty()
    }

    /// Primitives of a given dimension.
    pub fn of_dim(&self, d: usize) -> impl Iterator<Item = &Primitive> {
        self.primitives.iter().filter(move |p| p.dim() == d)
    }

    /// Highest primitive dimension present, if any.
    pub fn max_dim(&self) -> Option<usize> {
        self.primitives.iter().map(Primitive::dim).max()
    }

    pub fn bbox(&self) -> BBox {
        self.primitives
            .iter()
            .fold(BBox::EMPTY, |b, p| b.union(&p.bbox()))
    }

    /// Dimension-wise incidence at a location: `result[d]` is true when
    /// some d-primitive of the object touches `p`. This is exactly the
    /// information a canvas stores per location (Definition 6).
    pub fn incidence(&self, p: Point) -> [bool; 3] {
        let mut out = [false; 3];
        for prim in &self.primitives {
            let d = prim.dim();
            if !out[d] && prim.touches(p) {
                out[d] = true;
            }
        }
        out
    }
}

impl From<Point> for GeomObject {
    fn from(p: Point) -> Self {
        GeomObject::point(p)
    }
}

impl From<Polygon> for GeomObject {
    fn from(p: Polygon) -> Self {
        GeomObject::polygon(p)
    }
}

impl From<Polyline> for GeomObject {
    fn from(l: Polyline) -> Self {
        GeomObject::line(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 3 object: two polygons (one with a hole)
    /// connected by a line, with a point inside the hole.
    fn figure3_object() -> GeomObject {
        use crate::polygon::Ring;
        let ellipse = Polygon::circle(Point::new(-5.0, 0.0), 2.0, 32);
        let outer = Ring::new(vec![
            Point::new(2.0, -3.0),
            Point::new(8.0, -3.0),
            Point::new(8.0, 3.0),
            Point::new(2.0, 3.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(4.0, -1.0),
            Point::new(6.0, -1.0),
            Point::new(6.0, 1.0),
            Point::new(4.0, 1.0),
        ])
        .unwrap();
        let holed = Polygon::new(outer, vec![hole]);
        let connector = Polyline::new(vec![Point::new(-3.0, 0.0), Point::new(2.0, 0.0)]).unwrap();
        let mut o = GeomObject::new(vec![]);
        o.push(Primitive::Area(ellipse));
        o.push(Primitive::Area(holed));
        o.push(Primitive::Line(connector));
        o.push(Primitive::Point(Point::new(5.0, 0.0))); // inside the hole
        o
    }

    #[test]
    fn primitive_dims() {
        let o = figure3_object();
        assert_eq!(o.of_dim(0).count(), 1);
        assert_eq!(o.of_dim(1).count(), 1);
        assert_eq!(o.of_dim(2).count(), 2);
        assert_eq!(o.max_dim(), Some(2));
    }

    #[test]
    fn incidence_rows() {
        let o = figure3_object();
        // Point in the hole: only the 0-primitive row set.
        assert_eq!(o.incidence(Point::new(5.0, 0.0)), [true, false, false]);
        // Interior of the holed polygon.
        assert_eq!(o.incidence(Point::new(3.0, 2.0)), [false, false, true]);
        // On the connecting line.
        assert_eq!(o.incidence(Point::new(0.0, 0.0)), [false, true, false]);
        // Line endpoint on polygon boundary: both rows.
        assert_eq!(o.incidence(Point::new(2.0, 0.0)), [false, true, true]);
        // Nowhere.
        assert_eq!(o.incidence(Point::new(0.0, 5.0)), [false, false, false]);
    }

    #[test]
    fn bbox_unions_all_primitives() {
        let o = figure3_object();
        let b = o.bbox();
        assert!(b.contains(Point::new(-7.0, 0.0))); // ellipse extent
        assert!(b.contains(Point::new(8.0, 3.0)));
    }

    #[test]
    fn empty_object() {
        let o = GeomObject::default();
        assert!(o.is_empty());
        assert_eq!(o.max_dim(), None);
        assert!(o.bbox().is_empty());
    }

    #[test]
    fn conversions() {
        let p: GeomObject = Point::new(1.0, 2.0).into();
        assert_eq!(p.max_dim(), Some(0));
        let poly: GeomObject = Polygon::circle(Point::ORIGIN, 1.0, 16).into();
        assert_eq!(poly.max_dim(), Some(2));
    }
}
