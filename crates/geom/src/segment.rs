//! Line segments (building blocks of the paper's 1-primitives) and
//! segment intersection.

use crate::bbox::BBox;
use crate::point::Point;
use crate::predicates::{on_segment, orientation, Orientation};

/// A closed straight-line segment between two endpoints.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    pub a: Point,
    pub b: Point,
}

/// How two segments intersect.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SegIntersection {
    /// No common point.
    None,
    /// Exactly one common point.
    Point(Point),
    /// Collinear overlap along a sub-segment (degenerate to a point when
    /// the operands merely touch end-to-end collinearly).
    Overlap(Segment),
}

impl Segment {
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// Direction vector `b - a` (not normalized).
    #[inline]
    pub fn dir(&self) -> Point {
        self.b - self.a
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_corners(self.a, self.b)
    }

    /// Point at parameter `t` along the segment (`a` at 0, `b` at 1).
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// True if `p` lies on the closed segment.
    pub fn contains(&self, p: Point) -> bool {
        on_segment(p, self.a, self.b)
    }

    /// Full intersection classification of two segments.
    pub fn intersect(&self, other: &Segment) -> SegIntersection {
        let (p, r) = (self.a, self.dir());
        let (q, s) = (other.a, other.dir());
        let rxs = r.cross(s);
        let qp = q - p;

        if orientation(self.a, self.b, other.a) == Orientation::Collinear
            && orientation(self.a, self.b, other.b) == Orientation::Collinear
        {
            // Collinear: project onto the dominant axis of r.
            let use_x = r.x.abs() >= r.y.abs();
            let key = |pt: Point| if use_x { pt.x } else { pt.y };
            let (s0, s1) = (key(self.a).min(key(self.b)), key(self.a).max(key(self.b)));
            let (o0, o1) = (
                key(other.a).min(key(other.b)),
                key(other.a).max(key(other.b)),
            );
            let lo = s0.max(o0);
            let hi = s1.min(o1);
            if lo > hi {
                return SegIntersection::None;
            }
            // Map the 1-D overlap back to points on `self`.
            let pick = |k: f64| -> Point {
                for cand in [self.a, self.b, other.a, other.b] {
                    if (key(cand) - k).abs() <= f64::EPSILON * k.abs().max(1.0) {
                        return cand;
                    }
                }
                // Degenerate segment (r ≈ 0): both endpoints coincide.
                if r.norm_sq() == 0.0 {
                    return self.a;
                }
                let t = (k - key(self.a)) / (key(self.b) - key(self.a));
                self.at(t)
            };
            let lo_p = pick(lo);
            let hi_p = pick(hi);
            return if lo_p == hi_p {
                SegIntersection::Point(lo_p)
            } else {
                SegIntersection::Overlap(Segment::new(lo_p, hi_p))
            };
        }

        if rxs == 0.0 {
            // Parallel and not collinear.
            return SegIntersection::None;
        }

        let t = qp.cross(s) / rxs;
        let u = qp.cross(r) / rxs;
        let tol = 1e-12;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            SegIntersection::Point(self.at(t.clamp(0.0, 1.0)))
        } else {
            SegIntersection::None
        }
    }

    /// True when the two segments share at least one point.
    pub fn intersects(&self, other: &Segment) -> bool {
        !matches!(self.intersect(other), SegIntersection::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
    }

    #[test]
    fn crossing_segments() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let s2 = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        match s1.intersect(&s2) {
            SegIntersection::Point(p) => assert_eq!(p, Point::new(1.0, 1.0)),
            other => panic!("expected point intersection, got {other:?}"),
        }
    }

    #[test]
    fn touching_at_endpoint() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let s2 = Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 0.0));
        match s1.intersect(&s2) {
            SegIntersection::Point(p) => assert_eq!(p, Point::new(1.0, 1.0)),
            other => panic!("expected endpoint touch, got {other:?}"),
        }
    }

    #[test]
    fn parallel_disjoint() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s1.intersect(&s2), SegIntersection::None);
    }

    #[test]
    fn collinear_overlap() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let s2 = Segment::new(Point::new(1.0, 0.0), Point::new(3.0, 0.0));
        match s1.intersect(&s2) {
            SegIntersection::Overlap(o) => {
                assert_eq!(o.a, Point::new(1.0, 0.0));
                assert_eq!(o.b, Point::new(2.0, 0.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_touch_is_point() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(1.0, 0.0), Point::new(2.0, 0.0));
        match s1.intersect(&s2) {
            SegIntersection::Point(p) => assert_eq!(p, Point::new(1.0, 0.0)),
            other => panic!("expected point touch, got {other:?}"),
        }
    }

    #[test]
    fn collinear_disjoint() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, 0.0), Point::new(3.0, 0.0));
        assert_eq!(s1.intersect(&s2), SegIntersection::None);
    }

    #[test]
    fn near_miss() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(0.5, 0.1), Point::new(0.5, 1.0));
        assert_eq!(s1.intersect(&s2), SegIntersection::None);
    }

    #[test]
    fn vertical_crossing() {
        let s1 = Segment::new(Point::new(1.0, -1.0), Point::new(1.0, 1.0));
        let s2 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        match s1.intersect(&s2) {
            SegIntersection::Point(p) => assert_eq!(p, Point::new(1.0, 0.0)),
            other => panic!("expected crossing, got {other:?}"),
        }
    }

    #[test]
    fn contains_endpoint_and_interior() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(s.contains(s.a));
        assert!(s.contains(s.b));
        assert!(s.contains(Point::new(1.0, 1.0)));
        assert!(!s.contains(Point::new(1.0, 1.5)));
    }
}
