//! Axis-aligned bounding boxes (MBRs).

use crate::point::Point;

/// An axis-aligned bounding box / minimum bounding rectangle.
///
/// The empty box is represented with inverted bounds so that `union` with
/// any point or box behaves as identity-seeded accumulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BBox {
    pub min: Point,
    pub max: Point,
}

impl BBox {
    /// The empty box: `union`-identity, contains nothing.
    pub const EMPTY: BBox = BBox {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    pub fn new(min: Point, max: Point) -> Self {
        BBox { min, max }
    }

    /// Box from two arbitrary corner points (any diagonal).
    pub fn from_corners(a: Point, b: Point) -> Self {
        BBox {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Smallest box covering all points in the iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        points
            .into_iter()
            .fold(BBox::EMPTY, |b, p| b.union_point(p))
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
        )
    }

    /// Closed containment test (boundary counts as inside).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if `other` lies fully inside `self` (closed).
    pub fn contains_box(&self, other: &BBox) -> bool {
        !other.is_empty() && self.contains(other.min) && self.contains(other.max)
    }

    /// Closed intersection test.
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min.x > other.max.x
            || other.min.x > self.max.x
            || self.min.y > other.max.y
            || other.min.y > self.max.y)
    }

    /// Smallest box covering both operands.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Smallest box covering `self` and `p`.
    pub fn union_point(&self, p: Point) -> BBox {
        BBox {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Intersection box; empty if the boxes do not overlap.
    pub fn intersection(&self, other: &BBox) -> BBox {
        let b = BBox {
            min: self.min.max(other.min),
            max: self.max.min(other.max),
        };
        if b.is_empty() {
            BBox::EMPTY
        } else {
            b
        }
    }

    /// Box grown by `margin` on every side (shrunk when negative).
    pub fn inflated(&self, margin: f64) -> BBox {
        if self.is_empty() {
            return *self;
        }
        let m = Point::new(margin, margin);
        let b = BBox {
            min: self.min - m,
            max: self.max + m,
        };
        if b.is_empty() {
            BBox::EMPTY
        } else {
            b
        }
    }

    /// The four corner points, counter-clockwise from `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }
}

impl Default for BBox {
    fn default() -> Self {
        BBox::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn empty_box_properties() {
        let e = BBox::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point::ORIGIN));
        assert!(!e.intersects(&unit()));
    }

    #[test]
    fn from_corners_normalizes() {
        let b = BBox::from_corners(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
        assert_eq!(b, unit());
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(0.5, 0.5),
            Point::new(-1.0, 2.0),
            Point::new(3.0, -2.0),
        ];
        let b = BBox::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point::new(-1.0, -2.0));
        assert_eq!(b.max, Point::new(3.0, 2.0));
    }

    #[test]
    fn containment_is_closed() {
        let b = unit();
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(1.0, 1.0)));
        assert!(b.contains(Point::new(0.5, 0.5)));
        assert!(!b.contains(Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn intersection_and_union() {
        let a = unit();
        let b = BBox::new(Point::new(0.5, 0.5), Point::new(2.0, 2.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b);
        assert_eq!(i, BBox::new(Point::new(0.5, 0.5), Point::new(1.0, 1.0)));
        let u = a.union(&b);
        assert_eq!(u, BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)));
    }

    #[test]
    fn disjoint_boxes() {
        let a = unit();
        let b = BBox::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = unit();
        let b = BBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b);
        assert_eq!(i.width(), 0.0);
        assert!(!i.is_empty());
    }

    #[test]
    fn inflation() {
        let b = unit().inflated(1.0);
        assert_eq!(b, BBox::new(Point::new(-1.0, -1.0), Point::new(2.0, 2.0)));
        let shrunk = unit().inflated(-0.6);
        assert!(shrunk.is_empty());
    }

    #[test]
    fn corners_ccw() {
        let c = unit().corners();
        assert_eq!(c[0], Point::new(0.0, 0.0));
        assert_eq!(c[1], Point::new(1.0, 0.0));
        assert_eq!(c[2], Point::new(1.0, 1.0));
        assert_eq!(c[3], Point::new(0.0, 1.0));
    }

    #[test]
    fn contains_box_nested() {
        let outer = unit();
        let inner = BBox::new(Point::new(0.25, 0.25), Point::new(0.75, 0.75));
        assert!(outer.contains_box(&inner));
        assert!(!inner.contains_box(&outer));
        assert!(!outer.contains_box(&BBox::EMPTY));
    }
}
