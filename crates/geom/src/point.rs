//! 2-D points (the paper's 0-primitives) and vector arithmetic.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point in `R²`, also used as a 2-D vector.
///
/// This is the paper's 0-dimensional geometric primitive (Definition 2)
/// and the coordinate type for every other primitive.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Dot product, treating both points as vectors.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z component of the 3-D cross product of the two vectors;
    /// positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm — preferred in hot paths to avoid `sqrt`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Point> {
        let n = self.norm();
        if n == 0.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// Point rotated by `angle` radians around the origin.
    pub fn rotated(self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// True when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norms_and_distance() {
        let a = Point::new(3.0, 4.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Point::ORIGIN.dist(a), 5.0);
        assert_eq!(Point::ORIGIN.dist_sq(a), 25.0);
    }

    #[test]
    fn normalization() {
        let a = Point::new(0.0, 10.0);
        assert_eq!(a.normalized(), Some(Point::new(0.0, 1.0)));
        assert_eq!(Point::ORIGIN.normalized(), None);
    }

    #[test]
    fn rotation() {
        let a = Point::new(1.0, 0.0);
        let r = a.rotated(std::f64::consts::FRAC_PI_2);
        assert!(approx_eq(r.x, 0.0));
        assert!(approx_eq(r.y, 1.0));
        let p = a.perp();
        assert_eq!(p, Point::new(0.0, 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min(b), Point::new(1.0, 2.0));
        assert_eq!(a.max(b), Point::new(3.0, 5.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
