//! Ear-clipping triangulation of polygons (holes handled by bridging).
//!
//! The software graphics pipeline (`canvas-raster`) draws polygons the way
//! a GPU does: as triangles. This module converts a [`Polygon`] into a
//! triangle fan-out equivalent in area and coverage.
//!
//! * simple polygons: classic `O(n²)` ear clipping,
//! * polygons with holes: each hole is merged into the outer ring with a
//!   *bridge* (two coincident edges) between its rightmost vertex and a
//!   mutually visible outer vertex, then the merged ring is ear-clipped.
//!   (The paper's prototype instead negates hole pixels after filling the
//!   outer ring — `canvas-raster::fill` implements that strategy too; the
//!   triangulation path is used by the triangle-pipeline draw calls.)

use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::predicates::{orientation, Orientation};

/// A triangle given by its three corner points.
pub type Triangle = [Point; 3];

/// Triangulates an arbitrary polygon (with holes) into triangles.
///
/// Returns an empty vector only for degenerate input (which [`Ring`]
/// construction already prevents).
pub fn triangulate_polygon(poly: &Polygon) -> Vec<Triangle> {
    if poly.holes().is_empty() {
        triangulate_ring(poly.outer().vertices())
    } else {
        let merged = merge_holes(poly);
        triangulate_ring(&merged)
    }
}

/// Triangulates a simple CCW ring by ear clipping.
pub fn triangulate_ring(ring: &[Point]) -> Vec<Triangle> {
    let n = ring.len();
    if n < 3 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(n.saturating_sub(2));
    let mut guard = 0usize;
    while idx.len() > 3 {
        let m = idx.len();
        let mut clipped = false;
        for i in 0..m {
            let prev = ring[idx[(i + m - 1) % m]];
            let cur = ring[idx[i]];
            let next = ring[idx[(i + 1) % m]];
            if !is_ear(prev, cur, next, ring, &idx) {
                continue;
            }
            out.push([prev, cur, next]);
            idx.remove(i);
            clipped = true;
            break;
        }
        if !clipped {
            // Numerically stuck (e.g. collinear runs): drop the most
            // collinear vertex and continue rather than looping forever.
            let m = idx.len();
            let mut worst = 0usize;
            let mut worst_area = f64::INFINITY;
            for i in 0..m {
                let a = ring[idx[(i + m - 1) % m]];
                let b = ring[idx[i]];
                let c = ring[idx[(i + 1) % m]];
                let area = (b - a).cross(c - a).abs();
                if area < worst_area {
                    worst_area = area;
                    worst = i;
                }
            }
            idx.remove(worst);
        }
        guard += 1;
        if guard > 4 * n + 16 {
            break; // defensive: never hang on adversarial input
        }
    }
    if idx.len() == 3 {
        let tri = [ring[idx[0]], ring[idx[1]], ring[idx[2]]];
        if (tri[1] - tri[0]).cross(tri[2] - tri[0]) != 0.0 {
            out.push(tri);
        }
    }
    out
}

fn is_ear(prev: Point, cur: Point, next: Point, ring: &[Point], idx: &[usize]) -> bool {
    // Convex corner in a CCW ring.
    if orientation(prev, cur, next) != Orientation::CounterClockwise {
        return false;
    }
    // No remaining vertex strictly inside the candidate ear.
    for &j in idx {
        let p = ring[j];
        if p == prev || p == cur || p == next {
            continue;
        }
        if point_strictly_in_triangle(p, prev, cur, next) {
            return false;
        }
    }
    true
}

/// Strict interior test (boundary excluded) used for the ear condition.
fn point_strictly_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool {
    let d1 = (b - a).cross(p - a);
    let d2 = (c - b).cross(p - b);
    let d3 = (a - c).cross(p - c);
    d1 > 0.0 && d2 > 0.0 && d3 > 0.0
}

/// Inclusive (closed) point-in-triangle test — exposed for the rasterizer
/// tests and coverage checks.
pub fn point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool {
    let d1 = (b - a).cross(p - a);
    let d2 = (c - b).cross(p - b);
    let d3 = (a - c).cross(p - c);
    let has_neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
    let has_pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
    !(has_neg && has_pos)
}

/// Total signed area of a triangle list (for area-preservation checks).
pub fn triangles_area(tris: &[Triangle]) -> f64 {
    tris.iter()
        .map(|t| 0.5 * (t[1] - t[0]).cross(t[2] - t[0]))
        .sum()
}

/// Merges all holes of the polygon into a single ring with bridge edges.
///
/// Holes are inserted in decreasing order of their rightmost x-coordinate
/// so later bridges cannot cross earlier ones (standard ear-clipping
/// pre-pass).
fn merge_holes(poly: &Polygon) -> Vec<Point> {
    let mut outer: Vec<Point> = poly.outer().vertices().to_vec();
    let mut holes: Vec<&Ring> = poly.holes().iter().collect();
    holes.sort_by(|a, b| {
        let ax = a.vertices().iter().map(|p| p.x).fold(f64::MIN, f64::max);
        let bx = b.vertices().iter().map(|p| p.x).fold(f64::MIN, f64::max);
        bx.partial_cmp(&ax).unwrap_or(std::cmp::Ordering::Equal)
    });
    for hole in holes {
        // Hole vertices must wind CW inside a CCW outer ring.
        let mut hv: Vec<Point> = hole.vertices().to_vec();
        hv.reverse();
        outer = splice_hole(&outer, &hv);
    }
    outer
}

/// Connects `hole` (CW) into `outer` (CCW) with a bridge at the hole's
/// rightmost vertex and returns the merged ring.
fn splice_hole(outer: &[Point], hole: &[Point]) -> Vec<Point> {
    // Rightmost hole vertex.
    let hi = hole
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.x.partial_cmp(&b.x).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0);
    let h = hole[hi];

    // Candidate outer vertices sorted by distance to h; take the first
    // one mutually visible from h.
    let mut candidates: Vec<usize> = (0..outer.len()).collect();
    candidates.sort_by(|&a, &b| {
        outer[a]
            .dist_sq(h)
            .partial_cmp(&outer[b].dist_sq(h))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let vis = candidates
        .into_iter()
        .find(|&vi| visible(h, outer[vi], outer, hole))
        .unwrap_or(0);

    // outer[..=vis] ++ hole[hi..] ++ hole[..=hi] ++ outer[vis..]
    let mut merged = Vec::with_capacity(outer.len() + hole.len() + 2);
    merged.extend_from_slice(&outer[..=vis]);
    merged.extend(hole.iter().cycle().skip(hi).take(hole.len() + 1));
    merged.extend_from_slice(&outer[vis..]);
    merged
}

/// Mutual visibility: the open segment `a..b` crosses no edge of the
/// outer ring or the hole (edges incident to either endpoint excluded).
fn visible(a: Point, b: Point, outer: &[Point], hole: &[Point]) -> bool {
    let blocked = |ring: &[Point]| -> bool {
        let n = ring.len();
        for i in 0..n {
            let p = ring[i];
            let q = ring[(i + 1) % n];
            if p == a || q == a || p == b || q == b {
                continue;
            }
            if segments_properly_cross(a, b, p, q) {
                return true;
            }
        }
        false
    };
    !blocked(outer) && !blocked(hole)
}

fn segments_properly_cross(a: Point, b: Point, c: Point, d: Point) -> bool {
    let o1 = orientation(a, b, c);
    let o2 = orientation(a, b, d);
    let o3 = orientation(c, d, a);
    let o4 = orientation(c, d, b);
    o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn square(side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(side, 0.0),
            Point::new(side, side),
            Point::new(0.0, side),
        ])
        .unwrap()
    }

    #[test]
    fn triangle_passthrough() {
        let t = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap();
        let tris = triangulate_polygon(&t);
        assert_eq!(tris.len(), 1);
        assert!(approx_eq(triangles_area(&tris), 0.5));
    }

    #[test]
    fn square_two_triangles() {
        let tris = triangulate_polygon(&square(2.0));
        assert_eq!(tris.len(), 2);
        assert!(approx_eq(triangles_area(&tris), 4.0));
    }

    #[test]
    fn concave_polygon_area_preserved() {
        let l = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        let tris = triangulate_polygon(&l);
        assert_eq!(tris.len(), 4); // n-2
        assert!(approx_eq(triangles_area(&tris), l.area()));
        // Notch point must not be covered.
        assert!(!tris
            .iter()
            .any(|t| point_in_triangle(Point::new(3.0, 3.0), t[0], t[1], t[2])));
    }

    #[test]
    fn star_polygon() {
        // 5-pointed star (concave at every other vertex).
        let mut verts = Vec::new();
        for i in 0..10 {
            let ang = std::f64::consts::TAU * i as f64 / 10.0;
            let r = if i % 2 == 0 { 2.0 } else { 0.8 };
            verts.push(Point::new(r * ang.cos(), r * ang.sin()));
        }
        let star = Polygon::simple(verts).unwrap();
        let tris = triangulate_polygon(&star);
        assert_eq!(tris.len(), 8);
        assert!(approx_eq(triangles_area(&tris), star.area()));
    }

    #[test]
    fn donut_triangulation() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ])
        .unwrap();
        let donut = Polygon::new(outer, vec![hole]);
        let tris = triangulate_polygon(&donut);
        assert!(approx_eq(triangles_area(&tris), donut.area()));
        // Hole center is uncovered, ring interior is covered.
        let in_hole = Point::new(5.0, 5.0);
        assert!(!tris
            .iter()
            .any(|t| point_strictly_in_triangle(in_hole, t[0], t[1], t[2])));
        let in_ring = Point::new(1.0, 1.0);
        assert!(tris
            .iter()
            .any(|t| point_in_triangle(in_ring, t[0], t[1], t[2])));
    }

    #[test]
    fn two_holes() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(12.0, 0.0),
            Point::new(12.0, 6.0),
            Point::new(0.0, 6.0),
        ])
        .unwrap();
        let h1 = Ring::new(vec![
            Point::new(2.0, 2.0),
            Point::new(4.0, 2.0),
            Point::new(4.0, 4.0),
            Point::new(2.0, 4.0),
        ])
        .unwrap();
        let h2 = Ring::new(vec![
            Point::new(8.0, 2.0),
            Point::new(10.0, 2.0),
            Point::new(10.0, 4.0),
            Point::new(8.0, 4.0),
        ])
        .unwrap();
        let poly = Polygon::new(outer, vec![h1, h2]);
        let tris = triangulate_polygon(&poly);
        assert!(approx_eq(triangles_area(&tris), poly.area()));
        for hole_center in [Point::new(3.0, 3.0), Point::new(9.0, 3.0)] {
            assert!(!tris.iter().any(|t| point_strictly_in_triangle(
                hole_center,
                t[0],
                t[1],
                t[2]
            )));
        }
    }

    #[test]
    fn triangle_count_invariant_simple() {
        // Simple polygon with n vertices yields exactly n-2 triangles.
        for n in 3..=12 {
            let poly = Polygon::circle(Point::ORIGIN, 1.0, n);
            let tris = triangulate_polygon(&poly);
            assert_eq!(tris.len(), poly.outer().len() - 2, "n = {n}");
        }
    }
}
