//! Ramer–Douglas–Peucker simplification for polylines and polygon rings.
//!
//! Figure 10 of the paper shows the PIP baselines paying linearly in
//! polygon vertex count; real systems therefore simplify geometry when
//! approximate constraints suffice. This is the standard tolerance-bound
//! simplifier: every removed vertex lies within `epsilon` of the
//! simplified chain.

use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::polyline::Polyline;
use crate::segment::Segment;

/// Simplifies an open chain, keeping endpoints. `epsilon` is the maximum
/// allowed perpendicular deviation.
pub fn simplify_chain(points: &[Point], epsilon: f64) -> Vec<Point> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    keep[points.len() - 1] = true;
    rdp(points, 0, points.len() - 1, epsilon.max(0.0), &mut keep);
    points
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect()
}

fn rdp(points: &[Point], lo: usize, hi: usize, epsilon: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let seg = Segment::new(points[lo], points[hi]);
    let (mut worst, mut worst_d) = (lo, -1.0f64);
    for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
        let d = crate::distance::point_segment_dist(*p, &seg);
        if d > worst_d {
            worst_d = d;
            worst = i;
        }
    }
    if worst_d > epsilon {
        keep[worst] = true;
        rdp(points, lo, worst, epsilon, keep);
        rdp(points, worst, hi, epsilon, keep);
    }
}

/// Simplifies a polyline (endpoints preserved).
pub fn simplify_polyline(line: &Polyline, epsilon: f64) -> Polyline {
    Polyline::new(simplify_chain(line.vertices(), epsilon)).unwrap_or_else(|| line.clone())
}

/// Simplifies a polygon's rings. The ring is treated as a closed chain
/// anchored at its two extreme vertices so no "endpoint" bias appears;
/// rings that would collapse below 3 vertices (or holes below the
/// tolerance scale) are dropped for holes / kept unsimplified for the
/// outer ring.
pub fn simplify_polygon(poly: &Polygon, epsilon: f64) -> Polygon {
    let outer = simplify_ring(poly.outer(), epsilon).unwrap_or_else(|| poly.outer().clone());
    let holes = poly
        .holes()
        .iter()
        .filter_map(|h| simplify_ring(h, epsilon))
        .collect();
    Polygon::new(outer, holes)
}

fn simplify_ring(ring: &Ring, epsilon: f64) -> Option<Ring> {
    let verts = ring.vertices();
    let n = verts.len();
    if n <= 4 {
        return Some(ring.clone());
    }
    // Anchor at the two x-extreme vertices and simplify the two halves.
    let (imin, imax) = {
        let mut imin = 0;
        let mut imax = 0;
        for (i, v) in verts.iter().enumerate() {
            if v.x < verts[imin].x {
                imin = i;
            }
            if v.x > verts[imax].x {
                imax = i;
            }
        }
        (imin.min(imax), imin.max(imax))
    };
    if imin == imax {
        return Some(ring.clone());
    }
    let first: Vec<Point> = verts[imin..=imax].to_vec();
    let second: Vec<Point> = verts[imax..]
        .iter()
        .chain(verts[..=imin].iter())
        .copied()
        .collect();
    let mut out = simplify_chain(&first, epsilon);
    let back = simplify_chain(&second, epsilon);
    out.extend_from_slice(&back[1..back.len().saturating_sub(1)]);
    Ring::new(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collinear_chain_collapses_to_endpoints() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, 0.0)).collect();
        let s = simplify_chain(&pts, 0.01);
        assert_eq!(s, vec![Point::new(0.0, 0.0), Point::new(9.0, 0.0)]);
    }

    #[test]
    fn significant_corners_kept() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 2.6),  // ~0.09 off the (0,0)→(10,5) chord
            Point::new(10.0, 5.0), // real corner
            Point::new(20.0, 5.1),
        ];
        let s = simplify_chain(&pts, 0.5);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&Point::new(10.0, 5.0)));
        assert!(!s.contains(&Point::new(5.0, 2.6)));
    }

    #[test]
    fn tolerance_bound_holds() {
        // Every dropped vertex is within epsilon of the simplified chain.
        let mut state = 5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..200)
            .map(|i| Point::new(i as f64, 10.0 * next()))
            .collect();
        let eps = 2.0;
        let s = simplify_chain(&pts, eps);
        let chain = Polyline::new(s.clone()).unwrap();
        for p in &pts {
            let d = crate::distance::point_polyline_dist(*p, &chain);
            assert!(d <= eps + 1e-9, "vertex {p} deviates {d}");
        }
        assert!(s.len() < pts.len());
    }

    #[test]
    fn polyline_simplification() {
        let line = Polyline::new(
            (0..50)
                .map(|i| Point::new(i as f64, (i as f64 * 0.3).sin() * 0.05))
                .collect(),
        )
        .unwrap();
        let s = simplify_polyline(&line, 0.2);
        assert_eq!(s.vertices().len(), 2, "near-straight line collapses");
    }

    #[test]
    fn polygon_simplification_preserves_shape_coarsely() {
        // A circle with 256 vertices simplified at 1% radius keeps the
        // area within a few percent with far fewer vertices.
        let poly = Polygon::circle(Point::new(0.0, 0.0), 10.0, 256);
        let s = simplify_polygon(&poly, 0.1);
        assert!(s.num_vertices() < 64, "got {}", s.num_vertices());
        let err = (s.area() - poly.area()).abs() / poly.area();
        assert!(err < 0.05, "area error {err}");
    }

    #[test]
    fn tiny_rings_untouched() {
        let tri = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
        ])
        .unwrap();
        let s = simplify_polygon(&tri, 10.0);
        assert_eq!(s.num_vertices(), 3);
    }

    #[test]
    fn zero_epsilon_is_identity_for_chains() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
        ];
        let s = simplify_chain(&pts, 0.0);
        assert_eq!(s, pts);
    }
}
