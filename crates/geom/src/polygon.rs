//! Polygons with holes — the paper's 2-primitives.
//!
//! A [`Polygon`] is one outer [`Ring`] plus zero or more hole rings, the
//! exact shape class the paper's prototype renders ("to handle polygons
//! with holes, the outer polygon is first drawn ... the inner polygon is
//! then drawn such that the pixels corresponding to it are negated").

use crate::bbox::BBox;
use crate::point::Point;
use crate::predicates::{point_in_ring, signed_area, Containment};
use crate::segment::Segment;

/// A simple closed ring of at least three vertices, stored without a
/// repeated closing vertex and normalized to counter-clockwise winding.
#[derive(Clone, Debug, PartialEq)]
pub struct Ring {
    vertices: Vec<Point>,
}

/// Errors from polygon construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three distinct vertices.
    TooFewVertices,
    /// The ring has (numerically) zero area.
    ZeroArea,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "ring needs at least 3 vertices"),
            PolygonError::ZeroArea => write!(f, "ring has zero area"),
        }
    }
}

impl std::error::Error for PolygonError {}

impl Ring {
    /// Builds a ring, dropping a repeated closing vertex if present and
    /// normalizing winding to counter-clockwise.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() >= 2 && vertices.first() == vertices.last() {
            vertices.pop();
        }
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        let area = signed_area(&vertices);
        if area == 0.0 {
            return Err(PolygonError::ZeroArea);
        }
        if area < 0.0 {
            vertices.reverse();
        }
        Ok(Ring { vertices })
    }

    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    pub fn is_empty(&self) -> bool {
        false // by construction a ring has >= 3 vertices
    }

    /// Area (always positive after normalization).
    pub fn area(&self) -> f64 {
        signed_area(&self.vertices)
    }

    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.vertices.iter().copied())
    }

    /// Iterator over the boundary edges (closing edge included).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Three-way containment of a point.
    pub fn contains(&self, p: Point) -> Containment {
        point_in_ring(p, &self.vertices)
    }

    /// Area centroid of the ring.
    pub fn centroid(&self) -> Point {
        let a = self.area();
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }
}

/// A polygonal region: one outer ring minus the union of its hole rings.
#[derive(Clone, Debug, PartialEq)]
pub struct Polygon {
    outer: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    pub fn new(outer: Ring, holes: Vec<Ring>) -> Self {
        Polygon { outer, holes }
    }

    /// Convenience: polygon with no holes from raw vertices.
    pub fn simple(vertices: Vec<Point>) -> Result<Self, PolygonError> {
        Ok(Polygon {
            outer: Ring::new(vertices)?,
            holes: Vec::new(),
        })
    }

    /// Axis-aligned rectangle polygon.
    pub fn rect(b: &BBox) -> Self {
        Polygon::simple(b.corners().to_vec()).expect("non-degenerate bbox")
    }

    /// Regular polygon approximating a circle (used by the `Circ` utility
    /// operator; the paper renders circles as polygons too).
    pub fn circle(center: Point, radius: f64, segments: usize) -> Self {
        let n = segments.max(8);
        let verts = (0..n)
            .map(|i| {
                let t = (i as f64 / n as f64) * std::f64::consts::TAU;
                center + Point::new(t.cos(), t.sin()) * radius
            })
            .collect();
        Polygon::simple(verts).expect("circle with positive radius")
    }

    pub fn outer(&self) -> &Ring {
        &self.outer
    }

    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Total vertex count across all rings (the paper's polygon
    /// "complexity" knob in Figure 10).
    pub fn num_vertices(&self) -> usize {
        self.outer.len() + self.holes.iter().map(Ring::len).sum::<usize>()
    }

    /// Area of the region (outer minus holes).
    pub fn area(&self) -> f64 {
        self.outer.area() - self.holes.iter().map(Ring::area).sum::<f64>()
    }

    pub fn bbox(&self) -> BBox {
        self.outer.bbox()
    }

    /// Iterator over every boundary edge (outer ring and holes).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.outer
            .edges()
            .chain(self.holes.iter().flat_map(|h| h.edges()))
    }

    /// Three-way containment of a point in the holed region.
    pub fn contains(&self, p: Point) -> Containment {
        match self.outer.contains(p) {
            Containment::Outside => Containment::Outside,
            Containment::OnBoundary => Containment::OnBoundary,
            Containment::Inside => {
                for hole in &self.holes {
                    match hole.contains(p) {
                        Containment::Inside => return Containment::Outside,
                        Containment::OnBoundary => return Containment::OnBoundary,
                        Containment::Outside => {}
                    }
                }
                Containment::Inside
            }
        }
    }

    /// Closed point-in-polygon test (boundary counts as inside) — the
    /// paper's `Location INSIDE Q` predicate.
    #[inline]
    pub fn contains_closed(&self, p: Point) -> bool {
        self.contains(p).is_inside_closed()
    }

    /// True when the two polygonal regions share at least one point —
    /// the paper's `Geometry INTERSECTS Q` predicate.
    ///
    /// Two regions intersect iff boundaries cross, or one contains a
    /// vertex (representative point) of the other.
    pub fn intersects(&self, other: &Polygon) -> bool {
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        // Boundary crossing.
        for e in self.edges() {
            for f in other.edges() {
                if e.intersects(&f) {
                    return true;
                }
            }
        }
        // Full containment either way: any representative vertex decides.
        self.contains_closed(other.outer.vertices()[0])
            || other.contains_closed(self.outer.vertices()[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(side, 0.0),
            Point::new(side, side),
            Point::new(0.0, side),
        ])
        .unwrap()
    }

    fn donut() -> Polygon {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ])
        .unwrap();
        Polygon::new(outer, vec![hole])
    }

    #[test]
    fn ring_construction_errors() {
        assert_eq!(
            Ring::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        assert_eq!(
            Ring::new(vec![
                Point::ORIGIN,
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0)
            ]),
            Err(PolygonError::ZeroArea)
        );
    }

    #[test]
    fn ring_closing_vertex_dropped() {
        let r = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ])
        .unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn winding_normalized() {
        let cw = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(cw.area() > 0.0);
    }

    #[test]
    fn square_metrics() {
        let sq = square(4.0);
        assert_eq!(sq.area(), 16.0);
        assert_eq!(sq.outer().perimeter(), 16.0);
        let c = sq.outer().centroid();
        assert!((c.x - 2.0).abs() < 1e-12 && (c.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn donut_area_and_containment() {
        let d = donut();
        assert_eq!(d.area(), 100.0 - 4.0);
        assert_eq!(d.contains(Point::new(1.0, 1.0)), Containment::Inside);
        assert_eq!(d.contains(Point::new(5.0, 5.0)), Containment::Outside); // in hole
        assert_eq!(d.contains(Point::new(4.0, 5.0)), Containment::OnBoundary); // hole edge
        assert_eq!(d.contains(Point::new(0.0, 5.0)), Containment::OnBoundary); // outer edge
        assert_eq!(d.contains(Point::new(20.0, 5.0)), Containment::Outside);
    }

    #[test]
    fn circle_polygon() {
        let c = Polygon::circle(Point::new(1.0, 1.0), 2.0, 128);
        // Area converges to pi*r^2 from below.
        let expect = std::f64::consts::PI * 4.0;
        assert!((c.area() - expect).abs() / expect < 0.01);
        assert!(c.contains_closed(Point::new(1.0, 1.0)));
        assert!(!c.contains_closed(Point::new(4.0, 4.0)));
    }

    #[test]
    fn polygon_intersects_overlapping() {
        let a = square(4.0);
        let b = Polygon::simple(vec![
            Point::new(2.0, 2.0),
            Point::new(6.0, 2.0),
            Point::new(6.0, 6.0),
            Point::new(2.0, 6.0),
        ])
        .unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn polygon_intersects_containment() {
        let big = square(10.0);
        let small = Polygon::simple(vec![
            Point::new(4.0, 4.0),
            Point::new(5.0, 4.0),
            Point::new(5.0, 5.0),
            Point::new(4.0, 5.0),
        ])
        .unwrap();
        // No edge crossings, but contained => intersects.
        assert!(big.intersects(&small));
        assert!(small.intersects(&big));
    }

    #[test]
    fn polygon_disjoint() {
        let a = square(1.0);
        let b = Polygon::simple(vec![
            Point::new(5.0, 5.0),
            Point::new(6.0, 5.0),
            Point::new(6.0, 6.0),
            Point::new(5.0, 6.0),
        ])
        .unwrap();
        assert!(!a.intersects(&b));
    }

    #[test]
    fn rect_helper() {
        let b = BBox::new(Point::new(1.0, 2.0), Point::new(3.0, 5.0));
        let r = Polygon::rect(&b);
        assert_eq!(r.area(), 6.0);
        assert!(r.contains_closed(Point::new(2.0, 3.0)));
    }

    #[test]
    fn num_vertices_counts_holes() {
        assert_eq!(donut().num_vertices(), 8);
        assert_eq!(square(1.0).num_vertices(), 4);
    }
}
