//! # canvas-geom
//!
//! Geometry substrate for the canvas algebra reproduction of
//! *"A GPU-friendly Geometric Data Model and Algebra for Spatial Queries"*
//! (Doraiswamy & Freire, SIGMOD 2020).
//!
//! The paper models spatial data as *geometric objects*: sets of
//! *d-primitives* with `d ∈ {0, 1, 2}` (points, lines, areas). This crate
//! provides those primitive types plus every exact-geometry algorithm the
//! rest of the system needs:
//!
//! * primitives: [`Point`], [`Segment`], [`Polyline`], [`Polygon`]
//!   (outer ring + holes), [`GeomObject`] (heterogeneous primitive sets),
//! * robust-enough predicates: orientation, point-in-polygon (crossing and
//!   winding number), segment intersection, distances,
//! * algorithms: ear-clipping triangulation (with hole bridging), convex
//!   hull, Sutherland–Hodgman clipping,
//! * spatial indexes used by the *baseline* approaches and join filters:
//!   a uniform [`grid::GridIndex`] and an STR-packed [`rtree::RTree`].
//!
//! Everything here is pure CPU vector geometry; the GPU-friendly raster
//! representation lives in `canvas-raster` / `canvas-core`.

pub mod bbox;
pub mod bvh;
pub mod clip;
pub mod distance;
pub mod grid;
pub mod hull;
pub mod object;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod predicates;
pub mod rtree;
pub mod segment;
pub mod simplify;
pub mod triangulate;
pub mod wkt;

pub use bbox::BBox;
pub use grid::{GridGeometry, GridIndex, GridIndexBuilder, VisitedMask};
pub use object::{GeomObject, Primitive};
pub use point::Point;
pub use polygon::{Polygon, Ring};
pub use polyline::Polyline;
pub use predicates::{orientation, Containment, Orientation};
pub use segment::Segment;

/// Geometric tolerance used when comparing derived floating point
/// quantities (areas, distances, intersection parameters).
///
/// Raw coordinates are compared exactly; only *derived* values go through
/// epsilon comparison. Chosen conservatively for coordinates in roughly
/// `[-1e7, 1e7]` (Web-Mercator-sized extents).
pub const EPS: f64 = 1e-9;

/// Returns true if two derived floating point quantities are equal within
/// [`EPS`] scaled by their magnitude.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= EPS * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(1e7, 1e7 + 1e-3));
    }
}
