//! Exact-ish geometric predicates: orientation, collinearity,
//! point-in-polygon (crossing number and winding number), containment
//! classification.
//!
//! These are the kernels used by the CPU baselines (the paper's
//! refinement step) and by the canvas mask operator's boundary-pixel
//! refinement (paper Section 5: the "hybrid representation" that keeps
//! results exact).

use crate::point::Point;
use crate::EPS;

/// Result of the orientation test for an ordered point triple.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    CounterClockwise,
    Clockwise,
    Collinear,
}

/// Orientation of the triple `(a, b, c)`.
///
/// Uses the sign of the cross product with a magnitude-scaled tolerance so
/// nearly-collinear triples of large coordinates classify as collinear
/// rather than flipping sign with rounding noise.
#[inline]
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b - a).cross(c - a);
    let scale = (b - a).norm_sq().max((c - a).norm_sq()).max(1.0);
    if v * v <= (EPS * EPS) * scale * scale {
        Orientation::Collinear
    } else if v > 0.0 {
        Orientation::CounterClockwise
    } else {
        Orientation::Clockwise
    }
}

/// True if `p` lies on the closed segment `a..b`.
pub fn on_segment(p: Point, a: Point, b: Point) -> bool {
    if orientation(a, b, p) != Orientation::Collinear {
        return false;
    }
    p.x >= a.x.min(b.x) - EPS
        && p.x <= a.x.max(b.x) + EPS
        && p.y >= a.y.min(b.y) - EPS
        && p.y <= a.y.max(b.y) + EPS
}

/// Three-way classification for point-vs-region tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Containment {
    Inside,
    OnBoundary,
    Outside,
}

impl Containment {
    /// Collapses to a bool using the common "boundary counts as inside"
    /// convention (the paper's `INSIDE` predicate is closed).
    #[inline]
    pub fn is_inside_closed(self) -> bool {
        !matches!(self, Containment::Outside)
    }
}

/// Point-in-ring test via the crossing-number (ray casting) algorithm.
///
/// `ring` is a closed loop given *without* a repeated last vertex.
/// Runs in `O(n)`; boundary points are detected explicitly so the result
/// is a three-way [`Containment`], never an arbitrary tie-break.
pub fn point_in_ring(p: Point, ring: &[Point]) -> Containment {
    let n = ring.len();
    if n < 3 {
        return Containment::Outside;
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let a = ring[j];
        let b = ring[i];
        if on_segment(p, a, b) {
            return Containment::OnBoundary;
        }
        // Half-open rule on y avoids double counting vertices.
        if (b.y > p.y) != (a.y > p.y) {
            let t = (p.y - b.y) / (a.y - b.y);
            let x_cross = b.x + t * (a.x - b.x);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    if inside {
        Containment::Inside
    } else {
        Containment::Outside
    }
}

/// Point-in-ring test via the winding number.
///
/// Robust for self-touching input; used in property tests to cross-check
/// [`point_in_ring`]. Non-zero winding ⇒ inside.
pub fn winding_number(p: Point, ring: &[Point]) -> i32 {
    let n = ring.len();
    if n < 3 {
        return 0;
    }
    let mut wn = 0i32;
    for i in 0..n {
        let a = ring[i];
        let b = ring[(i + 1) % n];
        if a.y <= p.y {
            if b.y > p.y && orientation(a, b, p) == Orientation::CounterClockwise {
                wn += 1;
            }
        } else if b.y <= p.y && orientation(a, b, p) == Orientation::Clockwise {
            wn -= 1;
        }
    }
    wn
}

/// Signed area of a ring (positive when counter-clockwise).
pub fn signed_area(ring: &[Point]) -> f64 {
    let n = ring.len();
    if n < 3 {
        return 0.0;
    }
    let mut s = 0.0;
    let mut j = n - 1;
    for i in 0..n {
        s += ring[j].cross(ring[i]);
        j = i;
    }
    s * 0.5
}

/// True when the ring's vertices wind counter-clockwise.
pub fn is_ccw(ring: &[Point]) -> bool {
    signed_area(ring) > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]
    }

    #[test]
    fn orientation_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Point::new(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(0.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn on_segment_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 2.0);
        assert!(on_segment(Point::new(1.0, 1.0), a, b));
        assert!(on_segment(a, a, b));
        assert!(on_segment(b, a, b));
        assert!(!on_segment(Point::new(3.0, 3.0), a, b));
        assert!(!on_segment(Point::new(1.0, 1.1), a, b));
    }

    #[test]
    fn pip_interior_exterior() {
        let sq = square();
        assert_eq!(
            point_in_ring(Point::new(2.0, 2.0), &sq),
            Containment::Inside
        );
        assert_eq!(
            point_in_ring(Point::new(5.0, 2.0), &sq),
            Containment::Outside
        );
        assert_eq!(
            point_in_ring(Point::new(-1.0, -1.0), &sq),
            Containment::Outside
        );
    }

    #[test]
    fn pip_boundary() {
        let sq = square();
        assert_eq!(
            point_in_ring(Point::new(0.0, 2.0), &sq),
            Containment::OnBoundary
        );
        assert_eq!(
            point_in_ring(Point::new(0.0, 0.0), &sq),
            Containment::OnBoundary
        );
        assert_eq!(
            point_in_ring(Point::new(2.0, 4.0), &sq),
            Containment::OnBoundary
        );
    }

    #[test]
    fn pip_concave() {
        // L-shaped hexagon: the notch at top-right is outside.
        let l = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        assert_eq!(point_in_ring(Point::new(1.0, 3.0), &l), Containment::Inside);
        assert_eq!(point_in_ring(Point::new(3.0, 1.0), &l), Containment::Inside);
        assert_eq!(
            point_in_ring(Point::new(3.0, 3.0), &l),
            Containment::Outside
        );
    }

    #[test]
    fn winding_matches_crossing_off_boundary() {
        let sq = square();
        let probes = [
            Point::new(2.0, 2.0),
            Point::new(5.0, 5.0),
            Point::new(-0.5, 2.0),
            Point::new(3.9, 3.9),
        ];
        for p in probes {
            let cn = point_in_ring(p, &sq) == Containment::Inside;
            let wn = winding_number(p, &sq) != 0;
            assert_eq!(cn, wn, "disagree at {p}");
        }
    }

    #[test]
    fn signed_area_and_ccw() {
        let sq = square();
        assert_eq!(signed_area(&sq), 16.0);
        assert!(is_ccw(&sq));
        let mut cw = sq.clone();
        cw.reverse();
        assert_eq!(signed_area(&cw), -16.0);
        assert!(!is_ccw(&cw));
    }

    #[test]
    fn degenerate_rings() {
        assert_eq!(point_in_ring(Point::ORIGIN, &[]), Containment::Outside);
        assert_eq!(
            point_in_ring(Point::ORIGIN, &[Point::new(1.0, 1.0)]),
            Containment::Outside
        );
        assert_eq!(signed_area(&[Point::ORIGIN, Point::new(1.0, 0.0)]), 0.0);
    }

    #[test]
    fn vertex_ray_no_double_count() {
        // Diamond whose vertex is exactly at probe height: the half-open
        // crossing rule must not count the vertex twice.
        let diamond = vec![
            Point::new(0.0, -2.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(-2.0, 0.0),
        ];
        assert_eq!(
            point_in_ring(Point::new(-1.0, 0.0), &diamond),
            Containment::Inside
        );
        assert_eq!(
            point_in_ring(Point::new(-3.0, 0.0), &diamond),
            Containment::Outside
        );
    }
}
