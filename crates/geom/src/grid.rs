//! Uniform grid spatial index, CSR-packed.
//!
//! The classic grid file referenced by the paper's related work (\[40\] in
//! the paper). Used here as the *filter* step of baseline joins and as a
//! cheap index option for the blend operator's candidate pruning.
//!
//! The cell directory is a flat **CSR layout** — one `entries` array of
//! record ids plus a `cell_offsets` array of length `cells + 1` — built
//! in two passes (count, then scatter) by [`GridIndexBuilder`]. Compared
//! to the previous `Vec<Vec<u32>>`-of-cells layout this removes one heap
//! allocation and one pointer chase per cell, and queries walk entries
//! as contiguous slices, which is the same layout the paper's follow-up
//! engine uses for its GPU-resident grid.
//!
//! Box queries visit every overlapping cell; an item registered in
//! several cells appears once per cell, so multi-cell queries deduplicate
//! through a caller-reusable [`VisitedMask`] (generation-stamped, O(1)
//! reset, no per-query allocation).

use crate::bbox::BBox;
use crate::point::Point;

/// The shared extent/dims/cell math of a uniform grid — **one**
/// definition used by both [`GridIndexBuilder`] (build time) and
/// [`GridIndex`] (query time), so the two can never disagree about
/// which cell a coordinate falls in (they used to carry independent
/// copies of this arithmetic, a standing drift hazard).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridGeometry {
    extent: BBox,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
}

impl GridGeometry {
    /// Geometry of an `nx × ny` grid over `extent`.
    ///
    /// Panics if the extent is empty or a dimension is zero — grids are
    /// built by callers that guarantee a valid extent.
    pub fn new(extent: BBox, nx: usize, ny: usize) -> Self {
        assert!(!extent.is_empty(), "grid extent must be non-empty");
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        GridGeometry {
            extent,
            nx,
            ny,
            cell_w: extent.width() / nx as f64,
            cell_h: extent.height() / ny as f64,
        }
    }

    pub fn extent(&self) -> &BBox {
        &self.extent
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Cell coordinates of a point, clamped into the grid.
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.extent.min.x) / self.cell_w) as isize;
        let cy = ((p.y - self.extent.min.y) / self.cell_h) as isize;
        (
            cx.clamp(0, self.nx as isize - 1) as usize,
            cy.clamp(0, self.ny as isize - 1) as usize,
        )
    }

    /// Flat row-major index of a cell.
    pub fn cell_index(&self, cx: usize, cy: usize) -> usize {
        debug_assert!(cx < self.nx && cy < self.ny);
        cy * self.nx + cx
    }

    /// Inclusive cell range covered by a box (clipped to the extent);
    /// `None` when the box misses the grid entirely.
    pub fn cell_range(&self, b: &BBox) -> Option<(usize, usize, usize, usize)> {
        let clipped = b.intersection(&self.extent);
        if clipped.is_empty() {
            return None;
        }
        let (x0, y0) = self.cell_of(clipped.min);
        let (x1, y1) = self.cell_of(clipped.max);
        Some((x0, y0, x1, y1))
    }
}

/// Accumulates insertions, then packs them into a [`GridIndex`] with a
/// two-pass counting-sort build.
#[derive(Clone, Debug)]
pub struct GridIndexBuilder {
    geom: GridGeometry,
    /// `(id, x0, y0, x1, y1)` inclusive cell ranges, in insertion order.
    items: Vec<(u32, u32, u32, u32, u32)>,
}

impl GridIndexBuilder {
    /// Builder for an `nx × ny` grid over `extent`.
    ///
    /// Panics if the extent is empty or a dimension is zero — the index
    /// is built by internal callers that guarantee a valid extent.
    pub fn new(extent: BBox, nx: usize, ny: usize) -> Self {
        GridIndexBuilder {
            geom: GridGeometry::new(extent, nx, ny),
            items: Vec::new(),
        }
    }

    /// Builder sized for roughly `items_per_cell` items per cell assuming
    /// a uniform distribution of `n` items. Both dimensions use ceiling
    /// division so the realized cell count never falls below the request
    /// (floor division used to under-size tall or wide extents badly —
    /// e.g. a 1:9 aspect could produce a third of the requested cells).
    pub fn with_target_occupancy(extent: BBox, n: usize, items_per_cell: usize) -> Self {
        let cells = (n / items_per_cell.max(1)).max(1);
        let aspect = (extent.width() / extent.height().max(1e-12)).max(1e-6);
        let ny = ((cells as f64 / aspect).sqrt().ceil() as usize).max(1);
        let nx = cells.div_ceil(ny).max(1);
        GridIndexBuilder::new(extent, nx, ny)
    }

    /// The shared build/query cell geometry (moved into the built
    /// [`GridIndex`] unchanged).
    pub fn geometry(&self) -> &GridGeometry {
        &self.geom
    }

    /// Registers an item covering `bbox` (every overlapping cell).
    pub fn insert(&mut self, id: u32, bbox: &BBox) {
        let Some((x0, y0, x1, y1)) = self.geom.cell_range(bbox) else {
            return;
        };
        self.items
            .push((id, x0 as u32, y0 as u32, x1 as u32, y1 as u32));
    }

    /// Registers a point item (exactly one cell).
    pub fn insert_point(&mut self, id: u32, p: Point) {
        if !self.geom.extent().contains(p) {
            return;
        }
        let (cx, cy) = self.geom.cell_of(p);
        self.items
            .push((id, cx as u32, cy as u32, cx as u32, cy as u32));
    }

    /// Packs the insertions into the flat CSR index.
    ///
    /// Pass 1 counts entries per cell into what becomes `cell_offsets`;
    /// pass 2 scatters ids into `entries`. Within a cell, entries keep
    /// insertion order.
    pub fn build(self) -> GridIndex {
        let geom = self.geom;
        let cells = geom.num_cells();
        let mut cell_offsets = vec![0u32; cells + 1];
        for &(_, x0, y0, x1, y1) in &self.items {
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    cell_offsets[geom.cell_index(cx as usize, cy as usize) + 1] += 1;
                }
            }
        }
        for i in 0..cells {
            cell_offsets[i + 1] += cell_offsets[i];
        }
        let mut cursor: Vec<u32> = cell_offsets[..cells].to_vec();
        let mut entries = vec![0u32; cell_offsets[cells] as usize];
        for &(id, x0, y0, x1, y1) in &self.items {
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    let cell = geom.cell_index(cx as usize, cy as usize);
                    entries[cursor[cell] as usize] = id;
                    cursor[cell] += 1;
                }
            }
        }
        GridIndex {
            geom,
            cell_offsets,
            entries,
            len: self.items.len(),
        }
    }
}

/// A uniform grid over a fixed extent indexing items by bounding box,
/// CSR-packed (see module docs). Built via [`GridIndexBuilder`], whose
/// [`GridGeometry`] it inherits — query-time cell math is the same
/// object that placed the entries.
#[derive(Clone, Debug)]
pub struct GridIndex {
    geom: GridGeometry,
    /// `cells + 1` prefix sums into `entries`.
    cell_offsets: Vec<u32>,
    /// Record ids, grouped by cell, insertion-ordered within a cell.
    entries: Vec<u32>,
    len: usize,
}

impl GridIndex {
    /// One-shot build from point items.
    pub fn from_points(
        extent: BBox,
        nx: usize,
        ny: usize,
        points: impl IntoIterator<Item = (u32, Point)>,
    ) -> Self {
        let mut b = GridIndexBuilder::new(extent, nx, ny);
        for (id, p) in points {
            b.insert_point(id, p);
        }
        b.build()
    }

    /// One-shot build from box items.
    pub fn from_bboxes<'a>(
        extent: BBox,
        nx: usize,
        ny: usize,
        boxes: impl IntoIterator<Item = (u32, &'a BBox)>,
    ) -> Self {
        let mut b = GridIndexBuilder::new(extent, nx, ny);
        for (id, bb) in boxes {
            b.insert(id, bb);
        }
        b.build()
    }

    /// The shared build/query cell geometry.
    pub fn geometry(&self) -> &GridGeometry {
        &self.geom
    }

    pub fn extent(&self) -> &BBox {
        self.geom.extent()
    }

    pub fn dims(&self) -> (usize, usize) {
        self.geom.dims()
    }

    /// Number of inserted items (not entries; items spanning k cells still
    /// count once).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total CSR entries (items counted once per covered cell).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// CSR slice of one cell.
    #[inline]
    fn cell_entries(&self, cx: usize, cy: usize) -> &[u32] {
        let cell = self.geom.cell_index(cx, cy);
        let lo = self.cell_offsets[cell] as usize;
        let hi = self.cell_offsets[cell + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Candidate ids whose cells overlap the query box, **with
    /// duplicates** when an item spans several visited cells. This is the
    /// raw filter stream; callers either tolerate duplicates, dedup via
    /// [`query_into`](Self::query_into) with a [`VisitedMask`], or use
    /// the allocating [`query`](Self::query) convenience.
    pub fn query_iter<'a>(&'a self, b: &BBox) -> impl Iterator<Item = u32> + 'a {
        let range = self.geom.cell_range(b);
        range
            .into_iter()
            .flat_map(move |(x0, y0, x1, y1)| {
                (y0..=y1).flat_map(move |cy| (x0..=x1).map(move |cx| (cx, cy)))
            })
            .flat_map(move |(cx, cy)| self.cell_entries(cx, cy).iter().copied())
    }

    /// Deduplicated candidates of a box query, appended to `out` in
    /// first-seen (cell-scan) order. The [`VisitedMask`] is reused across
    /// queries — no allocation on the hot path once it has grown to the
    /// id universe.
    pub fn query_into(&self, b: &BBox, visited: &mut VisitedMask, out: &mut Vec<u32>) {
        visited.next_generation();
        for id in self.query_iter(b) {
            if visited.insert(id) {
                out.push(id);
            }
        }
    }

    /// Candidate ids whose cells overlap the query box (deduplicated,
    /// sorted). Convenience wrapper over the iterator path for callers
    /// off the hot path (and tests); allocates its result.
    pub fn query(&self, b: &BBox) -> Vec<u32> {
        let mut out: Vec<u32> = self.query_iter(b).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate ids in the cell containing `p` — a contiguous CSR slice,
    /// duplicate-free by construction (an item registers once per cell).
    pub fn query_point(&self, p: Point) -> &[u32] {
        if !self.geom.extent().contains(p) {
            return &[];
        }
        let (cx, cy) = self.geom.cell_of(p);
        self.cell_entries(cx, cy)
    }
}

/// Generation-stamped membership mask for deduplicating multi-cell query
/// results. `clear` is O(1) (generation bump); storage grows to the
/// largest id ever seen and is then reused allocation-free.
#[derive(Clone, Debug)]
pub struct VisitedMask {
    stamps: Vec<u32>,
    generation: u32,
}

impl Default for VisitedMask {
    fn default() -> Self {
        // Stamps are zero-initialized, so the live generation must start
        // at 1 or a fresh mask would report every id as already present.
        VisitedMask {
            stamps: Vec::new(),
            generation: 1,
        }
    }
}

impl VisitedMask {
    pub fn new() -> Self {
        VisitedMask::default()
    }

    /// Starts a new query: previously inserted ids read as absent again.
    pub fn next_generation(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamps.fill(0);
            self.generation = 1;
        }
    }

    /// Marks `id`; returns true when it was not yet present this
    /// generation.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let idx = id as usize;
        if idx >= self.stamps.len() {
            self.stamps.resize(idx + 1, 0);
        }
        if self.stamps[idx] == self.generation {
            false
        } else {
            self.stamps[idx] = self.generation;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn point_insert_and_query() {
        let g = GridIndex::from_points(
            extent(),
            10,
            10,
            [
                (1, Point::new(0.5, 0.5)),
                (2, Point::new(9.5, 9.5)),
                (3, Point::new(5.0, 5.0)),
            ],
        );
        assert_eq!(g.len(), 3);
        let hits = g.query(&BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        assert!(hits.contains(&1));
        assert!(!hits.contains(&2));
    }

    #[test]
    fn box_item_spans_cells() {
        let bb = BBox::new(Point::new(2.0, 2.0), Point::new(7.0, 3.0));
        let g = GridIndex::from_bboxes(extent(), 10, 10, [(7u32, &bb)]);
        // The item occupies one entry per covered cell.
        assert_eq!(g.len(), 1);
        assert!(g.num_entries() >= 6);
        // Query far corner: no hit.
        assert!(g
            .query(&BBox::new(Point::new(9.0, 9.0), Point::new(10.0, 10.0)))
            .is_empty());
        // Query overlapping any covered cell: deduplicated single hit.
        let hits = g.query(&BBox::new(Point::new(2.5, 2.5), Point::new(6.5, 2.6)));
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn query_iter_yields_per_cell_duplicates() {
        let bb = BBox::new(Point::new(1.0, 1.0), Point::new(9.0, 9.0));
        let g = GridIndex::from_bboxes(extent(), 4, 4, [(3u32, &bb)]);
        let raw: Vec<u32> = g.query_iter(&extent()).collect();
        assert!(raw.len() > 1, "item spans many cells");
        assert!(raw.iter().all(|&id| id == 3));
    }

    #[test]
    fn fresh_mask_inserts_report_new() {
        // Regression: generation used to start at 0 — the same value as
        // zero-initialized stamps — so direct `insert` calls on a fresh
        // mask all returned false.
        let mut m = VisitedMask::new();
        assert!(m.insert(5));
        assert!(!m.insert(5));
        assert!(m.insert(0));
        m.next_generation();
        assert!(m.insert(5));
    }

    #[test]
    fn query_into_dedups_without_sorting() {
        let mut b = GridIndexBuilder::new(extent(), 4, 4);
        b.insert(9, &BBox::new(Point::new(1.0, 1.0), Point::new(9.0, 9.0)));
        b.insert_point(4, Point::new(0.5, 0.5));
        let g = b.build();
        let mut visited = VisitedMask::new();
        let mut out = Vec::new();
        g.query_into(&extent(), &mut visited, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![4, 9]);
        // Mask reuse: a second query starts clean.
        let mut out2 = Vec::new();
        g.query_into(&extent(), &mut visited, &mut out2);
        out2.sort_unstable();
        assert_eq!(out2, vec![4, 9]);
    }

    #[test]
    fn out_of_extent_point_ignored() {
        let g = GridIndex::from_points(extent(), 4, 4, [(1, Point::new(50.0, 50.0))]);
        assert_eq!(g.len(), 0);
        assert!(g.query(&extent()).is_empty());
    }

    #[test]
    fn boundary_points_clamp_into_grid() {
        let g = GridIndex::from_points(extent(), 4, 4, [(1, Point::new(10.0, 10.0))]);
        assert_eq!(g.len(), 1);
        let hits = g.query(&BBox::new(Point::new(9.0, 9.0), Point::new(10.0, 10.0)));
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn query_point_cell() {
        let g = GridIndex::from_points(
            extent(),
            2,
            2,
            [(1, Point::new(1.0, 1.0)), (2, Point::new(9.0, 9.0))],
        );
        assert_eq!(g.query_point(Point::new(2.0, 2.0)), &[1]);
        assert_eq!(g.query_point(Point::new(8.0, 8.0)), &[2]);
        assert!(g.query_point(Point::new(-1.0, 0.0)).is_empty());
    }

    #[test]
    fn csr_matches_per_cell_reference() {
        // Pseudo-random boxes; CSR query must agree with a brute-force
        // scan at every probe.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let boxes: Vec<BBox> = (0..200)
            .map(|_| {
                let x = next() * 9.0;
                let y = next() * 9.0;
                BBox::new(
                    Point::new(x, y),
                    Point::new(x + next() * 2.0, y + next() * 2.0),
                )
            })
            .collect();
        let g = GridIndex::from_bboxes(
            extent(),
            7,
            5,
            boxes.iter().enumerate().map(|(i, b)| (i as u32, b)),
        );
        assert_eq!(g.len(), 200);
        let mut visited = VisitedMask::new();
        let mut out = Vec::new();
        for qi in 0..50 {
            let x = next() * 8.0;
            let y = next() * 8.0;
            let q = BBox::new(Point::new(x, y), Point::new(x + 2.5, y + 2.5));
            // Reference: every box whose covered cell range intersects the
            // query's cell range (the filter-step contract).
            let sorted = g.query(&q);
            out.clear();
            g.query_into(&q, &mut visited, &mut out);
            let mut deduped = out.clone();
            deduped.sort_unstable();
            assert_eq!(deduped, sorted, "query {qi} disagrees");
            // Filter never misses a truly overlapping box.
            for (i, b) in boxes.iter().enumerate() {
                if !b.intersection(&q).is_empty() {
                    assert!(
                        sorted.contains(&(i as u32)),
                        "query {qi} missed overlapping box {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn builder_and_index_share_identical_geometry() {
        // The whole point of GridGeometry: the cell math that placed an
        // entry is the same object the query uses, so a point inserted
        // at build time is always found by a query at the same spot.
        let b = GridIndexBuilder::new(extent(), 7, 5);
        let build_geom = *b.geometry();
        let g = b.build();
        assert_eq!(build_geom, *g.geometry());
        // Probe awkward coordinates (cell edges, extent corners): the
        // shared cell_of must agree with where query_point looks.
        for p in [
            Point::new(0.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(10.0 / 7.0, 10.0 / 5.0),
            Point::new(3.0 * 10.0 / 7.0, 2.0 * 10.0 / 5.0),
            Point::new(9.999999, 0.000001),
        ] {
            let mut bb = GridIndexBuilder::new(extent(), 7, 5);
            bb.insert_point(42, p);
            let gg = bb.build();
            assert_eq!(gg.query_point(p), &[42], "probe {p:?}");
        }
    }

    #[test]
    fn occupancy_sizing() {
        let b = GridIndexBuilder::with_target_occupancy(extent(), 10_000, 16);
        let g = b.build();
        let (nx, ny) = g.dims();
        assert!(nx * ny >= 300, "got {nx}x{ny}");
    }

    #[test]
    fn occupancy_sizing_tall_extent_not_undersized() {
        // Regression: with floor division `nx = (cells / ny).max(1)`, a
        // tall 1:100 extent asking for 1024 cells got ny = 320 → nx = 3,
        // i.e. 960 cells — and far worse at more extreme aspects, where
        // nx collapsed to 1. Ceiling division keeps nx * ny >= cells.
        for (w, h) in [(1.0, 100.0), (100.0, 1.0), (0.1, 100.0), (3.0, 7.0)] {
            let e = BBox::new(Point::new(0.0, 0.0), Point::new(w, h));
            for n in [1_000usize, 10_000, 100_000] {
                for per_cell in [1usize, 4, 16] {
                    let want = (n / per_cell).max(1);
                    let g = GridIndexBuilder::with_target_occupancy(e, n, per_cell).build();
                    let (nx, ny) = g.dims();
                    assert!(
                        nx * ny >= want,
                        "{w}x{h} n={n} per_cell={per_cell}: {nx}x{ny} < {want} cells"
                    );
                    // ...without over-shooting by more than one extra row
                    // or column of cells.
                    assert!(
                        nx * ny <= want + nx + ny,
                        "{w}x{h} n={n}: {nx}x{ny} overshoots {want}"
                    );
                }
            }
        }
    }
}
