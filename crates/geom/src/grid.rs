//! Uniform grid spatial index.
//!
//! The classic grid file referenced by the paper's related work (\[40\] in
//! the paper). Used here as the *filter* step of baseline joins and as a
//! cheap index option for the blend operator's candidate pruning.

use crate::bbox::BBox;
use crate::point::Point;

/// A uniform grid over a fixed extent indexing items by bounding box.
///
/// Item payloads are `u32` identifiers (record ids); spatially extended
/// items are registered in every overlapping cell.
#[derive(Clone, Debug)]
pub struct GridIndex {
    extent: BBox,
    nx: usize,
    ny: usize,
    cell_w: f64,
    cell_h: f64,
    cells: Vec<Vec<u32>>,
    len: usize,
}

impl GridIndex {
    /// Creates an empty grid with `nx × ny` cells over `extent`.
    ///
    /// Panics if the extent is empty or a dimension is zero — the index
    /// is built by internal callers that guarantee a valid extent.
    pub fn new(extent: BBox, nx: usize, ny: usize) -> Self {
        assert!(!extent.is_empty(), "grid extent must be non-empty");
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        GridIndex {
            extent,
            nx,
            ny,
            cell_w: extent.width() / nx as f64,
            cell_h: extent.height() / ny as f64,
            cells: vec![Vec::new(); nx * ny],
            len: 0,
        }
    }

    /// Grid sized for roughly `items_per_cell` items per cell assuming a
    /// uniform distribution of `n` items.
    pub fn with_target_occupancy(extent: BBox, n: usize, items_per_cell: usize) -> Self {
        let cells = (n / items_per_cell.max(1)).max(1);
        let aspect = (extent.width() / extent.height().max(1e-12)).max(1e-6);
        let ny = ((cells as f64 / aspect).sqrt().ceil() as usize).max(1);
        let nx = (cells / ny).max(1);
        GridIndex::new(extent, nx, ny)
    }

    pub fn extent(&self) -> &BBox {
        &self.extent
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Number of inserted items (not entries; items spanning k cells still
    /// count once).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.extent.min.x) / self.cell_w) as isize;
        let cy = ((p.y - self.extent.min.y) / self.cell_h) as isize;
        (
            cx.clamp(0, self.nx as isize - 1) as usize,
            cy.clamp(0, self.ny as isize - 1) as usize,
        )
    }

    fn cell_range(&self, b: &BBox) -> Option<(usize, usize, usize, usize)> {
        let clipped = b.intersection(&self.extent);
        if clipped.is_empty() {
            return None;
        }
        let (x0, y0) = self.cell_of(clipped.min);
        let (x1, y1) = self.cell_of(clipped.max);
        Some((x0, y0, x1, y1))
    }

    /// Inserts an item covering `bbox`.
    pub fn insert(&mut self, id: u32, bbox: &BBox) {
        let Some((x0, y0, x1, y1)) = self.cell_range(bbox) else {
            return;
        };
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                self.cells[cy * self.nx + cx].push(id);
            }
        }
        self.len += 1;
    }

    /// Inserts a point item.
    pub fn insert_point(&mut self, id: u32, p: Point) {
        if !self.extent.contains(p) {
            return;
        }
        let (cx, cy) = self.cell_of(p);
        self.cells[cy * self.nx + cx].push(id);
        self.len += 1;
    }

    /// Candidate ids whose cells overlap the query box (deduplicated,
    /// sorted). This is the *filter* step; callers must still refine.
    pub fn query(&self, b: &BBox) -> Vec<u32> {
        let Some((x0, y0, x1, y1)) = self.cell_range(b) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                out.extend_from_slice(&self.cells[cy * self.nx + cx]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate ids in the cell containing `p`.
    pub fn query_point(&self, p: Point) -> &[u32] {
        if !self.extent.contains(p) {
            return &[];
        }
        let (cx, cy) = self.cell_of(p);
        &self.cells[cy * self.nx + cx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn point_insert_and_query() {
        let mut g = GridIndex::new(extent(), 10, 10);
        g.insert_point(1, Point::new(0.5, 0.5));
        g.insert_point(2, Point::new(9.5, 9.5));
        g.insert_point(3, Point::new(5.0, 5.0));
        assert_eq!(g.len(), 3);
        let hits = g.query(&BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        assert!(hits.contains(&1));
        assert!(!hits.contains(&2));
    }

    #[test]
    fn box_item_spans_cells() {
        let mut g = GridIndex::new(extent(), 10, 10);
        g.insert(7, &BBox::new(Point::new(2.0, 2.0), Point::new(7.0, 3.0)));
        // Query far corner: no hit.
        assert!(g
            .query(&BBox::new(Point::new(9.0, 9.0), Point::new(10.0, 10.0)))
            .is_empty());
        // Query overlapping any covered cell: deduplicated single hit.
        let hits = g.query(&BBox::new(Point::new(2.5, 2.5), Point::new(6.5, 2.6)));
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn out_of_extent_point_ignored() {
        let mut g = GridIndex::new(extent(), 4, 4);
        g.insert_point(1, Point::new(50.0, 50.0));
        assert_eq!(g.len(), 0);
        assert!(g.query(&extent()).is_empty());
    }

    #[test]
    fn boundary_points_clamp_into_grid() {
        let mut g = GridIndex::new(extent(), 4, 4);
        g.insert_point(1, Point::new(10.0, 10.0)); // max corner
        assert_eq!(g.len(), 1);
        let hits = g.query(&BBox::new(Point::new(9.0, 9.0), Point::new(10.0, 10.0)));
        assert_eq!(hits, vec![1]);
    }

    #[test]
    fn query_point_cell() {
        let mut g = GridIndex::new(extent(), 2, 2);
        g.insert_point(1, Point::new(1.0, 1.0));
        g.insert_point(2, Point::new(9.0, 9.0));
        assert_eq!(g.query_point(Point::new(2.0, 2.0)), &[1]);
        assert_eq!(g.query_point(Point::new(8.0, 8.0)), &[2]);
        assert!(g.query_point(Point::new(-1.0, 0.0)).is_empty());
    }

    #[test]
    fn occupancy_sizing() {
        let g = GridIndex::with_target_occupancy(extent(), 10_000, 16);
        let (nx, ny) = g.dims();
        assert!(nx * ny >= 300, "got {nx}x{ny}");
    }
}
