//! Sutherland–Hodgman polygon clipping against convex windows.
//!
//! Used for viewport clipping in the raster pipeline and for half-space
//! query canvases (`HS` utility operator): a half-space rendered onto a
//! finite canvas is exactly the canvas extent clipped by one directed
//! line.

use crate::bbox::BBox;
use crate::point::Point;

/// Clips a ring (CCW, no repeated closing vertex) against the closed
/// half-plane `ax + by + c < 0` (points with `ax + by + c <= 0` kept; the
/// paper defines `HS[a,b,c]` with strict `<`, and measure-zero boundary
/// agreement is resolved exactly by the boundary refinement layer).
pub fn clip_ring_halfplane(ring: &[Point], a: f64, b: f64, c: f64) -> Vec<Point> {
    let inside = |p: Point| a * p.x + b * p.y + c <= 0.0;
    let eval = |p: Point| a * p.x + b * p.y + c;
    let mut out = Vec::with_capacity(ring.len() + 4);
    let n = ring.len();
    if n == 0 {
        return out;
    }
    for i in 0..n {
        let cur = ring[i];
        let next = ring[(i + 1) % n];
        let cur_in = inside(cur);
        let next_in = inside(next);
        if cur_in {
            out.push(cur);
        }
        if cur_in != next_in {
            let d = eval(next) - eval(cur);
            if d != 0.0 {
                let t = -eval(cur) / d;
                out.push(cur.lerp(next, t.clamp(0.0, 1.0)));
            }
        }
    }
    dedup_ring(out)
}

/// Clips a ring against an axis-aligned box (four half-plane passes).
pub fn clip_ring_bbox(ring: &[Point], bbox: &BBox) -> Vec<Point> {
    if bbox.is_empty() {
        return Vec::new();
    }
    // x >= min.x  <=>  -x + min.x <= 0
    let mut r = clip_ring_halfplane(ring, -1.0, 0.0, bbox.min.x);
    // x <= max.x
    r = clip_ring_halfplane(&r, 1.0, 0.0, -bbox.max.x);
    // y >= min.y
    r = clip_ring_halfplane(&r, 0.0, -1.0, bbox.min.y);
    // y <= max.y
    r = clip_ring_halfplane(&r, 0.0, 1.0, -bbox.max.y);
    r
}

fn dedup_ring(mut ring: Vec<Point>) -> Vec<Point> {
    ring.dedup();
    if ring.len() >= 2 && ring.first() == ring.last() {
        ring.pop();
    }
    ring
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::signed_area;

    fn square(side: f64) -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(side, 0.0),
            Point::new(side, side),
            Point::new(0.0, side),
        ]
    }

    #[test]
    fn halfplane_keeps_left() {
        // x <= 2  <=>  x - 2 <= 0.
        let clipped = clip_ring_halfplane(&square(4.0), 1.0, 0.0, -2.0);
        assert_eq!(signed_area(&clipped), 8.0);
        assert!(clipped.iter().all(|p| p.x <= 2.0));
    }

    #[test]
    fn halfplane_keeps_everything() {
        let sq = square(4.0);
        let clipped = clip_ring_halfplane(&sq, 1.0, 0.0, -100.0);
        assert_eq!(signed_area(&clipped), 16.0);
    }

    #[test]
    fn halfplane_removes_everything() {
        let clipped = clip_ring_halfplane(&square(4.0), 1.0, 0.0, 100.0);
        assert!(clipped.len() < 3 || signed_area(&clipped) == 0.0);
    }

    #[test]
    fn diagonal_halfplane() {
        // x + y <= 4 over a 4x4 square keeps a triangle of area 8.
        let clipped = clip_ring_halfplane(&square(4.0), 1.0, 1.0, -4.0);
        assert_eq!(signed_area(&clipped), 8.0);
    }

    #[test]
    fn bbox_clip_overlapping() {
        let window = BBox::new(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        let clipped = clip_ring_bbox(&square(4.0), &window);
        assert_eq!(signed_area(&clipped), 4.0); // 2x2 overlap
        for p in &clipped {
            assert!(window.contains(*p));
        }
    }

    #[test]
    fn bbox_clip_contained() {
        let window = BBox::new(Point::new(-1.0, -1.0), Point::new(10.0, 10.0));
        let clipped = clip_ring_bbox(&square(4.0), &window);
        assert_eq!(signed_area(&clipped), 16.0);
    }

    #[test]
    fn bbox_clip_disjoint() {
        let window = BBox::new(Point::new(10.0, 10.0), Point::new(20.0, 20.0));
        let clipped = clip_ring_bbox(&square(4.0), &window);
        assert!(clipped.len() < 3);
    }

    #[test]
    fn empty_window() {
        assert!(clip_ring_bbox(&square(4.0), &BBox::EMPTY).is_empty());
    }
}
