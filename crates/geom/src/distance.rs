//! Distance kernels: point↔segment, point↔polyline, point↔polygon.
//!
//! Needed by distance-based selections/joins (paper Section 4.1 case 3 and
//! Section 4.2 Type III joins), by kNN validation, and by the Voronoi
//! stored procedure.

use crate::point::Point;
use crate::polygon::Polygon;
use crate::polyline::Polyline;
use crate::predicates::Containment;
use crate::segment::Segment;

/// Squared distance from `p` to the closed segment `s`.
pub fn point_segment_dist_sq(p: Point, s: &Segment) -> f64 {
    let d = s.dir();
    let len_sq = d.norm_sq();
    if len_sq == 0.0 {
        return p.dist_sq(s.a);
    }
    let t = ((p - s.a).dot(d) / len_sq).clamp(0.0, 1.0);
    p.dist_sq(s.at(t))
}

/// Distance from `p` to the closed segment `s`.
pub fn point_segment_dist(p: Point, s: &Segment) -> f64 {
    point_segment_dist_sq(p, s).sqrt()
}

/// Distance from `p` to the nearest point of the polyline.
pub fn point_polyline_dist(p: Point, l: &Polyline) -> f64 {
    l.segments()
        .map(|s| point_segment_dist_sq(p, &s))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

/// Distance from `p` to the polygonal *region* (zero when inside or on
/// the boundary).
pub fn point_polygon_dist(p: Point, poly: &Polygon) -> f64 {
    if poly.contains(p) != Containment::Outside {
        return 0.0;
    }
    boundary_dist(p, poly)
}

/// Distance from `p` to the polygon *boundary* (outer ring and holes),
/// regardless of sidedness.
pub fn boundary_dist(p: Point, poly: &Polygon) -> f64 {
    poly.edges()
        .map(|e| point_segment_dist_sq(p, &e))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

/// True when the polyline shares at least one point with the polygonal
/// region (an endpoint inside, or any segment crossing the boundary) —
/// the `INTERSECTS` predicate for 1-primitives vs 2-primitives.
pub fn polyline_intersects_polygon(line: &Polyline, poly: &Polygon) -> bool {
    if !line.bbox().intersects(&poly.bbox()) {
        return false;
    }
    // Representative point inside the region.
    if poly.contains(line.vertices()[0]) != Containment::Outside {
        return true;
    }
    // Any segment crossing any boundary edge.
    line.segments()
        .any(|s| poly.edges().any(|e| s.intersects(&e)))
}

/// Signed distance to the polygon region: negative inside, positive
/// outside, zero on the boundary.
pub fn signed_polygon_dist(p: Point, poly: &Polygon) -> f64 {
    match poly.contains(p) {
        Containment::OnBoundary => 0.0,
        Containment::Inside => -boundary_dist(p, poly),
        Containment::Outside => boundary_dist(p, poly),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn segment_distance_cases() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        // Perpendicular foot inside the segment.
        assert_eq!(point_segment_dist(Point::new(1.0, 3.0), &s), 3.0);
        // Clamped to endpoint a.
        assert_eq!(point_segment_dist(Point::new(-3.0, 4.0), &s), 5.0);
        // Clamped to endpoint b.
        assert_eq!(point_segment_dist(Point::new(5.0, 4.0), &s), 5.0);
        // On the segment.
        assert_eq!(point_segment_dist(Point::new(0.5, 0.0), &s), 0.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(point_segment_dist(Point::new(4.0, 5.0), &s), 5.0);
    }

    #[test]
    fn polyline_distance() {
        let l = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
        ])
        .unwrap();
        assert_eq!(point_polyline_dist(Point::new(3.0, 1.0), &l), 1.0);
        assert_eq!(point_polyline_dist(Point::new(1.0, 0.0), &l), 0.0);
    }

    #[test]
    fn polygon_distance_inside_is_zero() {
        let sq = unit_square();
        assert_eq!(point_polygon_dist(Point::new(0.5, 0.5), &sq), 0.0);
        assert_eq!(point_polygon_dist(Point::new(0.0, 0.5), &sq), 0.0);
    }

    #[test]
    fn polygon_distance_outside() {
        let sq = unit_square();
        assert_eq!(point_polygon_dist(Point::new(2.0, 0.5), &sq), 1.0);
        // Corner diagonal.
        let d = point_polygon_dist(Point::new(2.0, 2.0), &sq);
        assert!((d - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn polyline_polygon_intersection() {
        let sq = unit_square();
        // Crossing through.
        let crossing = Polyline::new(vec![Point::new(-1.0, 0.5), Point::new(2.0, 0.5)]).unwrap();
        assert!(polyline_intersects_polygon(&crossing, &sq));
        // Fully inside.
        let inside = Polyline::new(vec![Point::new(0.2, 0.2), Point::new(0.8, 0.8)]).unwrap();
        assert!(polyline_intersects_polygon(&inside, &sq));
        // Fully outside.
        let outside = Polyline::new(vec![Point::new(2.0, 2.0), Point::new(3.0, 3.0)]).unwrap();
        assert!(!polyline_intersects_polygon(&outside, &sq));
        // Touching a corner.
        let touching = Polyline::new(vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)]).unwrap();
        assert!(polyline_intersects_polygon(&touching, &sq));
    }

    #[test]
    fn signed_distance() {
        let sq = unit_square();
        assert!(signed_polygon_dist(Point::new(0.5, 0.5), &sq) < 0.0);
        assert!(signed_polygon_dist(Point::new(2.0, 0.5), &sq) > 0.0);
        assert_eq!(signed_polygon_dist(Point::new(1.0, 0.5), &sq), 0.0);
        assert_eq!(signed_polygon_dist(Point::new(0.5, 0.5), &sq), -0.5);
    }
}
