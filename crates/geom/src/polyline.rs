//! Polylines — the paper's 1-primitives (lines need not be straight).

use crate::bbox::BBox;
use crate::point::Point;
use crate::segment::Segment;

/// An open chain of straight segments through consecutive vertices.
#[derive(Clone, Debug, PartialEq)]
pub struct Polyline {
    vertices: Vec<Point>,
}

impl Polyline {
    /// Builds a polyline; requires at least two vertices.
    pub fn new(vertices: Vec<Point>) -> Option<Self> {
        if vertices.len() < 2 {
            None
        } else {
            Some(Polyline { vertices })
        }
    }

    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    pub fn num_segments(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Iterator over the constituent segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.vertices.windows(2).map(|w| Segment::new(w[0], w[1]))
    }

    pub fn length(&self) -> f64 {
        self.segments().map(|s| s.length()).sum()
    }

    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.vertices.iter().copied())
    }

    /// Point at arc-length parameter `t ∈ [0, 1]` along the chain.
    pub fn point_at(&self, t: f64) -> Point {
        let total = self.length();
        if total == 0.0 {
            return self.vertices[0];
        }
        let mut remaining = t.clamp(0.0, 1.0) * total;
        for seg in self.segments() {
            let l = seg.length();
            if remaining <= l || l == 0.0 {
                if l == 0.0 {
                    continue;
                }
                return seg.at(remaining / l);
            }
            remaining -= l;
        }
        *self.vertices.last().expect("polyline has >= 2 vertices")
    }

    /// True when any segment of `self` intersects any segment of `other`.
    pub fn intersects(&self, other: &Polyline) -> bool {
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        self.segments()
            .any(|s| other.segments().any(|o| s.intersects(&o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zigzag() -> Polyline {
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 0.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_needs_two_vertices() {
        assert!(Polyline::new(vec![]).is_none());
        assert!(Polyline::new(vec![Point::ORIGIN]).is_none());
        assert!(Polyline::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]).is_some());
    }

    #[test]
    fn length_and_segments() {
        let z = zigzag();
        assert_eq!(z.num_segments(), 2);
        assert!((z.length() - 2.0 * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bbox_covers_vertices() {
        let z = zigzag();
        let b = z.bbox();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(2.0, 1.0));
    }

    #[test]
    fn arc_length_parameterization() {
        let z = zigzag();
        assert_eq!(z.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(z.point_at(1.0), Point::new(2.0, 0.0));
        let mid = z.point_at(0.5);
        assert!((mid.x - 1.0).abs() < 1e-12);
        assert!((mid.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_between_polylines() {
        let z = zigzag();
        let horiz = Polyline::new(vec![Point::new(0.0, 0.5), Point::new(2.0, 0.5)]).unwrap();
        assert!(z.intersects(&horiz));
        let far = Polyline::new(vec![Point::new(0.0, 5.0), Point::new(2.0, 5.0)]).unwrap();
        assert!(!z.intersects(&far));
    }
}
