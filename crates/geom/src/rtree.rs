//! STR-packed R-tree.
//!
//! The R-tree (\[23\] in the paper) is *the* classical index for the filter
//! step of spatial selections and joins. We bulk-load with the
//! Sort-Tile-Recursive (STR) packing so construction is deterministic and
//! queries hit near-optimal fanout; baseline approaches use it to mimic
//! the "index filtering + refinement" strategy of existing systems.

use crate::bbox::BBox;
use crate::point::Point;

const NODE_CAPACITY: usize = 16;

#[derive(Clone, Debug)]
struct Node {
    bbox: BBox,
    /// Children: either indexes into `nodes` (internal) or payload ids
    /// (leaf).
    children: Vec<u32>,
    is_leaf: bool,
}

/// An immutable, bulk-loaded R-tree mapping `u32` ids to bounding boxes.
#[derive(Clone, Debug)]
pub struct RTree {
    nodes: Vec<Node>,
    item_boxes: Vec<BBox>,
    root: Option<u32>,
}

impl RTree {
    /// Bulk-loads the tree from `(id, bbox)` items using STR packing.
    /// Item ids must equal their position (`items[i]` has id `i`).
    pub fn bulk_load(item_boxes: Vec<BBox>) -> Self {
        let n = item_boxes.len();
        if n == 0 {
            return RTree {
                nodes: Vec::new(),
                item_boxes,
                root: None,
            };
        }
        let mut nodes: Vec<Node> = Vec::new();

        // Level 0: pack items into leaves.
        let mut entries: Vec<(u32, BBox)> = item_boxes
            .iter()
            .enumerate()
            .map(|(i, b)| (i as u32, *b))
            .collect();
        let mut level: Vec<u32> = pack_level(&mut entries, &mut nodes, true);

        // Pack upward until a single root remains.
        while level.len() > 1 {
            let mut entries: Vec<(u32, BBox)> = level
                .iter()
                .map(|&id| (id, nodes[id as usize].bbox))
                .collect();
            level = pack_level(&mut entries, &mut nodes, false);
        }

        let root = level.first().copied();
        RTree {
            nodes,
            item_boxes,
            root,
        }
    }

    pub fn len(&self) -> usize {
        self.item_boxes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.item_boxes.is_empty()
    }

    /// Bounding box of the whole tree.
    pub fn bbox(&self) -> BBox {
        self.root
            .map(|r| self.nodes[r as usize].bbox)
            .unwrap_or(BBox::EMPTY)
    }

    /// All item ids whose boxes intersect the query box (filter step).
    pub fn query(&self, q: &BBox) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_into(q, &mut out);
        out
    }

    /// As [`query`](Self::query) but reusing an output buffer
    /// (perf-book "workhorse collection" idiom for hot join loops).
    pub fn query_into(&self, q: &BBox, out: &mut Vec<u32>) {
        let Some(root) = self.root else {
            return;
        };
        let mut stack = vec![root];
        while let Some(ni) = stack.pop() {
            let node = &self.nodes[ni as usize];
            if !node.bbox.intersects(q) {
                continue;
            }
            if node.is_leaf {
                for &id in &node.children {
                    if self.item_boxes[id as usize].intersects(q) {
                        out.push(id);
                    }
                }
            } else {
                stack.extend_from_slice(&node.children);
            }
        }
    }

    /// Item ids whose boxes contain the point.
    pub fn query_point(&self, p: Point) -> Vec<u32> {
        self.query(&BBox::new(p, p))
    }
}

/// Packs one level of `(id, bbox)` entries into parent nodes using STR
/// tiling; returns the new node ids.
fn pack_level(entries: &mut [(u32, BBox)], nodes: &mut Vec<Node>, is_leaf: bool) -> Vec<u32> {
    let n = entries.len();
    let node_count = n.div_ceil(NODE_CAPACITY);
    let slice_count = (node_count as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slice_count);

    // Sort by center x, slice, then sort each slice by center y.
    entries.sort_by(|a, b| {
        a.1.center()
            .x
            .partial_cmp(&b.1.center().x)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut out = Vec::with_capacity(node_count);
    for slice in entries.chunks_mut(per_slice.max(1)) {
        slice.sort_by(|a, b| {
            a.1.center()
                .y
                .partial_cmp(&b.1.center().y)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for group in slice.chunks(NODE_CAPACITY) {
            let bbox = group.iter().fold(BBox::EMPTY, |acc, (_, b)| acc.union(b));
            nodes.push(Node {
                bbox,
                children: group.iter().map(|(id, _)| *id).collect(),
                is_leaf,
            });
            out.push((nodes.len() - 1) as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_boxes(pts: &[Point]) -> Vec<BBox> {
        pts.iter().map(|p| BBox::new(*p, *p)).collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::bulk_load(Vec::new());
        assert!(t.is_empty());
        assert!(t.bbox().is_empty());
        assert!(t
            .query(&BBox::new(Point::ORIGIN, Point::new(1.0, 1.0)))
            .is_empty());
    }

    #[test]
    fn single_item() {
        let t = RTree::bulk_load(point_boxes(&[Point::new(1.0, 1.0)]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_point(Point::new(1.0, 1.0)), vec![0]);
        assert!(t.query_point(Point::new(2.0, 2.0)).is_empty());
    }

    #[test]
    fn grid_of_points_window_query() {
        // 20x20 lattice.
        let mut pts = Vec::new();
        for y in 0..20 {
            for x in 0..20 {
                pts.push(Point::new(x as f64, y as f64));
            }
        }
        let t = RTree::bulk_load(point_boxes(&pts));
        assert_eq!(t.len(), 400);
        let q = BBox::new(Point::new(2.5, 2.5), Point::new(5.5, 4.5));
        let mut hits = t.query(&q);
        hits.sort_unstable();
        // x in {3,4,5}, y in {3,4} => 6 points.
        assert_eq!(hits.len(), 6);
        for id in hits {
            assert!(q.contains(pts[id as usize]));
        }
    }

    #[test]
    fn query_matches_brute_force() {
        // Deterministic pseudo-random boxes.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let boxes: Vec<BBox> = (0..500)
            .map(|_| {
                let x = next() * 100.0;
                let y = next() * 100.0;
                let w = next() * 5.0;
                let h = next() * 5.0;
                BBox::new(Point::new(x, y), Point::new(x + w, y + h))
            })
            .collect();
        let t = RTree::bulk_load(boxes.clone());
        for _ in 0..20 {
            let x = next() * 100.0;
            let y = next() * 100.0;
            let q = BBox::new(Point::new(x, y), Point::new(x + 10.0, y + 10.0));
            let mut got = t.query(&q);
            got.sort_unstable();
            let want: Vec<u32> = boxes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.intersects(&q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn tree_bbox_covers_items() {
        let pts = [
            Point::new(-5.0, 2.0),
            Point::new(8.0, -3.0),
            Point::new(0.0, 9.0),
        ];
        let t = RTree::bulk_load(point_boxes(&pts));
        let b = t.bbox();
        for p in pts {
            assert!(b.contains(p));
        }
    }

    #[test]
    fn large_bulk_load_depth() {
        let pts: Vec<Point> = (0..5000)
            .map(|i| Point::new((i % 71) as f64, (i / 71) as f64))
            .collect();
        let t = RTree::bulk_load(point_boxes(&pts));
        assert_eq!(t.len(), 5000);
        // Every point must be findable.
        assert_eq!(t.query_point(Point::new(0.0, 0.0)), vec![0]);
        let last = pts.len() - 1;
        assert_eq!(t.query_point(pts[last]), vec![last as u32]);
    }
}
