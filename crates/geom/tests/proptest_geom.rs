//! Property-based tests for the geometry substrate's invariants.

use canvas_geom::clip::{clip_ring_bbox, clip_ring_halfplane};
use canvas_geom::distance::{point_polygon_dist, point_segment_dist};
use canvas_geom::hull::{convex_hull, hull_contains};
use canvas_geom::predicates::{point_in_ring, signed_area, winding_number, Containment};
use canvas_geom::rtree::RTree;
use canvas_geom::segment::Segment;
use canvas_geom::triangulate::{point_in_triangle, triangles_area, triangulate_polygon};
use canvas_geom::{BBox, Point, Polygon};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

/// A random star-shaped polygon around the origin (always simple).
fn arb_star_polygon() -> impl Strategy<Value = Polygon> {
    (3usize..24, 0u64..1_000_000).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..n)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / n as f64;
                let r = 10.0 + 40.0 * next();
                Point::new(r * ang.cos(), r * ang.sin())
            })
            .collect();
        Polygon::simple(pts).expect("star polygon is simple")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Crossing-number and winding-number PIP agree off the boundary.
    #[test]
    fn pip_crossing_equals_winding(poly in arb_star_polygon(), p in arb_point()) {
        let ring = poly.outer().vertices();
        match point_in_ring(p, ring) {
            Containment::OnBoundary => {} // winding is unspecified on boundary
            Containment::Inside => prop_assert!(winding_number(p, ring) != 0),
            Containment::Outside => prop_assert!(winding_number(p, ring) == 0),
        }
    }

    /// The convex hull contains every input point and is itself convex.
    #[test]
    fn hull_invariants(pts in prop::collection::vec(arb_point(), 3..80)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            prop_assert!(signed_area(&hull) > 0.0, "hull must be CCW");
            for p in &pts {
                prop_assert!(hull_contains(&hull, *p), "hull lost {p}");
            }
            // Convexity: every vertex triple turns left (non-strict for
            // numeric tolerance, but collinear points were dropped).
            let n = hull.len();
            for i in 0..n {
                let a = hull[i];
                let b = hull[(i + 1) % n];
                let c = hull[(i + 2) % n];
                prop_assert!((b - a).cross(c - b) > 0.0, "reflex at {i}");
            }
        }
    }

    /// Ear-clipping preserves area and covers exactly the polygon:
    /// sampled points are inside the polygon iff some triangle covers
    /// them (boundary excluded to avoid tie ambiguity).
    #[test]
    fn triangulation_area_and_coverage(poly in arb_star_polygon(), p in arb_point()) {
        let tris = triangulate_polygon(&poly);
        prop_assert_eq!(tris.len(), poly.outer().len() - 2);
        let area = triangles_area(&tris);
        prop_assert!(
            (area - poly.area()).abs() <= 1e-6 * poly.area().max(1.0),
            "area {} vs {}", area, poly.area()
        );
        match poly.contains(p) {
            Containment::Inside => prop_assert!(
                tris.iter().any(|t| point_in_triangle(p, t[0], t[1], t[2])),
                "interior point uncovered"
            ),
            Containment::Outside => {
                // Strictly outside points can only touch triangle edges
                // through numeric noise; require no *strict* coverage.
                let strictly_covered = tris.iter().any(|t| {
                    let d1 = (t[1] - t[0]).cross(p - t[0]);
                    let d2 = (t[2] - t[1]).cross(p - t[1]);
                    let d3 = (t[0] - t[2]).cross(p - t[2]);
                    d1 > 1e-9 && d2 > 1e-9 && d3 > 1e-9
                });
                prop_assert!(!strictly_covered, "exterior point covered");
            }
            Containment::OnBoundary => {}
        }
    }

    /// Half-plane clipping never grows area and the result is inside the
    /// half-plane.
    #[test]
    fn clip_halfplane_shrinks(
        poly in arb_star_polygon(),
        a in -1.0f64..1.0,
        b in -1.0f64..1.0,
        c in -50.0f64..50.0,
    ) {
        prop_assume!(a.abs() + b.abs() > 1e-6);
        let ring = poly.outer().vertices();
        let clipped = clip_ring_halfplane(ring, a, b, c);
        let area = signed_area(&clipped);
        prop_assert!(area >= -1e-9);
        prop_assert!(area <= poly.area() + 1e-6 * poly.area());
        for p in &clipped {
            prop_assert!(a * p.x + b * p.y + c <= 1e-6, "vertex outside half-plane");
        }
    }

    /// Box clipping result lies within both the box and the polygon area
    /// bound.
    #[test]
    fn clip_bbox_bounded(poly in arb_star_polygon(), q in arb_point(), w in 1.0f64..80.0) {
        let window = BBox::new(q, q + Point::new(w, w));
        let clipped = clip_ring_bbox(poly.outer().vertices(), &window);
        let area = signed_area(&clipped);
        prop_assert!(area >= -1e-9);
        prop_assert!(area <= window.area() + 1e-6);
        prop_assert!(area <= poly.area() + 1e-6 * poly.area().max(1.0));
        for p in &clipped {
            prop_assert!(window.inflated(1e-9).contains(*p));
        }
    }

    /// Segment intersection is symmetric.
    #[test]
    fn segment_intersection_symmetric(
        a in arb_point(), b in arb_point(), c in arb_point(), d in arb_point(),
    ) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    /// Point-segment distance is zero iff the point is on the segment,
    /// and satisfies the triangle-ish bound d(p, seg) <= d(p, endpoint).
    #[test]
    fn point_segment_distance_bounds(p in arb_point(), a in arb_point(), b in arb_point()) {
        let s = Segment::new(a, b);
        let d = point_segment_dist(p, &s);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= p.dist(a) + 1e-9);
        prop_assert!(d <= p.dist(b) + 1e-9);
        if s.contains(p) {
            prop_assert!(d <= 1e-6, "on-segment point at distance {}", d);
        }
    }

    /// Polygon distance is zero exactly on the closed region.
    #[test]
    fn polygon_distance_zero_iff_inside(poly in arb_star_polygon(), p in arb_point()) {
        let d = point_polygon_dist(p, &poly);
        match poly.contains(p) {
            Containment::Outside => prop_assert!(d > 0.0),
            _ => prop_assert_eq!(d, 0.0),
        }
    }

    /// R-tree window queries equal brute force.
    #[test]
    fn rtree_matches_bruteforce(
        pts in prop::collection::vec(arb_point(), 1..200),
        q in arb_point(),
        w in 1.0f64..100.0,
    ) {
        let boxes: Vec<BBox> = pts.iter().map(|p| BBox::new(*p, *p)).collect();
        let tree = RTree::bulk_load(boxes);
        let window = BBox::new(q, q + Point::new(w, w));
        let mut got = tree.query(&window);
        got.sort_unstable();
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| window.contains(**p))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// The edge-BVH PIP kernel agrees with the linear kernel everywhere.
    #[test]
    fn bvh_pip_equals_linear(poly in arb_star_polygon(), p in arb_point()) {
        let bvh = canvas_geom::bvh::EdgeBvh::build(&poly);
        prop_assert_eq!(bvh.contains_closed(p), poly.contains_closed(p));
    }

    /// WKT round-trips preserve geometry.
    #[test]
    fn wkt_roundtrip(poly in arb_star_polygon()) {
        let obj = canvas_geom::GeomObject::polygon(poly.clone());
        let text = canvas_geom::wkt::to_wkt(&obj);
        let back = canvas_geom::wkt::parse_wkt(&text).unwrap();
        match &back.primitives()[0] {
            canvas_geom::Primitive::Area(p2) => {
                prop_assert!((p2.area() - poly.area()).abs() <= 1e-9 * poly.area().max(1.0));
                prop_assert_eq!(p2.num_vertices(), poly.num_vertices());
            }
            other => prop_assert!(false, "expected polygon, got {:?}", other),
        }
    }
}
