//! The "traditional" GPU baseline (paper Section 6, and \[11\] in the
//! paper's references): the CPU algorithm ported to the GPU — one PIP
//! compute thread per point, testing against every constraint polygon.
//!
//! **Substitution note.** With no physical GPU in this container, the
//! kernel computes its (exact) answer on the CPU while charging its work
//! — per-point edge tests plus the point-buffer upload — to the device
//! cost model as a *compute kernel* (`compute_edge_tests`). The modeled
//! time is what Figure 9's "GPU baseline" series reports; the key
//! structural property is preserved: this baseline's work grows with
//! `points × polygons × vertices`, whereas the canvas approach pays one
//! fragment per point plus one constraint render.

use crate::cpu::BaselineResult;
use crate::pip::pip_counted;
use canvas_core::Device;
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;

/// Runs the traditional GPU selection baseline on the given device.
/// Returns exact results; all work lands in the device stats.
pub fn select_gpu_baseline(
    dev: &mut Device,
    points: &[Point],
    constraints: &[Polygon],
) -> BaselineResult {
    // Upload of the point buffer (x, y as f32) and polygon vertices.
    dev.pipeline().note_upload((points.len() * 8) as u64);
    let poly_bytes: u64 = constraints
        .iter()
        .map(|p| (p.num_vertices() * 8) as u64)
        .sum();
    dev.pipeline().note_upload(poly_bytes);

    // The kernel: data-parallel PIP tests. No short-circuiting across
    // the warp — a GPU pays for the full constraint list per point
    // (divergence makes early-exit ineffective), which is why the
    // baseline degrades with more constraints (Figure 9c/d).
    let mut out = BaselineResult::default();
    for (i, p) in points.iter().enumerate() {
        let mut hit = false;
        for poly in constraints {
            let (inside, edges) = pip_counted(*p, poly);
            out.edge_tests += edges;
            hit |= inside;
        }
        if hit {
            out.records.push(i as u32);
        }
    }
    dev.pipeline().note_compute_edge_tests(out.edge_tests);
    // Result bitmap readback.
    dev.pipeline()
        .note_download(points.len().div_ceil(8) as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::select_scalar;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    #[test]
    fn gpu_baseline_matches_cpu_results() {
        let pts = random_points(500, 71);
        let qs = vec![square(10.0, 20.0, 35.0), square(45.0, 40.0, 40.0)];
        let mut dev = Device::nvidia();
        let gpu = select_gpu_baseline(&mut dev, &pts, &qs);
        let cpu = select_scalar(&pts, &qs);
        assert_eq!(gpu.records, cpu.records);
    }

    #[test]
    fn work_charged_to_device() {
        let pts = random_points(100, 5);
        let q = square(10.0, 10.0, 50.0);
        let mut dev = Device::nvidia();
        let r = select_gpu_baseline(&mut dev, &pts, std::slice::from_ref(&q));
        let st = dev.stats();
        assert_eq!(st.compute_edge_tests, r.edge_tests);
        assert!(st.bytes_uploaded >= 800);
        assert!(st.bytes_downloaded > 0);
        assert!(dev.modeled_time() > 0.0);
    }

    #[test]
    fn no_short_circuit_pays_full_constraints() {
        // GPU kernel tests every constraint even after a hit.
        let pts = vec![Point::new(15.0, 15.0)]; // inside both squares
        let qs = vec![square(10.0, 10.0, 20.0), square(12.0, 12.0, 20.0)];
        let mut dev = Device::nvidia();
        let r = select_gpu_baseline(&mut dev, &pts, &qs);
        assert_eq!(r.records, vec![0]);
        assert_eq!(r.edge_tests, 8, "4 edges per square, both tested");
    }
}
