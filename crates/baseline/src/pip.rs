//! The point-in-polygon refinement kernel shared by all baselines.
//!
//! The paper's evaluation (Section 6) isolates the *refinement* step:
//! "we only need to implement the PIP tests for the above baselines".
//! This kernel is that test — a crossing-number walk over the polygon's
//! edges — instrumented with an edge-test counter so the device cost
//! model can charge the same work to different hardware.

use canvas_geom::polygon::Polygon;
use canvas_geom::Point;

/// Closed point-in-polygon test returning the number of edge tests
/// performed (the baseline's unit of work).
///
/// Semantics match `Polygon::contains_closed` (boundary counts as
/// inside), so baselines and canvas queries agree bit-for-bit.
#[inline]
pub fn pip_counted(p: Point, poly: &Polygon) -> (bool, u64) {
    // Cheap MBR reject — both the canvas and the baselines get this.
    let bbox = poly.bbox();
    if !bbox.contains(p) {
        return (false, 1);
    }
    let mut edges = 0u64;
    let mut inside = false;
    let mut on_boundary = false;
    for (ri, ring) in std::iter::once(poly.outer())
        .chain(poly.holes().iter())
        .enumerate()
    {
        let verts = ring.vertices();
        let n = verts.len();
        let mut ring_inside = false;
        let mut j = n - 1;
        for i in 0..n {
            edges += 1;
            let a = verts[j];
            let b = verts[i];
            if canvas_geom::predicates::on_segment(p, a, b) {
                on_boundary = true;
            }
            if (b.y > p.y) != (a.y > p.y) {
                let t = (p.y - b.y) / (a.y - b.y);
                if p.x < b.x + t * (a.x - b.x) {
                    ring_inside = !ring_inside;
                }
            }
            j = i;
        }
        if ri == 0 {
            inside = ring_inside;
            if !inside && !on_boundary {
                break; // outside the outer ring: holes are irrelevant
            }
        } else if ring_inside {
            inside = false; // inside a hole
        }
    }
    (inside || on_boundary, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::polygon::Ring;

    fn square(side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(side, 0.0),
            Point::new(side, side),
            Point::new(0.0, side),
        ])
        .unwrap()
    }

    #[test]
    fn agrees_with_polygon_contains_closed() {
        let poly = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 1.0),
            Point::new(6.0, 7.0),
            Point::new(2.0, 5.0),
        ])
        .unwrap();
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..500 {
            let p = Point::new(next() * 10.0 - 1.0, next() * 10.0 - 1.0);
            let (got, _) = pip_counted(p, &poly);
            assert_eq!(got, poly.contains_closed(p), "disagree at {p}");
        }
    }

    #[test]
    fn counts_edges_inside() {
        let sq = square(4.0);
        let (inside, edges) = pip_counted(Point::new(2.0, 2.0), &sq);
        assert!(inside);
        assert_eq!(edges, 4);
    }

    #[test]
    fn mbr_reject_costs_one() {
        let sq = square(4.0);
        let (inside, edges) = pip_counted(Point::new(100.0, 100.0), &sq);
        assert!(!inside);
        assert_eq!(edges, 1);
    }

    #[test]
    fn boundary_counts_as_inside() {
        let sq = square(4.0);
        assert!(pip_counted(Point::new(0.0, 2.0), &sq).0);
        assert!(pip_counted(Point::new(4.0, 4.0), &sq).0);
    }

    #[test]
    fn holes_respected() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
        ])
        .unwrap();
        let donut = Polygon::new(outer, vec![hole]);
        assert!(pip_counted(Point::new(2.0, 2.0), &donut).0);
        assert!(!pip_counted(Point::new(5.0, 5.0), &donut).0);
        assert!(pip_counted(Point::new(4.0, 5.0), &donut).0); // hole edge
    }
}
