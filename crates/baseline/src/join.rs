//! Traditional join and aggregation baselines: index filter + PIP
//! refinement, then aggregate over the materialized pairs — the
//! "typical evaluation strategy used by existing systems" that
//! Section 5.2 contrasts with the RasterJoin-style canvas plan.

use crate::pip::pip_counted;
use canvas_geom::grid::{GridIndexBuilder, VisitedMask};
use canvas_geom::polygon::Polygon;
use canvas_geom::rtree::RTree;
use canvas_geom::{BBox, Point};

/// Join result: `(point_index, polygon_index)` pairs plus work counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JoinResult {
    pub pairs: Vec<(u32, u32)>,
    pub edge_tests: u64,
}

/// Point–polygon join with an R-tree filter over polygon MBRs and PIP
/// refinement (the classical filter-and-refine pipeline).
pub fn join_rtree(points: &[Point], polygons: &[Polygon]) -> JoinResult {
    let tree = RTree::bulk_load(polygons.iter().map(|p| p.bbox()).collect());
    let mut out = JoinResult::default();
    let mut candidates = Vec::new();
    for (i, p) in points.iter().enumerate() {
        candidates.clear();
        tree.query_into(&BBox::new(*p, *p), &mut candidates);
        for &j in &candidates {
            let (inside, edges) = pip_counted(*p, &polygons[j as usize]);
            out.edge_tests += edges;
            if inside {
                out.pairs.push((i as u32, j));
            }
        }
    }
    out.pairs.sort_unstable_by_key(|&(p, y)| (y, p));
    out
}

/// Point–polygon join with a uniform-grid filter (alternative index; the
/// paper's related work cites the grid file as the other classic).
///
/// The polygon MBRs go into the flat CSR [`canvas_geom::grid::GridIndex`];
/// each point then
/// probes exactly one cell, whose candidates are a contiguous,
/// duplicate-free slice — no per-query allocation at all.
pub fn join_grid(points: &[Point], polygons: &[Polygon], extent: BBox) -> JoinResult {
    let mut builder = GridIndexBuilder::with_target_occupancy(extent, polygons.len().max(16), 4);
    for (j, poly) in polygons.iter().enumerate() {
        builder.insert(j as u32, &poly.bbox());
    }
    let grid = builder.build();
    let mut out = JoinResult::default();
    for (i, p) in points.iter().enumerate() {
        for &j in grid.query_point(*p) {
            let (inside, edges) = pip_counted(*p, &polygons[j as usize]);
            out.edge_tests += edges;
            if inside {
                out.pairs.push((i as u32, j));
            }
        }
    }
    out.pairs.sort_unstable_by_key(|&(p, y)| (y, p));
    out.pairs.dedup();
    out
}

/// The transposed grid join: points go into the CSR grid, each polygon
/// issues one box query over its MBR. Multi-cell box queries would
/// otherwise yield duplicate candidates (a cell per overlap), so the
/// filter deduplicates through a reusable [`VisitedMask`] — the
/// generation-stamped bitmap replaces the old sort+dedup allocation per
/// query.
pub fn join_grid_points_indexed(
    points: &[Point],
    polygons: &[Polygon],
    extent: BBox,
) -> JoinResult {
    // Aspect-aware sizing (~1 point per cell): skewed extents get
    // near-square cells instead of slivers, keeping box queries tight.
    let mut builder = GridIndexBuilder::with_target_occupancy(extent, points.len().max(1), 1);
    for (i, &p) in points.iter().enumerate() {
        builder.insert_point(i as u32, p);
    }
    let grid = builder.build();
    let mut out = JoinResult::default();
    let mut visited = VisitedMask::new();
    let mut candidates: Vec<u32> = Vec::new();
    for (j, poly) in polygons.iter().enumerate() {
        candidates.clear();
        grid.query_into(&poly.bbox(), &mut visited, &mut candidates);
        for &i in &candidates {
            let (inside, edges) = pip_counted(points[i as usize], poly);
            out.edge_tests += edges;
            if inside {
                out.pairs.push((i, j as u32));
            }
        }
    }
    out.pairs.sort_unstable_by_key(|&(p, y)| (y, p));
    out
}

/// Join-then-aggregate: materializes the join result, then counts and
/// sums per polygon group (the traditional plan for
/// `SELECT COUNT(*) … GROUP BY polygon`).
pub fn aggregate_join_baseline(
    points: &[Point],
    weights: &[f32],
    polygons: &[Polygon],
) -> (Vec<u64>, Vec<f64>, u64) {
    let join = join_rtree(points, polygons);
    let mut counts = vec![0u64; polygons.len()];
    let mut sums = vec![0.0f64; polygons.len()];
    for (p, y) in join.pairs {
        counts[y as usize] += 1;
        sums[y as usize] += weights[p as usize] as f64;
    }
    (counts, sums, join.edge_tests)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    fn brute_pairs(points: &[Point], polygons: &[Polygon]) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (j, poly) in polygons.iter().enumerate() {
            for (i, p) in points.iter().enumerate() {
                if poly.contains_closed(*p) {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out.sort_unstable_by_key(|&(p, y)| (y, p));
        out
    }

    #[test]
    fn rtree_join_matches_brute_force() {
        let pts = random_points(400, 91);
        let polys = vec![
            square(5.0, 5.0, 30.0),
            square(40.0, 40.0, 35.0),
            square(20.0, 20.0, 40.0),
        ];
        let got = join_rtree(&pts, &polys);
        assert_eq!(got.pairs, brute_pairs(&pts, &polys));
        assert!(got.edge_tests > 0);
    }

    #[test]
    fn grid_join_matches_rtree_join() {
        let pts = random_points(400, 92);
        let polys = vec![square(10.0, 15.0, 25.0), square(45.0, 50.0, 30.0)];
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let a = join_rtree(&pts, &polys);
        let b = join_grid(&pts, &polys, extent);
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn point_indexed_grid_join_matches_rtree_join() {
        let pts = random_points(600, 95);
        let polys = vec![
            square(10.0, 15.0, 25.0),
            square(45.0, 50.0, 30.0),
            square(5.0, 60.0, 38.0), // overlaps the second: shared candidates
        ];
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let a = join_rtree(&pts, &polys);
        let b = join_grid_points_indexed(&pts, &polys, extent);
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn index_filter_saves_edge_tests() {
        let pts = random_points(1000, 93);
        // Small disjoint polygons: most points filtered by the index.
        let polys: Vec<Polygon> = (0..10).map(|i| square(10.0 * i as f64, 5.0, 4.0)).collect();
        let indexed = join_rtree(&pts, &polys);
        // Unindexed nested loop pays for every (point, polygon) pair.
        let mut brute_edges = 0u64;
        for p in &pts {
            for poly in &polys {
                brute_edges += pip_counted(*p, poly).1;
            }
        }
        assert!(indexed.edge_tests < brute_edges / 2);
    }

    #[test]
    fn aggregate_baseline_counts() {
        let pts = random_points(300, 94);
        let weights: Vec<f32> = (0..pts.len()).map(|i| (i % 7) as f32).collect();
        let polys = vec![square(0.0, 0.0, 50.0), square(50.0, 50.0, 50.0)];
        let (counts, sums, _) = aggregate_join_baseline(&pts, &weights, &polys);
        for (j, poly) in polys.iter().enumerate() {
            let expect_n = pts.iter().filter(|p| poly.contains_closed(**p)).count() as u64;
            let expect_s: f64 = pts
                .iter()
                .zip(&weights)
                .filter(|(p, _)| poly.contains_closed(**p))
                .map(|(_, w)| *w as f64)
                .sum();
            assert_eq!(counts[j], expect_n);
            assert!((sums[j] - expect_s).abs() < 1e-9);
        }
    }
}
