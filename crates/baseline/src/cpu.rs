//! CPU baselines: single-threaded and OpenMP-style parallel refinement
//! (the paper's "CPU baseline" and "parallel CPU implementation using
//! OpenMP", Section 6).
//!
//! Both run the same PIP refinement over every input point; the parallel
//! variant forks std scoped threads over point chunks, which is
//! structurally what `#pragma omp parallel for` compiles to.

use crate::pip::pip_counted;
use canvas_geom::polygon::Polygon;
use canvas_geom::Point;

/// Output of a baseline selection: matching record indexes plus the
/// number of PIP edge tests performed (the cost-model work unit).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineResult {
    pub records: Vec<u32>,
    pub edge_tests: u64,
}

/// Single-threaded selection with a disjunction of polygon constraints
/// (one polygon = ordinary selection). Existing approaches "test the
/// points with respect to each of the polygonal constraints" — so the
/// work scales with the number of constraints, which is exactly what
/// Figure 9(c,d) punishes.
pub fn select_scalar(points: &[Point], constraints: &[Polygon]) -> BaselineResult {
    let mut out = BaselineResult::default();
    for (i, p) in points.iter().enumerate() {
        let mut hit = false;
        for poly in constraints {
            let (inside, edges) = pip_counted(*p, poly);
            out.edge_tests += edges;
            if inside {
                hit = true;
                break; // disjunction short-circuits on first hit
            }
        }
        if hit {
            out.records.push(i as u32);
        }
    }
    out
}

/// Conjunction variant (point must be inside every constraint).
pub fn select_scalar_conjunction(points: &[Point], constraints: &[Polygon]) -> BaselineResult {
    let mut out = BaselineResult::default();
    for (i, p) in points.iter().enumerate() {
        let mut hit = true;
        for poly in constraints {
            let (inside, edges) = pip_counted(*p, poly);
            out.edge_tests += edges;
            if !inside {
                hit = false;
                break;
            }
        }
        if hit {
            out.records.push(i as u32);
        }
    }
    out
}

/// Selection with a pre-built edge BVH per constraint — the optimized
/// refinement kernel (and the software analogue of the paper's
/// ray-tracing "alternate implementation", Section 5). Exact; visits
/// `O(log E)` edges per test instead of all of them.
pub fn select_scalar_bvh(points: &[Point], constraints: &[Polygon]) -> BaselineResult {
    let bvhs: Vec<canvas_geom::bvh::EdgeBvh> = constraints
        .iter()
        .map(canvas_geom::bvh::EdgeBvh::build)
        .collect();
    let boxes: Vec<canvas_geom::BBox> = constraints.iter().map(|c| c.bbox()).collect();
    let mut out = BaselineResult::default();
    for (i, p) in points.iter().enumerate() {
        let mut hit = false;
        for (bvh, bbox) in bvhs.iter().zip(&boxes) {
            if !bbox.contains(*p) {
                out.edge_tests += 1;
                continue;
            }
            let (crossings, on_boundary, visited) = bvh.crossings(*p);
            out.edge_tests += visited as u64;
            if on_boundary || crossings % 2 == 1 {
                hit = true;
                break;
            }
        }
        if hit {
            out.records.push(i as u32);
        }
    }
    out
}

/// OpenMP-style parallel selection: fork-join over point chunks.
pub fn select_parallel(
    points: &[Point],
    constraints: &[Polygon],
    threads: usize,
) -> BaselineResult {
    let threads = threads.max(1);
    if threads == 1 || points.len() < 1024 {
        return select_scalar(points, constraints);
    }
    let chunk = points.len().div_ceil(threads);
    let results: Vec<BaselineResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move || {
                    let mut r = select_scalar(slice, constraints);
                    let base = (ci * chunk) as u32;
                    for rec in &mut r.records {
                        *rec += base;
                    }
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("baseline worker panicked"))
            .collect()
    });

    let mut out = BaselineResult::default();
    for r in results {
        out.records.extend(r.records);
        out.edge_tests += r.edge_tests;
    }
    out.records.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect()
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    #[test]
    fn scalar_matches_exact() {
        let pts = random_points(300, 17);
        let q = square(20.0, 20.0, 40.0);
        let got = select_scalar(&pts, std::slice::from_ref(&q));
        let want: Vec<u32> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains_closed(**p))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got.records, want);
        assert!(got.edge_tests > 0);
    }

    #[test]
    fn parallel_matches_scalar() {
        let pts = random_points(5000, 23);
        let qs = vec![square(10.0, 10.0, 30.0), square(50.0, 50.0, 35.0)];
        let s = select_scalar(&pts, &qs);
        let p = select_parallel(&pts, &qs, 4);
        assert_eq!(s.records, p.records);
        // Edge-test counts can differ only if chunk boundaries change
        // short-circuiting — they don't for disjunction over points.
        assert_eq!(s.edge_tests, p.edge_tests);
    }

    #[test]
    fn disjunction_vs_conjunction() {
        let pts = vec![
            Point::new(15.0, 15.0), // A only
            Point::new(55.0, 55.0), // B only
            Point::new(52.0, 52.0), // both? A=(10..40), B=(50..85): no
            Point::new(95.0, 95.0), // neither
        ];
        let a = square(10.0, 10.0, 30.0);
        let b = square(50.0, 50.0, 35.0);
        let dis = select_scalar(&pts, &[a.clone(), b.clone()]);
        assert_eq!(dis.records, vec![0, 1, 2]);
        let con = select_scalar_conjunction(&pts, &[a, b]);
        assert!(con.records.is_empty());
    }

    #[test]
    fn more_constraints_cost_more_edges() {
        // The Figure 9(c) effect: baselines pay per constraint.
        let pts = random_points(1000, 3);
        let far_a = square(200.0, 200.0, 10.0); // never hit: no short-circuit
        let far_b = square(300.0, 300.0, 10.0);
        let one = select_scalar(&pts, std::slice::from_ref(&far_a));
        let two = select_scalar(&pts, &[far_a, far_b]);
        assert!(two.edge_tests > one.edge_tests);
    }

    #[test]
    fn bvh_selection_matches_scalar_with_fewer_edges() {
        let pts = random_points(2000, 77);
        // Complex polygon where the BVH pays off.
        let verts: Vec<Point> = (0..512)
            .map(|i| {
                let ang = std::f64::consts::TAU * i as f64 / 512.0;
                let r = 30.0 + 10.0 * ((i * 7 % 13) as f64 / 13.0);
                Point::new(50.0 + r * ang.cos(), 50.0 + r * ang.sin())
            })
            .collect();
        let poly = Polygon::simple(verts).unwrap();
        let scalar = select_scalar(&pts, std::slice::from_ref(&poly));
        let bvh = select_scalar_bvh(&pts, std::slice::from_ref(&poly));
        assert_eq!(scalar.records, bvh.records);
        assert!(
            bvh.edge_tests * 3 < scalar.edge_tests,
            "bvh {} vs scalar {} edge tests",
            bvh.edge_tests,
            scalar.edge_tests
        );
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(
            select_scalar(&[], &[square(0.0, 0.0, 1.0)]).records,
            vec![] as Vec<u32>
        );
        let pts = random_points(5, 2);
        let r = select_scalar(&pts, &[]);
        assert!(r.records.is_empty());
        assert_eq!(r.edge_tests, 0);
    }
}
