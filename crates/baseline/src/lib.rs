//! # canvas-baseline
//!
//! The comparison approaches of the paper's evaluation (Section 6):
//!
//! * [`cpu::select_scalar`] — the single-threaded CPU refinement every
//!   speedup in Figures 9–10 is measured against,
//! * [`cpu::select_parallel`] — the OpenMP-style parallel CPU baseline
//!   (scoped-thread fork-join over point chunks),
//! * [`gpu::select_gpu_baseline`] — the "traditional GPU" approach
//!   (\[11\] in the paper): one PIP thread per point, charged to the
//!   device cost model (see the substitution note in that module),
//! * [`join`] — classical filter-and-refine joins (R-tree / uniform
//!   grid) and the join-then-aggregate plan that RasterJoin-style
//!   aggregation (Section 5.2) is compared with.
//!
//! All baselines are *exact* and intentionally share the PIP kernel in
//! [`pip`] so that result equality with the canvas algebra can be
//! asserted bit-for-bit in the integration tests.

pub mod cpu;
pub mod gpu;
pub mod join;
pub mod pip;

pub use cpu::{
    select_parallel, select_scalar, select_scalar_bvh, select_scalar_conjunction, BaselineResult,
};
pub use gpu::select_gpu_baseline;
pub use join::{
    aggregate_join_baseline, join_grid, join_grid_points_indexed, join_rtree, JoinResult,
};
pub use pip::pip_counted;
