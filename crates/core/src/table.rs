//! `SpatialTable`: a relational-flavored facade over the canvas engine.
//!
//! The paper positions the canvas as *the dual of a relational tuple*
//! (Section 7): systems keep ordinary tables whose spatial attributes
//! link to canvases rendered on demand, "unbeknownst to the users". This
//! module is that integration surface — a table of geometric objects
//! plus named numeric attributes, loadable from WKT, with query methods
//! that dispatch onto the Section 4 formulations by geometry type.

use std::collections::BTreeMap;

use crate::canvas::{AreaSource, LineSource, PointBatch};
use crate::device::Device;
use crate::queries::selection;
use canvas_geom::polygon::Polygon;
use canvas_geom::wkt::{parse_wkt, WktError};
use canvas_geom::{BBox, GeomObject, Point, Primitive};
use canvas_raster::Viewport;

/// Errors from table construction and queries.
#[derive(Debug)]
pub enum TableError {
    /// WKT input failed to parse (row index + parser error).
    Wkt { row: usize, source: WktError },
    /// An attribute column's length does not match the table.
    AttrLength {
        name: String,
        expected: usize,
        got: usize,
    },
    /// The requested operation needs a homogeneous geometry type the
    /// table does not have.
    MixedGeometry { wanted: &'static str },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Wkt { row, source } => write!(f, "row {row}: {source}"),
            TableError::AttrLength {
                name,
                expected,
                got,
            } => write!(
                f,
                "attribute '{name}' has {got} values for {expected} records"
            ),
            TableError::MixedGeometry { wanted } => {
                write!(f, "operation requires all-{wanted} geometry")
            }
        }
    }
}

impl std::error::Error for TableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TableError::Wkt { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A spatial data set: one geometric-object attribute (Definition 3)
/// plus named numeric attribute columns.
#[derive(Clone, Debug, Default)]
pub struct SpatialTable {
    objects: Vec<GeomObject>,
    attrs: BTreeMap<String, Vec<f32>>,
}

impl SpatialTable {
    pub fn new() -> Self {
        SpatialTable::default()
    }

    /// Builds a table from WKT rows (one geometry per line; blank lines
    /// skipped).
    pub fn from_wkt_lines(lines: &str) -> Result<Self, TableError> {
        let mut t = SpatialTable::new();
        for (row, line) in lines.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let obj = parse_wkt(line).map_err(|source| TableError::Wkt { row, source })?;
            t.objects.push(obj);
        }
        Ok(t)
    }

    /// Appends a record; returns its id.
    pub fn push(&mut self, object: GeomObject) -> u32 {
        self.objects.push(object);
        (self.objects.len() - 1) as u32
    }

    /// Attaches (or replaces) a numeric attribute column.
    pub fn set_attr(&mut self, name: &str, values: Vec<f32>) -> Result<(), TableError> {
        if values.len() != self.objects.len() {
            return Err(TableError::AttrLength {
                name: name.to_string(),
                expected: self.objects.len(),
                got: values.len(),
            });
        }
        self.attrs.insert(name.to_string(), values);
        Ok(())
    }

    pub fn attr(&self, name: &str) -> Option<&[f32]> {
        self.attrs.get(name).map(Vec::as_slice)
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    pub fn object(&self, id: u32) -> &GeomObject {
        &self.objects[id as usize]
    }

    pub fn objects(&self) -> &[GeomObject] {
        &self.objects
    }

    /// Union bounding box of all records.
    pub fn extent(&self) -> BBox {
        self.objects
            .iter()
            .fold(BBox::EMPTY, |b, o| b.union(&o.bbox()))
    }

    /// A viewport covering the table's extent (with a small margin so
    /// boundary geometry is never clipped).
    pub fn viewport(&self, max_dim: u32) -> Viewport {
        let b = self.extent();
        let margin = 0.01 * b.width().max(b.height()).max(1.0);
        Viewport::square_pixels(b.inflated(margin), max_dim)
    }

    /// A flat CSR grid index over the records' bounding boxes, sized for
    /// roughly `items_per_cell` records per cell — the filter-step index
    /// for candidate pruning before canvas evaluation (e.g. restricting
    /// a join's polygon side to records whose MBR meets the query MBR).
    pub fn grid_index(&self, items_per_cell: usize) -> canvas_geom::grid::GridIndex {
        // An empty table (or a degenerate single-point extent) has an
        // empty bbox, which the builder rejects; a unit extent gives a
        // valid, trivially empty index instead.
        let extent = self.extent().inflated(1e-9);
        let extent = if extent.is_empty() {
            BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
        } else {
            extent
        };
        let mut b = canvas_geom::grid::GridIndexBuilder::with_target_occupancy(
            extent,
            self.len().max(1),
            items_per_cell.max(1),
        );
        for (i, o) in self.objects.iter().enumerate() {
            b.insert(i as u32, &o.bbox());
        }
        b.build()
    }

    /// The table as a point batch, if every record is a single point.
    /// `weight_attr` selects the weight column (unit weights otherwise).
    pub fn as_points(&self, weight_attr: Option<&str>) -> Result<PointBatch, TableError> {
        let mut pts = Vec::with_capacity(self.len());
        for o in &self.objects {
            match o.primitives() {
                [Primitive::Point(p)] => pts.push(*p),
                _ => return Err(TableError::MixedGeometry { wanted: "point" }),
            }
        }
        let weights = match weight_attr {
            Some(name) => self
                .attr(name)
                .ok_or_else(|| TableError::AttrLength {
                    name: name.to_string(),
                    expected: self.len(),
                    got: 0,
                })?
                .to_vec(),
            None => vec![1.0; pts.len()],
        };
        Ok(PointBatch {
            ids: (0..pts.len() as u32).collect(),
            points: pts,
            weights,
        })
    }

    /// The table as a polygon source, if every record is a single
    /// polygon.
    pub fn as_polygons(&self) -> Result<AreaSource, TableError> {
        let mut polys = Vec::with_capacity(self.len());
        for o in &self.objects {
            match o.primitives() {
                [Primitive::Area(p)] => polys.push(p.clone()),
                _ => return Err(TableError::MixedGeometry { wanted: "polygon" }),
            }
        }
        Ok(std::sync::Arc::new(polys))
    }

    /// The table as a polyline source, if every record is a single line.
    pub fn as_lines(&self) -> Result<LineSource, TableError> {
        let mut lines = Vec::with_capacity(self.len());
        for o in &self.objects {
            match o.primitives() {
                [Primitive::Line(l)] => lines.push(l.clone()),
                _ => return Err(TableError::MixedGeometry { wanted: "line" }),
            }
        }
        Ok(std::sync::Arc::new(lines))
    }

    /// Type I join `self ⋈ polygons` (`self` all points): every
    /// `(point_record, polygon_record)` pair with the point inside the
    /// polygon. The table's CSR [`grid_index`](Self::grid_index) over
    /// the point side serves the filter step — polygons whose MBR holds
    /// no candidate points are pruned before any canvas work.
    pub fn join_points_in_polygons(
        &self,
        dev: &mut Device,
        vp: Viewport,
        polygons: &SpatialTable,
        items_per_cell: usize,
    ) -> Result<Vec<(u32, u32)>, TableError> {
        let points = self.as_points(None)?;
        let polys = polygons.as_polygons()?;
        let index = self.grid_index(items_per_cell);
        Ok(crate::queries::join::join_points_polygons_pruned(
            dev, vp, &points, &polys, &index,
        ))
    }

    /// Type II join `self ⋈ right` (both all polygons): every
    /// intersecting record pair, with the right table's
    /// [`grid_index`](Self::grid_index) as the MBR filter.
    pub fn join_intersecting_polygons(
        &self,
        dev: &mut Device,
        vp: Viewport,
        right: &SpatialTable,
        items_per_cell: usize,
    ) -> Result<Vec<(u32, u32)>, TableError> {
        let left = self.as_polygons()?;
        let right_polys = right.as_polygons()?;
        let index = right.grid_index(items_per_cell);
        Ok(crate::queries::join::join_polygons_polygons_pruned(
            dev,
            vp,
            &left,
            &right_polys,
            &index,
        ))
    }

    /// Group-by COUNT/SUM over a Type I join, RasterJoin style, with
    /// this (point) table's [`grid_index`](Self::grid_index) serving
    /// the MBR pre-filter: polygons of `polygons` whose MBR holds no
    /// candidate points are pruned before any rasterization, and the
    /// density canvas pre-renders through a fused operator chain
    /// restricted to the surviving polygons' region (ROADMAP
    /// "Index-accelerated aggregation"). Bit-identical to the
    /// unfiltered kernel.
    pub fn aggregate_points_in_polygons(
        &self,
        dev: &mut Device,
        vp: Viewport,
        polygons: &SpatialTable,
        weight_attr: Option<&str>,
        items_per_cell: usize,
    ) -> Result<crate::queries::aggregate::GroupAggregates, TableError> {
        let points = self.as_points(weight_attr)?;
        let polys = polygons.as_polygons()?;
        let index = self.grid_index(items_per_cell);
        Ok(crate::queries::aggregate::aggregate_join_rasterjoin_pruned(
            dev, vp, &points, &polys, &index,
        ))
    }

    /// `SELECT * FROM self WHERE Geometry INSIDE/INTERSECTS q` — the
    /// paper's headline: one entry point, any geometry type, same
    /// operators underneath. Returns matching record ids.
    pub fn select_in_polygon(
        &self,
        dev: &mut Device,
        vp: Viewport,
        q: &Polygon,
    ) -> Result<Vec<u32>, TableError> {
        if let Ok(points) = self.as_points(None) {
            return Ok(selection::select_points_in_polygon(dev, vp, &points, q).records);
        }
        if let Ok(polys) = self.as_polygons() {
            return Ok(selection::select_polygons_intersecting(dev, vp, &polys, q).records);
        }
        if let Ok(lines) = self.as_lines() {
            return Ok(selection::select_lines_intersecting(dev, vp, &lines, q).records);
        }
        Err(TableError::MixedGeometry {
            wanted: "homogeneous",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvas_geom::Point;

    #[test]
    fn wkt_loading_and_extent() {
        let t = SpatialTable::from_wkt_lines("POINT (1 2)\n\nPOINT (5 6)\nPOINT (3 0)\n").unwrap();
        assert_eq!(t.len(), 3);
        let b = t.extent();
        assert_eq!(b.min, Point::new(1.0, 0.0));
        assert_eq!(b.max, Point::new(5.0, 6.0));
    }

    #[test]
    fn wkt_errors_carry_row() {
        let err = SpatialTable::from_wkt_lines("POINT (1 2)\nBOGUS (1)").unwrap_err();
        match err {
            TableError::Wkt { row, .. } => assert_eq!(row, 1),
            other => panic!("expected Wkt error, got {other}"),
        }
    }

    #[test]
    fn attrs_validated() {
        let mut t = SpatialTable::from_wkt_lines("POINT (0 0)\nPOINT (1 1)").unwrap();
        assert!(t.set_attr("fare", vec![1.0, 2.0]).is_ok());
        assert!(matches!(
            t.set_attr("bad", vec![1.0]),
            Err(TableError::AttrLength { .. })
        ));
        assert_eq!(t.attr("fare"), Some(&[1.0, 2.0][..]));
        assert_eq!(t.attr("missing"), None);
    }

    #[test]
    fn point_table_selection() {
        let mut t = SpatialTable::new();
        t.push(GeomObject::point(Point::new(2.0, 2.0)));
        t.push(GeomObject::point(Point::new(8.0, 8.0)));
        t.push(GeomObject::point(Point::new(3.0, 3.5)));
        let q = Polygon::simple(vec![
            Point::new(1.0, 1.0),
            Point::new(5.0, 1.0),
            Point::new(5.0, 5.0),
            Point::new(1.0, 5.0),
        ])
        .unwrap();
        let mut dev = Device::nvidia();
        let vp = t.viewport(128);
        let ids = t.select_in_polygon(&mut dev, vp, &q).unwrap();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn polygon_table_selection() {
        let t = SpatialTable::from_wkt_lines(
            "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))\n\
             POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))\n\
             POLYGON ((1 1, 4 1, 4 4, 1 4, 1 1))",
        )
        .unwrap();
        let q = Polygon::simple(vec![
            Point::new(1.5, 1.5),
            Point::new(6.0, 1.5),
            Point::new(6.0, 6.0),
            Point::new(1.5, 6.0),
        ])
        .unwrap();
        let mut dev = Device::nvidia();
        let vp = t.viewport(128);
        let ids = t.select_in_polygon(&mut dev, vp, &q).unwrap();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn line_table_selection() {
        let t = SpatialTable::from_wkt_lines("LINESTRING (0 5, 10 5)\nLINESTRING (0 20, 10 20)")
            .unwrap();
        let q = Polygon::simple(vec![
            Point::new(4.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 10.0),
            Point::new(4.0, 10.0),
        ])
        .unwrap();
        let mut dev = Device::nvidia();
        let vp =
            Viewport::square_pixels(BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 25.0)), 128);
        let ids = t.select_in_polygon(&mut dev, vp, &q).unwrap();
        assert_eq!(ids, vec![0]);
    }

    #[test]
    fn mixed_table_rejected() {
        let t = SpatialTable::from_wkt_lines("POINT (0 0)\nLINESTRING (0 0, 1 1)").unwrap();
        assert!(t.as_points(None).is_err());
        assert!(t.as_lines().is_err());
        let q = Polygon::simple(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ])
        .unwrap();
        let mut dev = Device::nvidia();
        let vp =
            Viewport::square_pixels(BBox::new(Point::new(-1.0, -1.0), Point::new(2.0, 2.0)), 32);
        assert!(t.select_in_polygon(&mut dev, vp, &q).is_err());
    }

    #[test]
    fn weighted_points_from_attr() {
        let mut t = SpatialTable::from_wkt_lines("POINT (1 1)\nPOINT (2 2)").unwrap();
        t.set_attr("fare", vec![7.5, 2.5]).unwrap();
        let batch = t.as_points(Some("fare")).unwrap();
        assert_eq!(batch.weights, vec![7.5, 2.5]);
        assert!(t.as_points(Some("missing")).is_err());
    }

    #[test]
    fn grid_index_on_empty_and_singleton_tables() {
        // Regression: empty tables fold to BBox::EMPTY, which the grid
        // builder rejects — grid_index must not panic.
        let empty = SpatialTable::new();
        let g = empty.grid_index(4);
        assert!(g.is_empty());
        let one = SpatialTable::from_wkt_lines("POINT (3 3)").unwrap();
        let g = one.grid_index(4);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn table_joins_use_grid_index_and_match_direct_joins() {
        // Production path for SpatialTable::grid_index: Type I and
        // Type II joins pruned through the CSR grid agree with the
        // unpruned query formulations.
        let mut pts = SpatialTable::new();
        for p in [
            Point::new(2.0, 2.0),
            Point::new(8.0, 8.0),
            Point::new(3.0, 3.5),
            Point::new(9.0, 1.0),
        ] {
            pts.push(GeomObject::point(p));
        }
        let zones = SpatialTable::from_wkt_lines(
            "POLYGON ((1 1, 5 1, 5 5, 1 5, 1 1))\n\
             POLYGON ((7 7, 10 7, 10 10, 7 10, 7 7))\n\
             POLYGON ((20 20, 22 20, 22 22, 20 22, 20 20))",
        )
        .unwrap();
        let mut dev = Device::nvidia();
        let vp =
            Viewport::square_pixels(BBox::new(Point::new(0.0, 0.0), Point::new(25.0, 25.0)), 128);
        let got = pts
            .join_points_in_polygons(&mut dev, vp, &zones, 2)
            .unwrap();
        let want = crate::queries::join::join_points_polygons(
            &mut dev,
            vp,
            &pts.as_points(None).unwrap(),
            &zones.as_polygons().unwrap(),
        );
        assert_eq!(got, want);
        assert_eq!(got, vec![(0, 0), (2, 0), (1, 1)]);

        let more = SpatialTable::from_wkt_lines(
            "POLYGON ((3 3, 8 3, 8 8, 3 8, 3 3))\n\
             POLYGON ((15 15, 18 15, 18 18, 15 18, 15 15))",
        )
        .unwrap();
        let got2 = more
            .join_intersecting_polygons(&mut dev, vp, &zones, 2)
            .unwrap();
        let want2 = crate::queries::join::join_polygons_polygons(
            &mut dev,
            vp,
            &more.as_polygons().unwrap(),
            &zones.as_polygons().unwrap(),
        );
        assert_eq!(got2, want2);
        assert_eq!(got2, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn table_aggregate_uses_grid_prefilter_and_matches_kernel() {
        let mut pts = SpatialTable::new();
        for p in [
            Point::new(2.0, 2.0),
            Point::new(3.5, 3.0),
            Point::new(8.0, 8.0),
            Point::new(9.0, 2.0),
        ] {
            pts.push(GeomObject::point(p));
        }
        pts.set_attr("w", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let zones = SpatialTable::from_wkt_lines(
            "POLYGON ((1 1, 5 1, 5 5, 1 5, 1 1))\n\
             POLYGON ((7 7, 10 7, 10 10, 7 10, 7 7))\n\
             POLYGON ((20 20, 22 20, 22 22, 20 22, 20 20))",
        )
        .unwrap();
        let mut dev = Device::cpu();
        let vp =
            Viewport::square_pixels(BBox::new(Point::new(0.0, 0.0), Point::new(25.0, 25.0)), 128);
        let got = pts
            .aggregate_points_in_polygons(&mut dev, vp, &zones, Some("w"), 2)
            .unwrap();
        let mut dev_ref = Device::cpu();
        let want = crate::queries::aggregate::aggregate_join_rasterjoin(
            &mut dev_ref,
            vp,
            &pts.as_points(Some("w")).unwrap(),
            &zones.as_polygons().unwrap(),
        );
        assert_eq!(got, want);
        assert_eq!(got.counts, vec![2, 1, 0]);
        assert_eq!(got.sums, vec![3.0, 3.0, 0.0]);
    }

    #[test]
    fn grid_index_filters_candidates() {
        let t =
            SpatialTable::from_wkt_lines("POINT (1 1)\nPOINT (9 9)\nPOINT (1.2 0.8)\nPOINT (5 5)")
                .unwrap();
        let grid = t.grid_index(1);
        assert_eq!(grid.len(), 4);
        // A query near the first cluster must see records 0 and 2 but
        // can prune the far corner.
        let q = BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let hits = grid.query(&q);
        assert!(hits.contains(&0) && hits.contains(&2), "hits {hits:?}");
        assert!(!hits.contains(&1), "far record must be pruned: {hits:?}");
    }
}
