//! Canvas visualization: ASCII art and PGM image export.
//!
//! A canvas *is* an image (the paper draws them throughout Figures 1–8);
//! being able to look at one is invaluable for debugging plans and for
//! the examples. `to_ascii` renders a down-sampled glyph view; `to_pgm`
//! writes a portable graymap any image viewer opens.

use crate::canvas::Canvas;
use crate::info::Texel;

/// How to turn a texel into a brightness in `[0, 1]`.
pub enum Shade {
    /// 1 where any dimension is set, 0 elsewhere (support mask).
    Support,
    /// `s[0].v1` (point counts) normalized by the canvas maximum.
    PointCount,
    /// `s[2].id` hashed to a gray (region/partition views).
    AreaId,
}

impl Shade {
    fn value(&self, t: &Texel, max_count: f32) -> f64 {
        match self {
            Shade::Support => {
                if t.is_null() {
                    0.0
                } else {
                    1.0
                }
            }
            Shade::PointCount => t
                .get(0)
                .map(|p| (p.v1 / max_count.max(1.0)) as f64)
                .unwrap_or(0.0),
            Shade::AreaId => t
                .get(2)
                .map(|a| {
                    let h = a.id.wrapping_mul(2654435761) >> 24;
                    0.25 + 0.75 * (h as f64 / 255.0)
                })
                .unwrap_or(0.0),
        }
    }
}

/// Renders the canvas as ASCII art of at most `cols × rows` glyphs
/// (each glyph max-pools a block of texels).
pub fn to_ascii(canvas: &Canvas, cols: u32, rows: u32, shade: Shade) -> String {
    let ramp: &[u8] = b" .:-=+*#%@";
    let tex = canvas.texels();
    let cols = cols.clamp(1, tex.width());
    let rows = rows.clamp(1, tex.height());
    let max_count = tex
        .texels()
        .iter()
        .filter_map(|t| t.get(0).map(|p| p.v1))
        .fold(0.0f32, f32::max);
    let bw = tex.width().div_ceil(cols);
    let bh = tex.height().div_ceil(rows);
    let mut out = String::with_capacity(((cols + 1) * rows) as usize);
    // Row 0 is world-bottom; print top-down.
    for by in (0..rows).rev() {
        for bx in 0..cols {
            let mut v = 0.0f64;
            for y in (by * bh)..((by + 1) * bh).min(tex.height()) {
                for x in (bx * bw)..((bx + 1) * bw).min(tex.width()) {
                    v = v.max(shade.value(&tex.get(x, y), max_count));
                }
            }
            let idx = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
            out.push(ramp[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Writes the canvas as a binary PGM (P5) image.
pub fn to_pgm(canvas: &Canvas, shade: Shade) -> Vec<u8> {
    let tex = canvas.texels();
    let (w, h) = (tex.width(), tex.height());
    let max_count = tex
        .texels()
        .iter()
        .filter_map(|t| t.get(0).map(|p| p.v1))
        .fold(0.0f32, f32::max);
    let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
    out.reserve((w * h) as usize);
    // PGM rows go top-down; canvas row 0 is world-bottom.
    for y in (0..h).rev() {
        for x in 0..w {
            let v = shade.value(&tex.get(x, y), max_count);
            out.push((v * 255.0).round().clamp(0.0, 255.0) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::PointBatch;
    use crate::device::Device;
    use crate::source::render_points;
    use canvas_geom::{BBox, Point};
    use canvas_raster::Viewport;

    fn sample_canvas() -> Canvas {
        let vp = Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            20,
            20,
        );
        let mut dev = Device::nvidia();
        render_points(
            &mut dev,
            vp,
            &PointBatch::from_points(vec![
                Point::new(2.0, 2.0),
                Point::new(2.1, 2.1),
                Point::new(8.0, 8.0),
            ]),
        )
    }

    #[test]
    fn ascii_dimensions_and_content() {
        let c = sample_canvas();
        let art = to_ascii(&c, 10, 10, Shade::Support);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 10));
        // Non-empty canvas shows non-blank glyphs.
        assert!(art.chars().any(|ch| ch != ' ' && ch != '\n'));
        // Top-left of the art is world top-left: the (8,8) point.
        let row_of_top_point = lines
            .iter()
            .position(|l| l.contains('@'))
            .expect("support glyph present");
        assert!(row_of_top_point <= 4, "world-top point must print high");
    }

    #[test]
    fn ascii_point_count_shading() {
        let c = sample_canvas();
        let art = to_ascii(&c, 20, 20, Shade::PointCount);
        // The double-point pixel is the max: exactly one '@'.
        assert_eq!(art.matches('@').count(), 1);
    }

    #[test]
    fn pgm_header_and_size() {
        let c = sample_canvas();
        let img = to_pgm(&c, Shade::Support);
        assert!(img.starts_with(b"P5\n20 20\n255\n"));
        let header_len = b"P5\n20 20\n255\n".len();
        assert_eq!(img.len(), header_len + 400);
        // Contains white (covered) and black (empty) pixels.
        assert!(img[header_len..].contains(&255));
        assert!(img[header_len..].contains(&0));
    }

    #[test]
    fn area_id_shading_distinguishes_regions() {
        // A two-site Voronoi canvas shades each region differently.
        let vp = Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            16,
            16,
        );
        let mut dev = Device::nvidia();
        let diagram = crate::queries::voronoi::compute_voronoi(
            &mut dev,
            vp,
            &[Point::new(2.0, 5.0), Point::new(8.0, 5.0)],
        );
        let art = to_ascii(&diagram, 16, 16, Shade::AreaId);
        let lines: Vec<&str> = art.lines().collect();
        let mid = lines[8];
        let left_glyph = mid.chars().nth(1).unwrap();
        let right_glyph = mid.chars().nth(14).unwrap();
        assert_ne!(left_glyph, right_glyph, "regions must shade differently");
        assert_ne!(left_glyph, ' ');
    }

    #[test]
    fn empty_canvas_renders_blank() {
        let vp = Viewport::new(BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 4, 4);
        let c = Canvas::empty(vp);
        let art = to_ascii(&c, 4, 4, Shade::Support);
        assert!(art.chars().all(|ch| ch == ' ' || ch == '\n'));
    }
}
