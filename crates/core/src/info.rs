//! The object information set `S` and the canvas range `S³`
//! (paper Definitions 4 and 7).
//!
//! A canvas maps every location to a **triple** of object-information
//! entries — one per primitive dimension 0/1/2. Each entry is either ∅ or
//! a tuple `(v0, v1, v2)` where `v0` is a record identifier and `v1`,
//! `v2` are real-valued metadata whose meaning is chosen per query
//! (counts, attribute values, distances…). The paper renders this as a
//! 3×3 matrix; here it is the [`Texel`] type stored in framebuffers.

/// One object-information entry `(v0, v1, v2)`: a record id plus two
/// real metadata slots (paper Definition 7).
///
/// `#[repr(C)]` so a `Texel` is exactly the 10-word layout the SIMD row
/// kernels operate on (see [`canvas_raster::TexelWords`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct DimInfo {
    /// `v0`: unique identifier of the record that produced the geometry.
    pub id: u32,
    /// `v1`: real-valued metadata (queries use it for counts).
    pub v1: f32,
    /// `v2`: real-valued metadata (queries use it for attribute values /
    /// distances).
    pub v2: f32,
}

impl DimInfo {
    pub const fn new(id: u32, v1: f32, v2: f32) -> Self {
        DimInfo { id, v1, v2 }
    }
}

/// The value of a canvas at one location: an element of `S³`.
///
/// `dims[d]` carries the information for `d`-dimensional primitives
/// incident on the location; a presence bitmask distinguishes ∅ without
/// reserving sentinel ids. The all-∅ texel is the canvas null value
/// (rendered white in the paper's figures).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Texel {
    present: u32,
    dims: [DimInfo; 3],
}

// SAFETY: `Texel` is `#[repr(C)]` — a `u32` presence word followed by
// three `(u32, f32, f32)` entries — which is exactly the 40-byte,
// 4-aligned, padding-free 10 × `u32` word image `TexelWords` demands:
// word 0 is the presence bitmask (bit `d` ⇔ dimension `d` present) and
// words `1+3d..4+3d` are dimension `d`'s `(id, v1, v2)` with the value
// words as `f32` bit patterns. Asserted at compile time below.
unsafe impl canvas_raster::TexelWords for Texel {}

const _: () = {
    assert!(std::mem::size_of::<Texel>() == 40);
    assert!(std::mem::align_of::<Texel>() == 4);
    assert!(std::mem::offset_of!(Texel, present) == 0);
    assert!(std::mem::offset_of!(Texel, dims) == 4);
};

/// The empty texel (∅, ∅, ∅).
pub const NULL_TEXEL: Texel = Texel {
    present: 0,
    dims: [
        DimInfo::new(0, 0.0, 0.0),
        DimInfo::new(0, 0.0, 0.0),
        DimInfo::new(0, 0.0, 0.0),
    ],
};

impl Texel {
    /// The empty texel (∅, ∅, ∅) — identity for merge-style blends.
    pub const fn null() -> Self {
        NULL_TEXEL
    }

    /// Texel with a single dimension set.
    pub fn with_dim(d: usize, info: DimInfo) -> Self {
        let mut t = Texel::null();
        t.set(d, info);
        t
    }

    /// Texel for a 0-primitive (point) record: `s[0] = (id, count, value)`.
    pub fn point(id: u32, count: f32, value: f32) -> Self {
        Texel::with_dim(0, DimInfo::new(id, count, value))
    }

    /// Texel for a 1-primitive (line) record.
    pub fn line(id: u32, count: f32, value: f32) -> Self {
        Texel::with_dim(1, DimInfo::new(id, count, value))
    }

    /// Texel for a 2-primitive (area) record: `s[2] = (id, count, value)`.
    pub fn area(id: u32, count: f32, value: f32) -> Self {
        Texel::with_dim(2, DimInfo::new(id, count, value))
    }

    /// Entry for dimension `d` (0, 1 or 2), or `None` for ∅.
    #[inline]
    pub fn get(&self, d: usize) -> Option<DimInfo> {
        debug_assert!(d < 3);
        if self.present & (1 << d) != 0 {
            Some(self.dims[d])
        } else {
            None
        }
    }

    /// True when dimension `d` holds information.
    #[inline]
    pub fn has(&self, d: usize) -> bool {
        self.present & (1 << d) != 0
    }

    /// Sets the entry for dimension `d`.
    #[inline]
    pub fn set(&mut self, d: usize, info: DimInfo) {
        debug_assert!(d < 3);
        self.present |= 1 << d;
        self.dims[d] = info;
    }

    /// Clears dimension `d` back to ∅.
    #[inline]
    pub fn clear(&mut self, d: usize) {
        debug_assert!(d < 3);
        self.present &= !(1 << d);
        self.dims[d] = DimInfo::default();
    }

    /// True when all three dimensions are ∅ (Definition 5's empty value).
    #[inline]
    pub fn is_null(&self) -> bool {
        self.present == 0
    }

    /// "Over" merge: keep `self`'s entry per dimension, fall back to
    /// `other`'s — the canvas-union blend of Figure 1(b).
    pub fn over(self, other: Texel) -> Texel {
        let mut out = self;
        for d in 0..3 {
            if !out.has(d) {
                if let Some(i) = other.get(d) {
                    out.set(d, i);
                }
            }
        }
        out
    }
}

/// The blend functions `⊙ : S³ × S³ → S³` named in the paper's query
/// formulations (Sections 4–5). Each maps directly onto a programmable
/// blend state in the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlendFn {
    /// Union / "over": per-dimension first-non-∅ (Figure 1(b) merge).
    Over,
    /// The selection blend `⊙` (Section 4.1): output keeps the *left*
    /// operand's 0-row and the *right* operand's 2-row; 1-row is ∅.
    /// Left is data (points), right is the query polygon.
    PointOverArea,
    /// The polygon-intersection blend `⊕` (Section 4.1): output 2-row is
    /// `(id₁, count₁ + count₂, meta₁)` with ∅ treated as zero count;
    /// rows 0 and 1 are ∅.
    AreaCount,
    /// The aggregation blend `+` (Section 4.3): output 0-row sums counts
    /// (`v1`) and values (`v2`) with id zeroed; 2-row keeps the right
    /// operand's entry.
    Accumulate,
    /// Point-density blend used by the RasterJoin plan (Section 5.2):
    /// 0-row is `(id₁, count₁ + count₂, value₁ + value₂)` with ∅ as zero.
    PointAccumulate,
}

impl BlendFn {
    /// Applies the blend to two texels.
    pub fn apply(self, a: Texel, b: Texel) -> Texel {
        match self {
            BlendFn::Over => a.over(b),
            BlendFn::PointOverArea => {
                let mut out = Texel::null();
                if let Some(p) = a.get(0) {
                    out.set(0, p);
                }
                if let Some(q) = b.get(2) {
                    out.set(2, q);
                }
                out
            }
            BlendFn::AreaCount => {
                let mut out = Texel::null();
                match (a.get(2), b.get(2)) {
                    (Some(x), Some(y)) => {
                        out.set(2, DimInfo::new(x.id, x.v1 + y.v1, x.v2));
                    }
                    (Some(x), None) => out.set(2, x),
                    (None, Some(y)) => out.set(2, y),
                    (None, None) => {}
                }
                out
            }
            BlendFn::Accumulate => {
                let mut out = Texel::null();
                match (a.get(0), b.get(0)) {
                    (Some(x), Some(y)) => {
                        out.set(0, DimInfo::new(0, x.v1 + y.v1, x.v2 + y.v2));
                    }
                    (Some(x), None) => out.set(0, DimInfo::new(0, x.v1, x.v2)),
                    (None, Some(y)) => out.set(0, DimInfo::new(0, y.v1, y.v2)),
                    (None, None) => {}
                }
                if let Some(q) = b.get(2) {
                    out.set(2, q);
                } else if let Some(q) = a.get(2) {
                    out.set(2, q);
                }
                out
            }
            BlendFn::PointAccumulate => {
                let mut out = Texel::null();
                match (a.get(0), b.get(0)) {
                    (Some(x), Some(y)) => {
                        out.set(0, DimInfo::new(x.id, x.v1 + y.v1, x.v2 + y.v2));
                    }
                    (Some(x), None) => out.set(0, x),
                    (None, Some(y)) => out.set(0, y),
                    (None, None) => {}
                }
                // Carry area rows through untouched (first non-null) so the
                // plan can blend the density canvas over polygon canvases.
                if let Some(q) = a.get(2) {
                    out.set(2, q);
                } else if let Some(q) = b.get(2) {
                    out.set(2, q);
                }
                out
            }
        }
    }

    /// True when the blend is associative, allowing the optimizer to
    /// regroup multiway blends (paper Section 3.2 notes this freedom).
    pub fn is_associative(self) -> bool {
        match self {
            BlendFn::Over => true,
            BlendFn::AreaCount => true,       // counts add associatively
            BlendFn::PointAccumulate => true, // likewise
            BlendFn::Accumulate => true,
            BlendFn::PointOverArea => false, // asymmetric by design
        }
    }

    /// The SIMD row-kernel tag for this blend (`canvas_raster::simd`).
    /// Every built-in blend has a vectorized kernel that is bit-identical
    /// to [`BlendFn::apply`] — including `f32` sums, which the kernels
    /// evaluate scalar in the same operand order (asserted exhaustively
    /// in tests below).
    pub fn tag(self) -> canvas_raster::BlendTag {
        match self {
            BlendFn::Over => canvas_raster::BlendTag::Over,
            BlendFn::PointOverArea => canvas_raster::BlendTag::PointOverArea,
            BlendFn::AreaCount => canvas_raster::BlendTag::AreaCount,
            BlendFn::Accumulate => canvas_raster::BlendTag::Accumulate,
            BlendFn::PointAccumulate => canvas_raster::BlendTag::PointAccumulate,
        }
    }

    /// Short symbol used in plan diagrams.
    pub fn symbol(self) -> &'static str {
        match self {
            BlendFn::Over => "∪",
            BlendFn::PointOverArea => "⊙",
            BlendFn::AreaCount => "⊕",
            BlendFn::Accumulate => "+",
            BlendFn::PointAccumulate => "+₀",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_texel_properties() {
        let t = Texel::null();
        assert!(t.is_null());
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(1), None);
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn set_get_clear() {
        let mut t = Texel::null();
        t.set(1, DimInfo::new(7, 1.0, 2.0));
        assert!(t.has(1));
        assert!(!t.is_null());
        assert_eq!(t.get(1), Some(DimInfo::new(7, 1.0, 2.0)));
        assert_eq!(t.get(0), None);
        t.clear(1);
        assert!(t.is_null());
    }

    #[test]
    fn constructors() {
        let p = Texel::point(3, 1.0, 9.5);
        assert_eq!(p.get(0).unwrap().id, 3);
        assert!(!p.has(2));
        let a = Texel::area(5, 1.0, 0.0);
        assert_eq!(a.get(2).unwrap().id, 5);
        assert!(!a.has(0));
        let l = Texel::line(2, 1.0, 0.0);
        assert!(l.has(1));
    }

    #[test]
    fn over_prefers_left() {
        let a = Texel::point(1, 1.0, 0.0);
        let b = {
            let mut t = Texel::point(2, 5.0, 0.0);
            t.set(2, DimInfo::new(9, 1.0, 0.0));
            t
        };
        let o = a.over(b);
        assert_eq!(o.get(0).unwrap().id, 1); // left wins
        assert_eq!(o.get(2).unwrap().id, 9); // filled from right
    }

    #[test]
    fn point_over_area_blend() {
        let p = Texel::point(4, 1.0, 2.5);
        let q = Texel::area(1, 1.0, 0.0);
        let out = BlendFn::PointOverArea.apply(p, q);
        assert_eq!(out.get(0).unwrap().id, 4);
        assert_eq!(out.get(2).unwrap().id, 1);
        assert!(!out.has(1));
        // Point outside the polygon: area row stays ∅.
        let out = BlendFn::PointOverArea.apply(p, Texel::null());
        assert!(out.has(0));
        assert!(!out.has(2));
    }

    #[test]
    fn area_count_blend_counts_incidence() {
        let a = Texel::area(3, 1.0, 0.0);
        let q = Texel::area(1, 1.0, 0.0);
        let both = BlendFn::AreaCount.apply(a, q);
        assert_eq!(both.get(2).unwrap().v1, 2.0); // two 2-primitives here
        assert_eq!(both.get(2).unwrap().id, 3); // data id kept
        let only_data = BlendFn::AreaCount.apply(a, Texel::null());
        assert_eq!(only_data.get(2).unwrap().v1, 1.0);
        let only_query = BlendFn::AreaCount.apply(Texel::null(), q);
        assert_eq!(only_query.get(2).unwrap().v1, 1.0);
        assert!(BlendFn::AreaCount
            .apply(Texel::null(), Texel::null())
            .is_null());
    }

    #[test]
    fn accumulate_blend_sums() {
        let a = Texel::point(1, 2.0, 10.0);
        let b = Texel::point(2, 3.0, 20.0);
        let s = BlendFn::Accumulate.apply(a, b);
        let info = s.get(0).unwrap();
        assert_eq!(info.v1, 5.0);
        assert_eq!(info.v2, 30.0);
        assert_eq!(info.id, 0); // id zeroed per the paper's `+`
    }

    #[test]
    fn point_accumulate_keeps_id_and_sums() {
        let a = Texel::point(7, 1.0, 2.0);
        let b = Texel::point(9, 1.0, 3.0);
        let s = BlendFn::PointAccumulate.apply(a, b);
        let info = s.get(0).unwrap();
        assert_eq!(info.id, 7);
        assert_eq!(info.v1, 2.0);
        assert_eq!(info.v2, 5.0);
    }

    #[test]
    fn associativity_flags() {
        assert!(BlendFn::Over.is_associative());
        assert!(BlendFn::AreaCount.is_associative());
        assert!(!BlendFn::PointOverArea.is_associative());
    }

    #[test]
    fn associative_blends_actually_associate() {
        let xs = [
            Texel::point(1, 1.0, 2.0),
            Texel::point(2, 3.0, 4.0),
            Texel::point(3, 5.0, 6.0),
        ];
        for op in [BlendFn::Over, BlendFn::Accumulate, BlendFn::PointAccumulate] {
            let left = op.apply(op.apply(xs[0], xs[1]), xs[2]);
            let right = op.apply(xs[0], op.apply(xs[1], xs[2]));
            assert_eq!(left, right, "{op:?} not associative on points");
        }
        let ys = [
            Texel::area(1, 1.0, 0.0),
            Texel::area(2, 1.0, 0.0),
            Texel::area(3, 1.0, 0.0),
        ];
        let left = BlendFn::AreaCount.apply(BlendFn::AreaCount.apply(ys[0], ys[1]), ys[2]);
        let right = BlendFn::AreaCount.apply(ys[0], BlendFn::AreaCount.apply(ys[1], ys[2]));
        assert_eq!(left.get(2).unwrap().v1, right.get(2).unwrap().v1);
    }

    #[test]
    fn texel_size_stays_compact() {
        // Hot-path type: keep it within two cache lines' worth per texel.
        assert!(std::mem::size_of::<Texel>() <= 40);
    }

    /// Every blend kernel tag must reproduce [`BlendFn::apply`] bit for
    /// bit — on the scalar reference backend and on whatever vector
    /// backend this host dispatches to — across all 8×8 presence pairs
    /// and payloads including `-0.0`, `NaN` and a denormal.
    #[test]
    fn blend_kernels_match_apply_bit_for_bit() {
        use canvas_raster::simd;
        let payloads = [1.0f32, -0.0, f32::NAN, 1.5e-41, 3.25];
        let mk = |p: u32, seed: u32| {
            let mut t = Texel::null();
            for d in 0..3u32 {
                if p & (1 << d) != 0 {
                    let v = payloads[((seed + d) % payloads.len() as u32) as usize];
                    t.set(d as usize, DimInfo::new(seed * 7 + d, v, v * 2.0));
                }
            }
            t
        };
        let words = |t: &Texel| -> [u32; 10] { unsafe { std::mem::transmute_copy(t) } };
        let backends = [simd::Backend::Scalar, simd::active_backend()];
        for op in [
            BlendFn::Over,
            BlendFn::PointOverArea,
            BlendFn::AreaCount,
            BlendFn::Accumulate,
            BlendFn::PointAccumulate,
        ] {
            for pa in 0..8u32 {
                for pb in 0..8u32 {
                    for seed in 0..3u32 {
                        let a = mk(pa, seed);
                        let b = mk(pb, seed + 1);
                        let expect = op.apply(a, b);
                        for be in backends {
                            let mut dst = [a];
                            simd::blend_rows_with(be, op.tag(), &mut dst, &[b]);
                            assert_eq!(
                                words(&dst[0]),
                                words(&expect),
                                "{op:?} pa={pa} pb={pb} on {be:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}
