//! Plan rewrites (paper Sections 3.2 and 7).
//!
//! The paper calls out two optimization hooks the algebra provides:
//!
//! * associative blend functions let the optimizer regroup multiway
//!   blends freely (Section 3.2) — [`flatten_multiblend`] normalizes
//!   nested binary blends of one associative op into a single `B*`,
//! * the same query admits multiple plans (Section 7) — e.g. a multiway
//!   blend over individual polygon-record leaves is equivalent to one
//!   instanced draw of the whole table; [`fuse_polygon_leaves`] performs
//!   that fusion, which is exactly the trick that makes the
//!   multi-constraint selection of Section 5.1 cheap.

use std::sync::Arc;

use super::expr::{Expr, SourceSpec};
use crate::info::BlendFn;

/// Applies all rewrites until fixpoint (bounded; the rules only shrink
/// or flatten the tree).
pub fn optimize(e: Expr) -> Expr {
    let e = flatten_multiblend(e);
    fuse_polygon_leaves(e)
}

/// Normalizes `B[op](B[op](a, b), c)` and nested `B*` of the same
/// associative op into a single flat `B*[op](a, b, c, …)`.
pub fn flatten_multiblend(e: Expr) -> Expr {
    match e {
        Expr::Blend { op, left, right } if op.is_associative() => {
            let mut inputs = Vec::new();
            collect(op, flatten_multiblend(*left), &mut inputs);
            collect(op, flatten_multiblend(*right), &mut inputs);
            Expr::MultiBlend { op, inputs }
        }
        Expr::Blend { op, left, right } => Expr::Blend {
            op,
            left: Box::new(flatten_multiblend(*left)),
            right: Box::new(flatten_multiblend(*right)),
        },
        Expr::MultiBlend { op, inputs } if op.is_associative() => {
            let mut out = Vec::new();
            for i in inputs {
                collect(op, flatten_multiblend(i), &mut out);
            }
            Expr::MultiBlend { op, inputs: out }
        }
        Expr::MultiBlend { op, inputs } => Expr::MultiBlend {
            op,
            inputs: inputs.into_iter().map(flatten_multiblend).collect(),
        },
        Expr::Mask { spec, input } => Expr::Mask {
            spec,
            input: Box::new(flatten_multiblend(*input)),
        },
        Expr::GeomTransform { gamma, input } => Expr::GeomTransform {
            gamma,
            input: Box::new(flatten_multiblend(*input)),
        },
        Expr::MapScatter {
            gamma,
            groups,
            combine,
            input,
        } => Expr::MapScatter {
            gamma,
            groups,
            combine,
            input: Box::new(flatten_multiblend(*input)),
        },
        Expr::ValueTransform { name, f, input } => Expr::ValueTransform {
            name,
            f,
            input: Box::new(flatten_multiblend(*input)),
        },
        leaf @ Expr::Source(_) => leaf,
    }
}

fn collect(op: BlendFn, e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::MultiBlend { op: inner, inputs } if inner == op => out.extend(inputs),
        Expr::Blend {
            op: inner,
            left,
            right,
        } if inner == op => {
            collect(op, *left, out);
            collect(op, *right, out);
        }
        other => out.push(other),
    }
}

/// Fuses `B*[op]` whose inputs are all single-polygon leaves from the
/// *same* table into one [`SourceSpec::PolygonSet`] instanced draw —
/// turning n full-canvas blend passes into n overlapping draw calls on
/// one target (a large win; see the `ablation_blend` bench).
pub fn fuse_polygon_leaves(e: Expr) -> Expr {
    match e {
        Expr::MultiBlend { op, inputs } => {
            let all_same_table: Option<crate::canvas::AreaSource> = match inputs.split_first() {
                Some((Expr::Source(SourceSpec::Polygon { table, .. }), rest)) => {
                    let t0 = table.clone();
                    let same = rest.iter().all(|e| {
                        matches!(
                            e,
                            Expr::Source(SourceSpec::Polygon { table, .. })
                            if Arc::ptr_eq(table, &t0)
                        )
                    });
                    // Fusion renders the full table; only valid when the
                    // leaves cover every record exactly once, in order.
                    let full_cover = same
                        && inputs.len() == t0.len()
                        && inputs.iter().enumerate().all(|(i, e)| {
                            matches!(
                                e,
                                Expr::Source(SourceSpec::Polygon { record, .. })
                                if *record == i
                            )
                        });
                    if full_cover {
                        Some(t0)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match all_same_table {
                Some(table) => Expr::Source(SourceSpec::PolygonSet { table, blend: op }),
                None => Expr::MultiBlend {
                    op,
                    inputs: inputs.into_iter().map(fuse_polygon_leaves).collect(),
                },
            }
        }
        Expr::Blend { op, left, right } => Expr::Blend {
            op,
            left: Box::new(fuse_polygon_leaves(*left)),
            right: Box::new(fuse_polygon_leaves(*right)),
        },
        Expr::Mask { spec, input } => Expr::Mask {
            spec,
            input: Box::new(fuse_polygon_leaves(*input)),
        },
        Expr::GeomTransform { gamma, input } => Expr::GeomTransform {
            gamma,
            input: Box::new(fuse_polygon_leaves(*input)),
        },
        Expr::MapScatter {
            gamma,
            groups,
            combine,
            input,
        } => Expr::MapScatter {
            gamma,
            groups,
            combine,
            input: Box::new(fuse_polygon_leaves(*input)),
        },
        Expr::ValueTransform { name, f, input } => Expr::ValueTransform {
            name,
            f,
            input: Box::new(fuse_polygon_leaves(*input)),
        },
        leaf @ Expr::Source(_) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canvas::{AreaSource, PointBatch};
    use crate::device::Device;
    use crate::ops::{CountCond, MaskSpec};
    use canvas_geom::{BBox, Point, Polygon};
    use canvas_raster::Viewport;

    fn vp() -> Viewport {
        Viewport::new(
            BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            16,
            16,
        )
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::simple(vec![
            Point::new(x0, y0),
            Point::new(x0 + side, y0),
            Point::new(x0 + side, y0 + side),
            Point::new(x0, y0 + side),
        ])
        .unwrap()
    }

    #[test]
    fn flatten_nested_binary_blends() {
        let table: AreaSource = Arc::new(vec![
            square(1.0, 1.0, 2.0),
            square(3.0, 3.0, 2.0),
            square(5.0, 5.0, 2.0),
        ]);
        let leaf = |i: usize| Expr::polygon_record(table.clone(), i, i as u32);
        let nested = Expr::blend(
            BlendFn::AreaCount,
            Expr::blend(BlendFn::AreaCount, leaf(0), leaf(1)),
            leaf(2),
        );
        let flat = flatten_multiblend(nested);
        match &flat {
            Expr::MultiBlend { op, inputs } => {
                assert_eq!(*op, BlendFn::AreaCount);
                assert_eq!(inputs.len(), 3);
            }
            other => panic!("expected MultiBlend, got\n{other:?}"),
        }
    }

    #[test]
    fn nonassociative_blend_not_flattened() {
        let data = Arc::new(PointBatch::from_points(vec![Point::new(1.0, 1.0)]));
        let e = Expr::blend(
            BlendFn::PointOverArea,
            Expr::points(data),
            Expr::query_polygon(square(0.0, 0.0, 5.0), 1),
        );
        match flatten_multiblend(e) {
            Expr::Blend { .. } => {}
            other => panic!("⊙ must stay binary, got\n{other:?}"),
        }
    }

    #[test]
    fn fuse_full_table_cover() {
        let table: AreaSource = Arc::new(vec![square(1.0, 1.0, 2.0), square(4.0, 4.0, 2.0)]);
        let e = Expr::multi_blend(
            BlendFn::AreaCount,
            vec![
                Expr::polygon_record(table.clone(), 0, 0),
                Expr::polygon_record(table.clone(), 1, 1),
            ],
        );
        match fuse_polygon_leaves(e) {
            Expr::Source(SourceSpec::PolygonSet { blend, .. }) => {
                assert_eq!(blend, BlendFn::AreaCount);
            }
            other => panic!("expected fusion, got\n{other:?}"),
        }
    }

    #[test]
    fn no_fusion_for_partial_cover() {
        let table: AreaSource = Arc::new(vec![
            square(1.0, 1.0, 2.0),
            square(4.0, 4.0, 2.0),
            square(7.0, 7.0, 2.0),
        ]);
        // Only 2 of 3 records: fusing would add the third polygon.
        let e = Expr::multi_blend(
            BlendFn::AreaCount,
            vec![
                Expr::polygon_record(table.clone(), 0, 0),
                Expr::polygon_record(table.clone(), 1, 1),
            ],
        );
        match fuse_polygon_leaves(e) {
            Expr::MultiBlend { .. } => {}
            other => panic!("must not fuse partial cover, got\n{other:?}"),
        }
    }

    #[test]
    fn rewrite_preserves_semantics() {
        // The Section 5.1 disjunction plan, unoptimized vs optimized,
        // must select the same records.
        let mut dev = Device::nvidia();
        let data = Arc::new(PointBatch::from_points(vec![
            Point::new(1.5, 1.5), // in q0
            Point::new(5.0, 5.0), // in q1
            Point::new(9.0, 1.0), // in neither
        ]));
        let table: AreaSource = Arc::new(vec![square(0.5, 0.5, 2.0), square(4.0, 4.0, 2.5)]);
        let plan = Expr::mask(
            MaskSpec::PointInAreas(CountCond::Ge(1)),
            Expr::blend(
                BlendFn::PointOverArea,
                Expr::points(data),
                Expr::multi_blend(
                    BlendFn::AreaCount,
                    vec![
                        Expr::polygon_record(table.clone(), 0, 0),
                        Expr::polygon_record(table.clone(), 1, 1),
                    ],
                ),
            ),
        );
        let optimized = optimize(plan.clone());
        let r1 = plan.eval(&mut dev, vp());
        let r2 = optimized.eval(&mut dev, vp());
        assert_eq!(r1.point_records(), vec![0, 1]);
        assert_eq!(r1.point_records(), r2.point_records());
        // And the optimizer reduced the cost heuristic.
        assert!(optimized.cost() <= plan.cost());
    }

    #[test]
    fn optimize_is_idempotent() {
        let table: AreaSource = Arc::new(vec![square(1.0, 1.0, 2.0), square(4.0, 4.0, 2.0)]);
        let e = Expr::multi_blend(
            BlendFn::AreaCount,
            vec![
                Expr::polygon_record(table.clone(), 0, 0),
                Expr::polygon_record(table.clone(), 1, 1),
            ],
        );
        let once = optimize(e);
        let twice = optimize(once.clone());
        assert_eq!(once.plan(), twice.plan());
    }
}
