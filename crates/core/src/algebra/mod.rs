//! The algebra as *data*: composable query plans over canvases.
//!
//! Section 4 of the paper writes queries as algebraic expressions like
//!
//! ```text
//! C_result ← M[Mp'](B[⊙](C_P, B*[⊕](C_Q)))
//! ```
//!
//! [`Expr`] reifies those expressions: leaves are canvas *sources*
//! (data sets rendered on demand, utility generators), inner nodes are
//! the operators. This gives the three things the paper argues an
//! algebra buys you (Section 7):
//!
//! 1. **closure** — every node evaluates to a canvas, so nodes compose,
//! 2. **plan diagrams** — [`Expr::plan`] renders the tree (Figures 5–8),
//! 3. **optimization** — [`rewrite`] transforms plans (multiway-blend
//!    flattening via associativity, fusing a multiway blend of polygon
//!    leaves into one instanced draw), and [`Expr::cost`] gives a simple
//!    pass/fragment cost heuristic for plan comparison.

pub mod expr;
pub mod fingerprint;
pub mod planner;
pub mod rewrite;
pub mod subplan;

pub use expr::{Expr, SourceSpec};
pub use fingerprint::{
    fingerprint, is_cut_point, normalize, plan_nodes, subplans, Fingerprint, FingerprintBuilder,
    PlanNode, Subplan,
};
pub use planner::{choose_selection_strategy, PlanChoice, SelectionStats, SelectionStrategy};
pub use rewrite::{flatten_multiblend, fuse_polygon_leaves, optimize};
pub use subplan::{NullExchange, SubplanAccess, SubplanExchange, SubplanLease, SubplanSource};
